"""Figure 5: USB packet byte patterns over one eavesdropped run.

Regenerates the paper's per-byte analysis: Byte 0 takes 8 raw values that
collapse to the 4 operational states once the periodic watchdog bit
(bit 4) is removed, while the DAC bytes switch among many values.  The
benchmark measures the attacker's byte-pattern analysis itself.
"""

from repro import constants
from repro.attacks.analysis import byte_value_series, infer_state_byte
from repro.experiments.fig5 import capture_run, format_results, run_fig5


def test_fig5_artifact(artifact_writer, scale, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    result = run_fig5(seed=0, duration_s=scale.capture_duration_s)
    artifact_writer("fig5_byte_patterns", format_results(result))

    # Paper shapes: Byte 0 is the state byte, 8 raw values -> 4 masked,
    # watchdog in bit 4, state sequence starts at E-STOP and reaches
    # Pedal Down.
    assert result.state_byte == constants.USB_STATE_BYTE
    assert result.watchdog_bit == constants.USB_WATCHDOG_BIT
    assert len(result.raw_state_values) == 8
    assert len(result.masked_state_values) == 4
    names = [name for _s, _e, name in result.segments]
    assert names[0] == "E-STOP"
    assert "Pedal Down" in names
    # DAC bytes are many-valued compared to the state byte (Figure 5(b)).
    assert max(result.cardinalities[1:7]) > 4 * result.cardinalities[0]


def test_analysis_speed(benchmark, scale):
    """How fast the attacker's state-byte inference runs on one capture."""
    packets = capture_run(seed=1, duration_s=scale.capture_duration_s)
    series = byte_value_series(packets)
    inference = benchmark(infer_state_byte, series)
    assert inference.byte_index == constants.USB_STATE_BYTE

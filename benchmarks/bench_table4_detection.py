"""Table IV: detection performance — dynamic model vs RAVEN checks.

Runs (or loads from cache) the scenario A and B injection campaigns and
reports ACC / TPR / FPR / F1 for the dynamic-model detector and for the
robot's built-in mechanisms, side by side with the paper's numbers.

Paper values:
    A: Dynamic Model 88.0/89.8/12.4/74.8 | RAVEN 84.6/53.3/ 7.7/57.8
    B: Dynamic Model 92.0/99.8/11.8/89.1 | RAVEN 90.7/81.0/ 4.6/85.1

Shapes under test (not absolute numbers):
- the dynamic model's TPR beats RAVEN's in both scenarios, dramatically
  for scenario A (user-input attacks largely evade the fixed DAC checks);
- the dynamic model trades that for a moderately higher FPR;
- both detectors have high overall accuracy (>= ~70-95%).
"""

import pytest

from repro.experiments.campaigns import get_both_campaigns
from repro.experiments.table4 import (
    average_accuracy,
    combined,
    format_results,
    run_table4,
)


@pytest.fixture(scope="module")
def campaigns(scale):
    return get_both_campaigns(scale)


def test_table4_artifact(artifact_writer, campaigns, benchmark):
    rows = benchmark(run_table4, campaigns)
    text = format_results(rows)
    text += (
        f"\n\naverage dynamic-model accuracy: "
        f"{average_accuracy(rows) * 100:.1f}% (paper: ~90%)"
    )
    artifact_writer("table4_detection", text)


def test_table4_shapes(campaigns, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = run_table4(campaigns)
    by_key = {(s, t): m for s, t, m in rows}

    for scenario in ("A", "B"):
        model = by_key[(scenario, "Dynamic Model")]
        raven = by_key[(scenario, "RAVEN")]
        # The headline claim: preemptive model-based detection catches
        # far more attacks than the fixed-threshold checks.
        assert model.tpr > raven.tpr, scenario
        assert model.accuracy > 0.6, scenario
        assert raven.accuracy > 0.6, scenario
        # The model's FPR stays moderate (paper: ~12%).
        assert model.fpr < 0.35, scenario

    # Scenario A is where RAVEN is weakest (paper: 53.3% vs 89.8%).
    assert by_key[("A", "Dynamic Model")].tpr - by_key[("A", "RAVEN")].tpr > 0.2

    # Pooled: the model detects more attacks overall.
    assert combined(rows, "Dynamic Model").tpr > combined(rows, "RAVEN").tpr


def test_average_accuracy_near_paper(campaigns, benchmark):
    """The paper's headline: ~90% average detection accuracy."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = run_table4(campaigns)
    assert average_accuracy(rows) > 0.7

"""Robustness sweep: detector quality under physical-layer degradation.

Regenerates the fault class x intensity table of the robustness
experiment: detection probability, detection latency, false-positive rate
and degraded-mode counters for each physical fault class injected into the
simulated rig (encoder dropout/glitch, DAC saturation, packet loss, model
parameter drift), with the GuardSupervisor screening measurements.

Shapes under test:
- detection probability is non-increasing (within CI noise) as fault
  intensity rises — degradation costs detection, never helps it;
- the zero-intensity column matches the calibrated baseline: the
  per-packet false-positive rate stays within 2x the paper's 0.1-0.2%
  target and strong attacks are still detected.
"""

import pytest

from repro.experiments.robustness import (
    format_results,
    run_robustness,
    shape_checks,
)


@pytest.fixture(scope="module")
def cells(scale, jobs):
    return run_robustness(scale=scale, jobs=jobs)


def test_robustness_artifact(artifact_writer, cells, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    artifact_writer("robustness_sweep", format_results(cells))


def test_robustness_shapes(cells, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    checks = shape_checks(cells)
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"shape checks failed: {failed}"


def test_supervisor_absorbs_degradation(cells, benchmark):
    """At non-zero intensity the supervisor visibly does work: encoder
    fault classes produce coasted cycles or stale escalations."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    degraded = [
        c
        for c in cells
        if c.fault_class.startswith("encoder") and c.intensity > 0
    ]
    assert degraded
    assert any(c.coasted_fraction > 0 or c.stale_escalations > 0 for c in degraded)

"""Table II: performance overhead of the malicious system-call wrappers.

Measures the execution time of the ``write`` system call in the control
process — baseline, with the logging wrapper (packet capture + loopback-UDP
exfiltration), and with the injection wrapper (state check + byte
overwrite) — using pytest-benchmark for the per-configuration numbers and
the experiment driver for the paper-style min/max/mean/std table.

Paper reference (microseconds): baseline mean 1.3; logging mean 20.0
(+18.7); injection mean 3.6 (+2.3).  The shape under test: logging costs
several times more than injection, and both stay far below the 1 ms
real-time budget.
"""

import pytest

from repro.experiments.table2 import (
    _pedal_down_packet,
    build_configurations,
    format_results,
    run_table2,
)


@pytest.fixture(scope="module")
def configurations():
    return build_configurations()


@pytest.fixture(scope="module")
def packet():
    return _pedal_down_packet()


@pytest.mark.parametrize("name", ["baseline", "logging", "injection"])
def test_write_syscall(benchmark, configurations, packet, name):
    """Per-configuration write() latency (pytest-benchmark)."""
    process, fd = configurations[name]
    benchmark(process.write, fd, packet)


def test_table2_artifact(artifact_writer, scale, benchmark):
    """Regenerate Table II at the configured sample count."""
    rows = benchmark.pedantic(
        run_table2, kwargs={"samples": scale.syscall_samples}, rounds=1,
        iterations=1,
    )
    artifact_writer("table2_wrapper_overhead", format_results(rows))

    by_name = {r.name: r for r in rows}
    base = by_name["baseline"].mean_us
    logging_overhead = by_name["logging"].mean_us - base
    injection_overhead = by_name["injection"].mean_us - base
    # Paper shape: logging costs more than injection; both << 1 ms.
    assert logging_overhead > injection_overhead
    assert by_name["logging"].mean_us < 1000.0
    assert by_name["injection"].mean_us < 1000.0

"""Fleet ingest throughput: in-process and over-the-wire decision rates.

Two sweeps, one artifact (``results/fleet_ingest.txt``):

**In-process** — fleet width over {4, 16, 64} sessions against one
:class:`repro.fleet.FleetSupervisor` (in-memory store, default
checkpoint cadence), recording per width:

- **frames/sec** — telemetry frames fully decided per wall-clock second
  (ingest -> batched evaluate -> decision chain);
- **sessions/sec** — complete session-campaigns finished per second
  (frames/sec divided by frames per session);
- **p99 tick latency** — 99th percentile of one full fleet tick (every
  session's frame decided), the supervisor's per-decision latency bound.

**Over-the-wire** — the same telemetry pushed through the detection
service (``repro.service``): a spawned worker-process pool sharing one
sqlite store, sessions rendezvous-sharded across it, one pipelined
frames+tick round trip per worker per tick.  Swept over {1, 2, 4}
workers; the latency columns are full frontend round trips.

Determinism checks ride along: the timed in-process fleet must equal an
untimed rerun (timing must not perturb decisions), and every service
sweep's fingerprints must be byte-identical to the in-process chains —
the wire, the sharding, and the worker count must all be invisible in
the decision bytes.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.experiments.fleet import (
    NOMINAL_THRESHOLDS,
    frame_for,
    run_fleet_campaign,
    session_id,
)
from repro.fleet import FleetConfig, FleetSupervisor, SessionSpec
from repro.service import connect_frontend, spawn_pool

#: Fleet widths swept (sessions multiplexed per supervisor).
FLEET_WIDTHS = (4, 16, 64)

#: Frames each session receives (one per fleet tick).
FRAMES_PER_SESSION = 200

#: Worker-process pool sizes swept for the over-the-wire path.
SERVICE_WORKER_COUNTS = (1, 2, 4)

#: Sessions sharded across the service pool.
SERVICE_SESSIONS = 8

#: Frames each service session receives (one per frontend tick round).
SERVICE_FRAMES_PER_SESSION = 100


def _timed_campaign(num_sessions: int):
    """Run one fleet campaign, timing every tick; return (fps, per-tick s)."""
    config = FleetConfig(checkpoint_every=64)
    fleet = FleetSupervisor(config=config)
    for i in range(num_sessions):
        fleet.register(
            SessionSpec(session_id=session_id(i), thresholds=NOMINAL_THRESHOLDS)
        )
    tick_seconds = []
    for tick in range(FRAMES_PER_SESSION):
        frames = [
            (session_id(i), frame_for(0, i, tick)) for i in range(num_sessions)
        ]
        t0 = time.perf_counter()
        for sid, frame in frames:
            fleet.ingest(sid, frame)
        fleet.tick(tick)
        tick_seconds.append(time.perf_counter() - t0)
    return fleet.fingerprints(), np.asarray(tick_seconds)


@pytest.fixture(scope="module")
def ingest_table():
    """Rows of (N, frames/s, sessions/s, p50 ms, p99 ms) + determinism."""
    rows = []
    verified = True
    for n in FLEET_WIDTHS:
        fingerprints, ticks_s = _timed_campaign(n)
        total_s = float(ticks_s.sum())
        frames = n * FRAMES_PER_SESSION
        rows.append(
            (
                n,
                frames / total_s,
                (frames / total_s) / FRAMES_PER_SESSION,
                float(np.percentile(ticks_s, 50)) * 1e3,
                float(np.percentile(ticks_s, 99)) * 1e3,
            )
        )
        # Timing must be observation-only: an untimed campaign over the
        # same streams must land on identical fingerprints.
        control = run_fleet_campaign(
            num_sessions=n,
            ticks=FRAMES_PER_SESSION,
            seed=0,
            config=FleetConfig(checkpoint_every=64),
        )
        verified &= control.fingerprints == fingerprints
    return rows, verified


async def _drive_service_timed(pool):
    """Register, then time every frontend tick round; return (fps, s)."""
    frontend = await connect_frontend({p.name: p.address for p in pool})
    try:
        for i in range(SERVICE_SESSIONS):
            await frontend.register(
                SessionSpec(
                    session_id=session_id(i), thresholds=NOMINAL_THRESHOLDS
                )
            )
        tick_seconds = []
        for tick in range(SERVICE_FRAMES_PER_SESSION):
            frames = {
                session_id(i): frame_for(0, i, tick)
                for i in range(SERVICE_SESSIONS)
            }
            t0 = time.perf_counter()
            await frontend.run_tick(tick, frames)
            tick_seconds.append(time.perf_counter() - t0)
        return await frontend.fingerprints(), np.asarray(tick_seconds)
    finally:
        await frontend.close(shutdown_workers=True)


def _timed_service_campaign(num_workers: int, store_path: str):
    pool = spawn_pool(
        num_workers, store_path, fleet_config=FleetConfig(checkpoint_every=64)
    )
    try:
        return asyncio.run(_drive_service_timed(pool))
    finally:
        for proc in pool:
            proc.stop(timeout=10.0)


@pytest.fixture(scope="module")
def service_table(tmp_path_factory):
    """Rows of (workers, frames/s, p50 ms, p99 ms) + wire bit-identity.

    The untimed control is the in-process supervisor over the same
    streams: every worker count must land on its exact fingerprints.
    """
    control = run_fleet_campaign(
        num_sessions=SERVICE_SESSIONS,
        ticks=SERVICE_FRAMES_PER_SESSION,
        seed=0,
        config=FleetConfig(checkpoint_every=64),
    )
    rows = []
    verified = True
    for workers in SERVICE_WORKER_COUNTS:
        store = tmp_path_factory.mktemp("svc_bench") / "sessions.sqlite"
        fingerprints, ticks_s = _timed_service_campaign(workers, str(store))
        total_s = float(ticks_s.sum())
        frames = SERVICE_SESSIONS * SERVICE_FRAMES_PER_SESSION
        rows.append(
            (
                workers,
                frames / total_s,
                float(np.percentile(ticks_s, 50)) * 1e3,
                float(np.percentile(ticks_s, 99)) * 1e3,
            )
        )
        verified &= fingerprints == control.fingerprints
    return rows, verified


@pytest.mark.fleet
@pytest.mark.batch
@pytest.mark.service
def test_fleet_ingest_artifact(
    artifact_writer, ingest_table, service_table, benchmark
):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows, verified = ingest_table
    svc_rows, svc_verified = service_table

    lines = [
        f"fleet ingest throughput ({FRAMES_PER_SESSION} frames/session, "
        "in-memory store, checkpoint every 64 ticks):",
        "",
        "  sessions   frames/sec   sessions/sec   p50 tick   p99 tick",
    ]
    for n, fps, sps, p50_ms, p99_ms in rows:
        lines.append(
            f"  {n:8d}   {fps:10.0f}   {sps:12.2f}   "
            f"{p50_ms:6.2f}ms   {p99_ms:6.2f}ms"
        )
    lines += [
        "",
        f"decision bit-identity vs untimed rerun: "
        f"{'verified' if verified else 'FAILED'}",
        "p99 tick = 99th percentile wall time for one full fleet tick",
        "(every session's frame ingested, batch-evaluated, and chained).",
        "",
        "over-the-wire service ingest "
        f"({SERVICE_SESSIONS} sessions x {SERVICE_FRAMES_PER_SESSION} frames, "
        "worker processes + shared sqlite store, checkpoint every 64 ticks):",
        "",
        "  workers   frames/sec   p50 round   p99 round",
    ]
    for workers, fps, p50_ms, p99_ms in svc_rows:
        lines.append(
            f"  {workers:7d}   {fps:10.0f}   {p50_ms:7.2f}ms   {p99_ms:7.2f}ms"
        )
    lines += [
        "",
        f"decision bit-identity vs in-process supervisor: "
        f"{'verified' if svc_verified else 'FAILED'}",
        "p99 round = 99th percentile of one frontend tick (every session's",
        "frame framed, shipped, decided remotely, and the responses merged).",
    ]
    artifact_writer("fleet_ingest", "\n".join(lines))

    assert verified, "timing perturbed fleet decisions"
    assert svc_verified, "the wire perturbed fleet decisions"
    # Throughput must scale with width: the widest fleet should decide
    # frames at least as fast as the narrowest (batched evaluation).
    assert rows[-1][1] > rows[0][1] * 0.5

"""Fleet ingest throughput: sessions/sec and p99 decision latency.

Sweeps the fleet width over {4, 16, 64} sessions against one
:class:`repro.fleet.FleetSupervisor` (in-memory store, default
checkpoint cadence) and records, per width:

- **frames/sec** — telemetry frames fully decided per wall-clock second
  (ingest -> batched evaluate -> decision chain);
- **sessions/sec** — complete session-campaigns finished per second
  (frames/sec divided by frames per session);
- **p99 tick latency** — 99th percentile of one full fleet tick (every
  session's frame decided), the supervisor's per-decision latency bound.

The artifact lands in ``results/fleet_ingest.txt``.  A determinism check
rides along: the timed fleet's fingerprints must equal an untimed rerun's
(timing must not perturb decisions).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.experiments.fleet import (
    NOMINAL_THRESHOLDS,
    frame_for,
    run_fleet_campaign,
    session_id,
)
from repro.fleet import FleetConfig, FleetSupervisor, SessionSpec

#: Fleet widths swept (sessions multiplexed per supervisor).
FLEET_WIDTHS = (4, 16, 64)

#: Frames each session receives (one per fleet tick).
FRAMES_PER_SESSION = 200


def _timed_campaign(num_sessions: int):
    """Run one fleet campaign, timing every tick; return (fps, per-tick s)."""
    config = FleetConfig(checkpoint_every=64)
    fleet = FleetSupervisor(config=config)
    for i in range(num_sessions):
        fleet.register(
            SessionSpec(session_id=session_id(i), thresholds=NOMINAL_THRESHOLDS)
        )
    tick_seconds = []
    for tick in range(FRAMES_PER_SESSION):
        frames = [
            (session_id(i), frame_for(0, i, tick)) for i in range(num_sessions)
        ]
        t0 = time.perf_counter()
        for sid, frame in frames:
            fleet.ingest(sid, frame)
        fleet.tick(tick)
        tick_seconds.append(time.perf_counter() - t0)
    return fleet.fingerprints(), np.asarray(tick_seconds)


@pytest.fixture(scope="module")
def ingest_table():
    """Rows of (N, frames/s, sessions/s, p50 ms, p99 ms) + determinism."""
    rows = []
    verified = True
    for n in FLEET_WIDTHS:
        fingerprints, ticks_s = _timed_campaign(n)
        total_s = float(ticks_s.sum())
        frames = n * FRAMES_PER_SESSION
        rows.append(
            (
                n,
                frames / total_s,
                (frames / total_s) / FRAMES_PER_SESSION,
                float(np.percentile(ticks_s, 50)) * 1e3,
                float(np.percentile(ticks_s, 99)) * 1e3,
            )
        )
        # Timing must be observation-only: an untimed campaign over the
        # same streams must land on identical fingerprints.
        control = run_fleet_campaign(
            num_sessions=n,
            ticks=FRAMES_PER_SESSION,
            seed=0,
            config=FleetConfig(checkpoint_every=64),
        )
        verified &= control.fingerprints == fingerprints
    return rows, verified


@pytest.mark.fleet
@pytest.mark.batch
def test_fleet_ingest_artifact(artifact_writer, ingest_table, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows, verified = ingest_table

    lines = [
        f"fleet ingest throughput ({FRAMES_PER_SESSION} frames/session, "
        "in-memory store, checkpoint every 64 ticks):",
        "",
        "  sessions   frames/sec   sessions/sec   p50 tick   p99 tick",
    ]
    for n, fps, sps, p50_ms, p99_ms in rows:
        lines.append(
            f"  {n:8d}   {fps:10.0f}   {sps:12.2f}   "
            f"{p50_ms:6.2f}ms   {p99_ms:6.2f}ms"
        )
    lines += [
        "",
        f"decision bit-identity vs untimed rerun: "
        f"{'verified' if verified else 'FAILED'}",
        "p99 tick = 99th percentile wall time for one full fleet tick",
        "(every session's frame ingested, batch-evaluated, and chained).",
    ]
    artifact_writer("fleet_ingest", "\n".join(lines))

    assert verified, "timing perturbed fleet decisions"
    # Throughput must scale with width: the widest fleet should decide
    # frames at least as fast as the narrowest (batched evaluation).
    assert rows[-1][1] > rows[0][1] * 0.5

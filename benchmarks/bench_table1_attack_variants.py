"""Table I: attack variants on the robot control structure.

Runs one representative attack per Table I row and checks the observed
impact matches the paper's column:

- socket/port change -> teleoperation unavailable;
- socket/content change -> hijacked trajectory;
- math-library drift -> unwanted state (IK failure);
- PLC state corruption -> homing failure;
- motor-command corruption -> abrupt jump / E-STOP;
- encoder-feedback corruption -> abrupt jump / E-STOP.
"""

import pytest

from repro.experiments.table1 import format_results, run_table1


@pytest.fixture(scope="module")
def outcomes():
    return run_table1(seed=7, duration_s=1.8)


def test_table1_artifact(artifact_writer, outcomes, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    artifact_writer("table1_attack_variants", format_results(outcomes))


def test_table1_impacts_match_paper(outcomes, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_variant = {o.variant: o.impact for o in outcomes}
    assert "never engages" in by_variant["socket: change port"]
    assert "hijacked" in by_variant["socket: change packet content"]
    assert "IK failure" in by_variant["math: add drift to sin/cos"]
    assert "homing failure" in by_variant["interface: change robot state in PLC"]
    assert "abrupt jump" in by_variant["physical: change motor commands"]
    assert "abrupt jump" in by_variant["physical: change encoder feedback"]


def test_variant_run_cost(benchmark):
    """Wall-clock cost of one full variant run (socket drop, shortest)."""
    from repro.attacks.variants import build_socket_drop_library
    from repro.sim.rig import RigConfig, SurgicalRig

    def run_once():
        rig = SurgicalRig(
            RigConfig(seed=7, duration_s=0.8),
            preload_libraries=[build_socket_drop_library()],
        )
        return rig.run()

    trace = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert trace.pedal_down_fraction() == 0.0

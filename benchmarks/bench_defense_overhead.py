"""Extension bench: conventional defenses — overhead and coverage.

Quantifies Section III.D's argument with measurements:

- per-packet cost of Secure ITP sealing/verification and BITW
  encryption/decryption, against the 1 ms real-time budget;
- per-scan cost of remote attestation;
- a coverage matrix: which defense stops which attack.
"""

import numpy as np
import pytest

from repro.attacks.injection import DacOffsetInjection, UserInputInjection
from repro.control.state_machine import RobotState
from repro.core.attestation import AttestationMonitor
from repro.experiments.report import format_table
from repro.hw.bitw import BitwDecryptor, BitwEncryptor
from repro.hw.usb_packet import encode_command_packet
from repro.sysmodel.linker import DynamicLinker, SystemEnvironment
from repro.teleop.itp import ItpPacket
from repro.teleop.secure_itp import (
    AuthenticationError,
    SecureItpReceiver,
    SecureItpSender,
)

KEY = b"benchmark-key-32-bytes-xxxxyyyyz"


def test_secure_itp_seal(benchmark):
    sender = SecureItpSender(KEY)
    packet = ItpPacket(0, True, np.array([1e-4, 0, 0]))
    sealed = benchmark(sender.seal, packet)
    assert len(sealed) == 56


def test_secure_itp_verify(benchmark):
    sender = SecureItpSender(KEY)
    sealed_packets = [
        sender.seal(ItpPacket(i, True, np.zeros(3))) for i in range(100000)
    ]
    state = {"i": 0}
    receiver = SecureItpReceiver(KEY)

    def verify():
        receiver.open(sealed_packets[state["i"]])
        state["i"] += 1

    benchmark.pedantic(verify, rounds=2000, iterations=1)


def test_bitw_seal_open(benchmark):
    enc = BitwEncryptor(KEY)
    dec = BitwDecryptor(KEY)
    frame = encode_command_packet(RobotState.PEDAL_DOWN, True, [100, -50, 25])

    def roundtrip():
        dec._last_counter = None  # isolate crypto cost from replay state
        return dec.open(enc.seal(frame))

    out = benchmark(roundtrip)
    assert out == frame


def test_attestation_scan(benchmark):
    env = SystemEnvironment()
    process = DynamicLinker(env).spawn("r2_control")
    monitor = AttestationMonitor(process, env)
    monitor.enroll()
    report = benchmark(monitor.scan)
    assert report.trusted


def test_defense_coverage_matrix(artifact_writer, benchmark):
    """Which defense stops which attack (the Section III.D argument)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Secure ITP vs wire tamper.
    sender, receiver = SecureItpSender(KEY), SecureItpReceiver(KEY)
    tampered = bytearray(sender.seal(ItpPacket(0, True, np.zeros(3))))
    tampered[12] ^= 0x80
    try:
        receiver.open(bytes(tampered))
        secure_itp_stops_wire = False
    except AuthenticationError:
        secure_itp_stops_wire = True

    # Secure ITP vs scenario A (in-host, post-authentication).
    receiver.reset()
    authentic = receiver.open(sender.seal(ItpPacket(1, True, np.zeros(3))))
    corrupted = UserInputInjection(error_m=1e-3, direction=[1, 0, 0]).apply(
        authentic
    )
    secure_itp_stops_a = not corrupted.dpos[0] > 0

    # BITW vs scenario B (wrapper output is sealed like honest traffic).
    enc, dec = BitwEncryptor(KEY), BitwDecryptor(KEY)
    packet = encode_command_packet(RobotState.PEDAL_DOWN, True, [100, 0, 0])
    wrapped = DacOffsetInjection(8000).apply(packet)
    delivered = dec.open(enc.seal(wrapped))
    bitw_stops_b = delivered != wrapped

    rows = [
        ["Secure ITP", "wire MITM", "yes" if secure_itp_stops_wire else "NO"],
        ["Secure ITP", "scenario A (in-host)", "yes" if secure_itp_stops_a else "NO"],
        ["BITW encryption", "wire tamper", "yes"],
        ["BITW encryption", "scenario B (in-host)", "yes" if bitw_stops_b else "NO"],
        ["attestation", "preloaded malware", "yes (next scan only)"],
        ["attestation", "TOCTOU window", "NO"],
        ["dynamic model", "scenario A", "yes (see Table IV)"],
        ["dynamic model", "scenario B", "yes (see Table IV)"],
    ]
    artifact_writer(
        "defense_coverage",
        format_table(["defense", "attack", "stopped?"], rows),
    )
    assert secure_itp_stops_wire
    assert not secure_itp_stops_a
    assert not bitw_stops_b

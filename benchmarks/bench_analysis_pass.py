"""Micro-benchmark: full repro.analysis passes, cold versus warm cache.

The lint gate runs on every CI push, so its wall time is part of the
development loop.  This benchmark times a complete engine pass (collect,
parse, all eight rule families, suppression matching) over ``src/`` in
two regimes: **cold** (empty summary cache — every file parsed) and
**warm** (content-keyed cache populated — summaries and local findings
reloaded, only the project rules recomputed).  The warm path is the one
developers live on, and the whole point of the cache: the run asserts it
is at least 3x faster than cold.  It also asserts the pass stays clean —
the shipped baseline is empty by design.
"""

from __future__ import annotations

import shutil
import time
from pathlib import Path

from repro.analysis import AnalysisEngine, load_baseline, partition

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
ROUNDS = 3
WARM_SPEEDUP_FLOOR = 3.0


def run_pass(cache_dir=None):
    engine = AnalysisEngine(cache_dir=cache_dir)
    return engine.analyze_paths([SRC_ROOT], display_root=REPO_ROOT)


def test_analysis_pass_speed(artifact_writer, benchmark, tmp_path):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    cache = tmp_path / "analysis-cache"
    run_pass()  # warm the filesystem cache before timing

    cold_timings = []
    for _ in range(ROUNDS):
        shutil.rmtree(cache, ignore_errors=True)
        start = time.perf_counter()
        result = run_pass(cache_dir=cache)
        cold_timings.append(time.perf_counter() - start)
    assert result.from_cache == 0

    warm_timings = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        warm_result = run_pass(cache_dir=cache)
        warm_timings.append(time.perf_counter() - start)
    assert warm_result.parsed == []
    assert warm_result.from_cache == result.files_scanned

    cold = min(cold_timings)
    warm = min(warm_timings)
    speedup = cold / warm
    files = max(result.files_scanned, 1)
    lines = [
        f"files scanned:        {result.files_scanned}",
        f"cold (best of {ROUNDS}):     {cold * 1e3:.1f} ms"
        f"  ({cold / files * 1e6:.0f} us/file)",
        f"warm (best of {ROUNDS}):     {warm * 1e3:.1f} ms"
        f"  ({warm / files * 1e6:.0f} us/file)",
        f"warm speedup:         {speedup:.1f}x (floor {WARM_SPEEDUP_FLOOR}x)",
        f"active findings:      {len(result.active)}",
        f"inline suppressions:  {len(result.suppressed)}",
    ]
    artifact_writer("analysis_pass", "\n".join(lines))

    # Identical findings either way, and the tree stays clean.
    assert [f.to_dict() for f in warm_result.findings] == [
        f.to_dict() for f in result.findings
    ]
    baseline = load_baseline(REPO_ROOT / "analysis_baseline.json")
    new, _ = partition(result.findings, baseline)
    assert result.parse_errors == []
    assert new == [], "\n".join(f.format() for f in new)
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm pass only {speedup:.1f}x faster than cold"
    )

"""Micro-benchmark: one full repro.analysis pass over the source tree.

The lint gate runs on every CI push, so its wall time is part of the
development loop.  This benchmark times a complete engine pass (collect,
parse, all four rule families, suppression matching) over ``src/`` and
records per-file throughput.  It also asserts the pass stays clean — the
shipped baseline is empty by design.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis import AnalysisEngine, load_baseline, partition

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
ROUNDS = 5


def run_pass():
    engine = AnalysisEngine()
    return engine.analyze_paths([SRC_ROOT], display_root=REPO_ROOT)


def test_analysis_pass_speed(artifact_writer, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    timings = []
    result = run_pass()  # warm the filesystem cache before timing
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = run_pass()
        timings.append(time.perf_counter() - start)

    best = min(timings)
    files = max(result.files_scanned, 1)
    lines = [
        f"files scanned:        {result.files_scanned}",
        f"best of {ROUNDS} passes:     {best * 1e3:.1f} ms",
        f"per-file:             {best / files * 1e6:.0f} us",
        f"active findings:      {len(result.active)}",
        f"inline suppressions:  {len(result.suppressed)}",
    ]
    artifact_writer("bench_analysis_pass", "\n".join(lines))

    baseline = load_baseline(REPO_ROOT / "analysis_baseline.json")
    new, _ = partition(result.findings, baseline)
    assert result.parse_errors == []
    assert new == [], "\n".join(f.format() for f in new)

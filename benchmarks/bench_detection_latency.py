"""Extension bench: preemption — how early each detector reacts.

The paper's claim is not only *whether* attacks are detected but *when*:
the dynamic model flags a malicious command "before [it] manifests in the
physical system", while the RAVEN checks trip only "after the impact has
already happened".  This bench measures, per attack run, the latency in
control cycles from the first corrupted packet to

- the dynamic model's first alert, and
- the RAVEN software checks' first trip,

and verifies the ordering, plus the jump size accumulated by each moment.
"""

import numpy as np
import pytest

from repro.experiments.report import format_table
from repro.sim.runner import make_detector_guard, run_scenario_a, run_scenario_b

ATTACKS = [
    ("B", 18000, 64),
    ("B", 26000, 64),
    ("B", 30000, 32),
    ("A", 0.3, 32),
    ("A", 0.5, 16),
]
DURATION = 1.4
SEED = 13


@pytest.fixture(scope="module")
def latency_rows(thresholds):
    rows = []
    for scenario, value, period in ATTACKS:
        guard = make_detector_guard(thresholds)
        kwargs = dict(
            seed=SEED, period_ms=period, duration_s=DURATION, guard=guard,
            attack_delay_cycles=300,
        )
        result = (
            run_scenario_b(error_dac=int(value), **kwargs)
            if scenario == "B"
            else run_scenario_a(error_mm=value, **kwargs)
        )
        trace = result.trace
        start = trace.attack_first_cycle
        model_latency = (
            None
            if guard.stats.first_alert_cycle is None
            else guard.stats.first_alert_cycle - start
        )
        raven_latency = (
            trace.safety_trip_cycles[0] - start
            if trace.safety_trip_cycles
            else None
        )
        rows.append(
            {
                "scenario": scenario,
                "value": value,
                "period": period,
                "model_latency": model_latency,
                "raven_latency": raven_latency,
            }
        )
    return rows


def test_latency_artifact(artifact_writer, latency_rows, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table_rows = [
        [
            r["scenario"],
            f"{r['value']:g}",
            r["period"],
            "-" if r["model_latency"] is None else f"{r['model_latency']} ms",
            "-" if r["raven_latency"] is None else f"{r['raven_latency']} ms",
        ]
        for r in latency_rows
    ]
    artifact_writer(
        "detection_latency",
        "latency from first corrupted packet to first detection\n\n"
        + format_table(
            ["scenario", "error value", "period (ms)",
             "dynamic model", "RAVEN checks"],
            table_rows,
        ),
    )


def test_model_reacts_within_cycles(latency_rows, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    latencies = [r["model_latency"] for r in latency_rows]
    assert all(lat is not None for lat in latencies)
    # Preemptive: within a handful of 1 ms cycles for every attack.
    assert max(latencies) <= 10


def test_model_beats_raven_when_both_fire(latency_rows, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    both = [
        r
        for r in latency_rows
        if r["model_latency"] is not None and r["raven_latency"] is not None
    ]
    assert both, "no run where both detectors fired"
    for r in both:
        assert r["model_latency"] <= r["raven_latency"], r


def test_raven_misses_or_lags(latency_rows, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # At least one attack never trips RAVEN at all (the blind spot), or
    # RAVEN trails the model on every joint detection.
    misses = [r for r in latency_rows if r["raven_latency"] is None]
    lags = [
        r
        for r in latency_rows
        if r["raven_latency"] is not None
        and r["model_latency"] is not None
        and r["raven_latency"] > r["model_latency"]
    ]
    assert misses or lags

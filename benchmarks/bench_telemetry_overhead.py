"""Extension bench: telemetry overhead — enabled vs disabled.

Table II of the paper argues instrumentation in the command path is only
viable if its per-cycle cost stays far inside the 1 ms real-time budget.
This bench applies the same standard to our own telemetry subsystem
(``REPRO_OBS``): it times identical fault-free runs with telemetry off
and on, reports per-cycle cost side by side, and sanity-checks that the
enabled mode stays within the control-period budget on this host.

The bit-identity of results (enabled vs disabled) is asserted by the
golden and flight-recorder suites; this bench covers the *time* axis.
"""

from __future__ import annotations

from repro import constants
from repro.experiments.report import format_table
from repro.obs.runtime import reset_runtime
from repro.obs.timing import Stopwatch
from repro.sim.runner import run_fault_free

DURATION_S = 0.5
CYCLES = int(round(DURATION_S / constants.CONTROL_PERIOD_S))
ROUNDS = 3


def _best_run_seconds() -> float:
    """Fastest of ``ROUNDS`` identical runs (min filters scheduler noise)."""
    best = None
    probe = Stopwatch()
    for _ in range(ROUNDS):
        with probe:
            run_fault_free(seed=3, duration_s=DURATION_S)
        if best is None or probe.elapsed_s < best:
            best = probe.elapsed_s
    return best


def test_telemetry_overhead(benchmark, monkeypatch, tmp_path, artifact_writer):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    monkeypatch.delenv("REPRO_OBS", raising=False)
    monkeypatch.delenv("REPRO_OBS_DIR", raising=False)
    reset_runtime()
    try:
        off_s = _best_run_seconds()

        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        reset_runtime()
        on_s = _best_run_seconds()
    finally:
        reset_runtime()

    off_us = off_s / CYCLES * 1e6
    on_us = on_s / CYCLES * 1e6
    delta_us = on_us - off_us
    rows = [
        ["disabled (default)", f"{off_s:.3f}", f"{off_us:.1f}", "--"],
        ["REPRO_OBS=1", f"{on_s:.3f}", f"{on_us:.1f}", f"{delta_us:+.1f}"],
    ]
    table = format_table(
        ["configuration", "run [s]", "per-cycle [us]", "delta [us]"], rows
    )
    artifact_writer(
        "telemetry_overhead",
        f"Telemetry overhead ({CYCLES} cycles, best of {ROUNDS})\n{table}",
    )

    # Wide, host-independent sanity bounds: both modes stay inside the
    # 1 ms control period per cycle, and telemetry cannot multiply the
    # per-cycle cost (it adds histogram increments and ring appends).
    budget_us = constants.CONTROL_PERIOD_S * 1e6
    assert on_us < budget_us, f"enabled telemetry blows the budget: {on_us:.1f}us"
    assert on_us < off_us * 3 + 100.0, (
        f"telemetry overhead out of line: {off_us:.1f}us -> {on_us:.1f}us"
    )

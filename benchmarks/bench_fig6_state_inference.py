"""Figure 6: Byte 0 across multiple runs — cross-run state inference.

The paper shows nine runs whose state sequences are all recoverable from
Byte 0.  This benchmark captures ``scale.capture_runs`` varied sessions,
infers each run's state sequence, and checks the attacker's cross-run
conclusion (the deployment trigger).
"""

from repro import constants
from repro.experiments.fig6 import format_results, run_fig6


def test_fig6_artifact(artifact_writer, scale, benchmark):
    result = benchmark.pedantic(
        run_fig6,
        kwargs={
            "runs": scale.capture_runs,
            "duration_s": scale.capture_duration_s,
        },
        rounds=1,
        iterations=1,
    )
    artifact_writer("fig6_state_inference", format_results(result))

    conclusion = result.conclusion
    assert conclusion.state_byte == constants.USB_STATE_BYTE
    assert conclusion.watchdog_bit == constants.USB_WATCHDOG_BIT
    expected_trigger = {
        constants.STATE_BYTE_PEDAL_DOWN,
        constants.STATE_BYTE_PEDAL_DOWN | (1 << constants.USB_WATCHDOG_BIT),
    }
    assert set(conclusion.pedal_down_raw_values) == expected_trigger

    # Every run's sequence starts from E-STOP and passes through the
    # full startup chain, exactly as in the paper's nine subplots.
    for segments in result.per_run_segments:
        names = [name for _s, _e, name in segments]
        assert names[:4] == ["E-STOP", "Init", "Pedal Up", "Pedal Down"]

"""Ablation: integrator family and step size for the real-time model.

Extends Figure 8's RK4-vs-Euler comparison with the midpoint and Heun
(RK2) methods and a step-size sweep, measuring one-step prediction error
against the sub-stepped RK4 plant over a canned command sequence.  This is
the design space behind the paper's conclusion that 1 ms explicit Euler is
the right operating point for in-loop estimation.
"""

import time

import numpy as np
import pytest

from repro.core.dynamic_model import RavenDynamicModel
from repro.dynamics.integrators import EVALUATIONS_PER_STEP
from repro.dynamics.plant import RavenPlant
from repro.experiments.report import format_table
from repro.kinematics.workspace import Workspace

INTEGRATORS = ("euler", "midpoint", "heun", "rk4")


def command_sequence(steps=400, seed=5):
    """A smooth, surgical-magnitude DAC command sequence."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(-4000, 4000, (4, 3))
    t = np.linspace(0, 2 * np.pi, steps)[:, None]
    return (
        base[0] * np.sin(t)
        + base[1] * np.sin(2.3 * t)
        + base[2] * np.cos(0.7 * t)
        + base[3]
    )


def one_step_errors(integrator: str, dt: float = 1e-3):
    """Mean one-step prediction error vs the ground-truth plant."""
    plant = RavenPlant(initial_jpos=Workspace().neutral(), substeps=4)
    plant.release_brakes()
    model = RavenDynamicModel(integrator=integrator, parameter_error=1.0, dt=dt)
    commands = command_sequence()
    jpos_err = []
    wall = 0.0
    for dac in commands:
        q, v = plant.jpos, plant.jvel
        t0 = time.perf_counter()
        pred_q, _pred_v = model.step(q, v, dac)
        wall += time.perf_counter() - t0
        real = plant.step(dac, dt)  # same horizon as the model step
        jpos_err.append(np.abs(pred_q - real.jpos))
    return float(np.mean(jpos_err)), wall / len(commands)


def test_integrator_ablation(artifact_writer, benchmark):
    results = {name: one_step_errors(name) for name in INTEGRATORS}
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = [
        [
            name,
            EVALUATIONS_PER_STEP[name],
            f"{err:.2e}",
            f"{wall * 1e3:.4f}",
        ]
        for name, (err, wall) in results.items()
    ]
    artifact_writer(
        "ablation_integrators",
        format_table(
            ["integrator", "f-evals/step", "jpos one-step MAE (rad)",
             "time/step (ms)"],
            rows,
        ),
    )

    euler_err, euler_time = results["euler"]
    rk4_err, rk4_time = results["rk4"]
    # RK4 is more accurate but costs ~4x the evaluations.
    assert rk4_err <= euler_err
    assert rk4_time > 1.5 * euler_time
    # The paper's operating point: Euler at 1 ms is accurate enough that
    # its one-step error is far below anything safety-relevant (1 mm at
    # 0.15 m insertion is ~7e-3 rad).
    assert euler_err < 1e-4
    # And it fits comfortably inside the 1 ms real-time budget.
    assert euler_time < 1e-3


@pytest.mark.parametrize("dt_ms", [0.25, 0.5, 1.0, 2.0])
def test_step_size_sweep(dt_ms, benchmark):
    """Euler error grows roughly linearly with step size and stays safe
    through 2 ms (the detector has headroom if the loop ever slows)."""
    err, wall = one_step_errors("euler", dt=dt_ms * 1e-3)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert err < 5e-4
    assert wall < 1e-3

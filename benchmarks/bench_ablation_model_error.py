"""Ablation: sensitivity to dynamic-model parameter error.

The paper's model coefficients come from manual tuning against the real
robot; this ablation asks how much tuning quality matters.  The detector's
model is built with increasing parameter error relative to the true plant
and evaluated on a small attack/fault-free matrix with thresholds
*re-learned per model* (as a practitioner would: calibrate with whatever
model you have).
"""

import pytest

from repro.core.detector import AnomalyDetector, FusionRule
from repro.core.estimator import NextStateEstimator
from repro.core.dynamic_model import RavenDynamicModel
from repro.core.metrics import ConfusionMatrix
from repro.core.mitigation import MitigationStrategy
from repro.core.pipeline import DetectorGuard
from repro.experiments.report import format_table
from repro.sim.runner import (
    run_fault_free,
    run_scenario_b,
    train_thresholds,
)

PARAMETER_ERRORS = (1.0, 1.03, 1.15, 1.4)
ATTACKS = [(13000, 64), (24000, 32), (5000, 16)]
FAULT_FREE_SEEDS = tuple(range(600, 605))
DURATION = 1.4
SEED = 3


def make_guard(thresholds, parameter_error):
    model = RavenDynamicModel(integrator="euler", parameter_error=parameter_error)
    return DetectorGuard(
        NextStateEstimator(model),
        AnomalyDetector(thresholds, fusion=FusionRule.ALL),
        strategy=MitigationStrategy.MONITOR,
    )


@pytest.fixture(scope="module")
def labels():
    reference = run_fault_free(seed=SEED, duration_s=DURATION)
    out = []
    for dac, period in ATTACKS:
        raw = run_scenario_b(
            seed=SEED, error_dac=dac, period_ms=period, duration_s=DURATION,
            raven_safety_enabled=False, attack_delay_cycles=300,
        )
        out.append(raw.trace.max_deviation_from(reference) > 1e-3)
    return out


def evaluate(parameter_error, labels):
    thresholds = train_thresholds(
        num_runs=6, duration_s=1.2, parameter_error=parameter_error
    )
    pairs = []
    for (dac, period), label in zip(ATTACKS, labels):
        guard = make_guard(thresholds, parameter_error)
        run_scenario_b(
            seed=SEED, error_dac=dac, period_ms=period, duration_s=DURATION,
            guard=guard, attack_delay_cycles=300,
        )
        pairs.append((label, guard.stats.alerted))
    for seed in FAULT_FREE_SEEDS:
        guard = make_guard(thresholds, parameter_error)
        run_fault_free(seed=seed, duration_s=DURATION, guard=guard)
        pairs.append((False, guard.stats.alerted))
    return ConfusionMatrix.from_pairs(pairs)


def test_model_error_ablation(artifact_writer, labels, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    results = {pe: evaluate(pe, labels) for pe in PARAMETER_ERRORS}

    rows = [
        [
            f"{pe:g}",
            f"{m.accuracy * 100:.1f}",
            f"{m.tpr * 100:.1f}",
            f"{m.fpr * 100:.1f}",
        ]
        for pe, m in results.items()
    ]
    artifact_writer(
        "ablation_model_error",
        "detector-model parameter error vs detection quality\n"
        "(thresholds re-calibrated per model)\n\n"
        + format_table(["param error", "ACC", "TPR", "FPR"], rows),
    )

    # Sensitivity survives model error after re-calibration: the alarm
    # variables scale with the model's own biases, so real attacks still
    # stand out.
    assert results[1.0].tpr == results[1.03].tpr == 1.0
    assert results[1.4].tpr >= 0.5
    # But false alarms grow with model error — the quantitative form of
    # the paper's requirement that "the output of the dynamic model
    # closely follows the actual robot movements ... so that the
    # detection is performed accurately".
    assert results[1.0].fpr <= results[1.4].fpr
    assert results[1.0].fpr <= 0.2
    for matrix in results.values():
        assert matrix.fpr <= 0.6

"""Figure 9: detection probability vs injected error value and period.

Regenerates the per-cell probability surfaces from the campaign runs:
P(adverse impact), P(detect | dynamic model), P(detect | RAVEN), and their
marginals over the injected error value and the activation period.

Shapes under test (paper, Section IV.C):
- all probabilities grow with the injected error value and the period;
- the dynamic model's detection probability dominates RAVEN's;
- there are injections that cause adverse impact without RAVEN noticing
  (the attacker's window), but almost none that evade the dynamic model;
- small short injections (PID-corrected) cause no impact at all.
"""

import numpy as np
import pytest

from repro.experiments.campaigns import get_both_campaigns
from repro.experiments.fig9 import _marginal, format_results, run_fig9, shape_checks


@pytest.fixture(scope="module")
def campaigns(scale):
    return get_both_campaigns(scale)


def test_fig9_artifact(artifact_writer, campaigns, benchmark):
    tables = benchmark(run_fig9, campaigns)
    artifact_writer("fig9_detection_probability", format_results(tables))


def test_fig9_shapes(campaigns, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    tables = run_fig9(campaigns)
    checks = shape_checks(tables)
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"shape checks failed: {failed}"


def test_attackers_window_exists(campaigns, benchmark):
    """Some injections corrupt the physical state without RAVEN noticing
    — 'the attacker has a chance of causing an adverse impact ... with
    values that will not be detected by the robot'."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    tables = run_fig9(campaigns)
    evading = [
        cell
        for cells in tables.values()
        for cell, stats in cells.items()
        if stats["p_impact"] > 0.5 and stats["p_raven"] < 0.5
    ]
    assert evading, "no impact-without-RAVEN-detection cells found"


def test_model_covers_the_window(campaigns, benchmark):
    """The dynamic model detects (almost) every impactful cell."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    tables = run_fig9(campaigns)
    uncovered = [
        cell
        for cells in tables.values()
        for cell, stats in cells.items()
        if stats["p_impact"] > 0.5 and stats["p_model"] < 0.5
    ]
    total_impactful = sum(
        1
        for cells in tables.values()
        for stats in cells.values()
        if stats["p_impact"] > 0.5
    )
    # Allow a small slow-hijack tail (the paper's detector misses some
    # scenario-A cases too: TPR 89.8%, not 100%).
    assert len(uncovered) <= max(1, int(0.25 * total_impactful)), uncovered


def test_small_short_injections_harmless(campaigns, benchmark):
    """PID corrects short, small torque errors (paper: <64 ms bursts)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    tables = run_fig9(campaigns)
    cells_b = tables["B"]
    smallest = min(cell.error_value for cell in cells_b)
    shortest = min(cell.period_ms for cell in cells_b)
    for cell, stats in cells_b.items():
        if cell.error_value == smallest and cell.period_ms == shortest:
            assert stats["p_impact"] == 0.0


def test_period_marginal_monotone_impact(campaigns, benchmark):
    """P(impact) should not *decrease* with longer activation (B)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    tables = run_fig9(campaigns)
    rows = _marginal(tables["B"], "period_ms")
    impacts = [r[1] for r in rows]
    assert impacts[-1] >= impacts[0]
    # And the longest period has strictly more impact than the shortest.
    assert impacts[-1] > 0.0

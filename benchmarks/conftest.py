"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Expensive
inputs (calibrated thresholds, campaign outcomes) are computed once per
scale preset and cached under ``.cache/``; each benchmark also writes its
regenerated artifact to ``results/<name>.txt`` so the numbers survive the
run.

Scale control: set ``REPRO_SCALE=smoke|default|paper`` (see
``repro.experiments.scale``).  ``paper`` reproduces the paper's full run
counts and takes hours; ``default`` preserves the shapes in minutes.

Parallelism: campaign execution and threshold training fan out over
``REPRO_JOBS`` worker processes (default ``cpu_count - 1``; ``1`` forces
serial).  Results are bit-identical to serial runs; see
``repro.experiments.parallel`` and ``bench_campaign_throughput.py``.

Batching: single-core vectorization over an ``(N_rigs, ...)`` axis is the
other throughput lever (``repro.sim.batch`` / ``repro.experiments.batch``).
The ``batch_sizes`` fixture controls the swept widths
(``REPRO_BENCH_BATCH``, comma-separated, default ``1,8,32,128``) and
``recorded_stream`` provides the canonical command stream the detector
replay benchmarks share.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.calibration import get_thresholds
from repro.experiments.parallel import resolve_jobs
from repro.experiments.scale import current_scale

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def scale():
    """The selected experiment scale."""
    return current_scale()


@pytest.fixture(scope="session")
def jobs():
    """Execution-engine worker count (``REPRO_JOBS``, default serial-safe)."""
    return resolve_jobs()


@pytest.fixture(scope="session")
def thresholds(scale, jobs):
    """Calibrated detector thresholds (cached per scale)."""
    return get_thresholds(scale, jobs=jobs)


@pytest.fixture(scope="session")
def artifact_writer():
    """Write a regenerated artifact to results/ and echo it."""

    def write(name: str, content: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(content + "\n")
        print(f"\n----- {name} -----\n{content}\n")

    return write


# --- batched execution ------------------------------------------------------


@pytest.fixture(scope="session")
def batch_sizes():
    """Batch widths N swept by the batched benchmarks.

    Override with ``REPRO_BENCH_BATCH=1,4,16`` to trade fidelity for
    time; the replay speedup floor is only asserted when the sweep
    includes an N >= 32.
    """
    raw = os.environ.get("REPRO_BENCH_BATCH", "1,8,32,128")
    return tuple(int(part) for part in raw.split(",") if part.strip())


@pytest.fixture(scope="session")
def recorded_stream():
    """One recorded scenario-B command stream (DAC + mpos + pedal) that
    the detector-replay benchmarks re-evaluate under N detector lanes."""
    from repro.experiments.batch import CommandStream
    from repro.sim.runner import run_scenario_b

    result = run_scenario_b(
        seed=11, error_dac=12000, period_ms=300, duration_s=1.2,
        raven_safety_enabled=False,
    )
    return CommandStream.from_trace(result.trace)

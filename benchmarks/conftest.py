"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Expensive
inputs (calibrated thresholds, campaign outcomes) are computed once per
scale preset and cached under ``.cache/``; each benchmark also writes its
regenerated artifact to ``results/<name>.txt`` so the numbers survive the
run.

Scale control: set ``REPRO_SCALE=smoke|default|paper`` (see
``repro.experiments.scale``).  ``paper`` reproduces the paper's full run
counts and takes hours; ``default`` preserves the shapes in minutes.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.calibration import get_thresholds
from repro.experiments.scale import current_scale

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def scale():
    """The selected experiment scale."""
    return current_scale()


@pytest.fixture(scope="session")
def thresholds(scale):
    """Calibrated detector thresholds (cached per scale)."""
    return get_thresholds(scale)


@pytest.fixture(scope="session")
def artifact_writer():
    """Write a regenerated artifact to results/ and echo it."""

    def write(name: str, content: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(content + "\n")
        print(f"\n----- {name} -----\n{content}\n")

    return write

"""Ablation: threshold percentile / margin.

The paper picks thresholds "between the 99.8-99.9th percentiles of instant
velocity ... to eliminate the sensitivity of sample statistics to outliers
and possible noise".  This ablation sweeps a multiplicative margin around
the calibrated thresholds (equivalent to moving through and beyond the
percentile band) and records the TPR/FPR trade-off curve.
"""

import pytest

from repro.core.metrics import ConfusionMatrix
from repro.experiments.report import format_table
from repro.sim.runner import (
    make_detector_guard,
    run_fault_free,
    run_scenario_a,
    run_scenario_b,
)

MARGINS = (0.25, 0.5, 1.0, 2.0, 4.0)
ATTACKS = [
    ("B", 13000, 64),
    ("B", 24000, 32),
    ("A", 0.05, 64),
    ("A", 0.2, 16),
]
FAULT_FREE_SEEDS = tuple(range(500, 506))
DURATION = 1.4
SEED = 9


@pytest.fixture(scope="module")
def ground_truth():
    reference = run_fault_free(seed=SEED, duration_s=DURATION)
    labels = []
    for scenario, value, period in ATTACKS:
        kwargs = dict(
            seed=SEED, period_ms=period, duration_s=DURATION,
            raven_safety_enabled=False, attack_delay_cycles=300,
        )
        raw = (
            run_scenario_b(error_dac=int(value), **kwargs)
            if scenario == "B"
            else run_scenario_a(error_mm=value, **kwargs)
        )
        labels.append(raw.trace.max_deviation_from(reference) > 1e-3)
    return labels


def evaluate_margin(thresholds, margin, labels):
    scaled = thresholds.scaled(margin)
    pairs = []
    for (scenario, value, period), label in zip(ATTACKS, labels):
        guard = make_detector_guard(scaled)
        kwargs = dict(
            seed=SEED, period_ms=period, duration_s=DURATION, guard=guard,
            attack_delay_cycles=300,
        )
        if scenario == "B":
            run_scenario_b(error_dac=int(value), **kwargs)
        else:
            run_scenario_a(error_mm=value, **kwargs)
        pairs.append((label, guard.stats.alerted))
    for seed in FAULT_FREE_SEEDS:
        guard = make_detector_guard(scaled)
        run_fault_free(seed=seed, duration_s=DURATION, guard=guard)
        pairs.append((False, guard.stats.alerted))
    return ConfusionMatrix.from_pairs(pairs)


def test_threshold_margin_ablation(
    artifact_writer, thresholds, ground_truth, benchmark
):
    results = {m: evaluate_margin(thresholds, m, ground_truth) for m in MARGINS}
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = [
        [
            f"{margin:g}",
            f"{m.accuracy * 100:.1f}",
            f"{m.tpr * 100:.1f}",
            f"{m.fpr * 100:.1f}",
        ]
        for margin, m in results.items()
    ]
    artifact_writer(
        "ablation_thresholds",
        "margin 1.0 = calibrated 99.85th-percentile thresholds\n\n"
        + format_table(["margin", "ACC", "TPR", "FPR"], rows),
    )

    # Monotone trade-off: tightening thresholds never lowers TPR,
    # loosening never raises FPR.
    tprs = [results[m].tpr for m in MARGINS]
    fprs = [results[m].fpr for m in MARGINS]
    assert all(a >= b - 1e-9 for a, b in zip(tprs, tprs[1:]))
    assert all(a >= b - 1e-9 for a, b in zip(fprs, fprs[1:]))
    # The calibrated point is on the useful plateau: full TPR, low FPR.
    calibrated = results[1.0]
    assert calibrated.tpr >= 0.7
    assert calibrated.fpr <= 0.4
    # Far too tight -> false alarms on fault-free surgery.
    assert results[0.25].fpr >= calibrated.fpr
    # Far too loose -> attacks start slipping through.
    assert results[4.0].tpr <= calibrated.tpr

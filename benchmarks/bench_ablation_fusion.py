"""Ablation: alarm-fusion rule (ALL vs MAJORITY vs ANY).

The paper fuses motor-acceleration, motor-velocity and joint-velocity
alarms and alerts only when ALL three fire, "to reduce false alarms due to
model inaccuracies and natural noise".  This ablation quantifies that
choice on a small attack matrix plus fault-free runs: relaxing the rule
buys sensitivity at a catastrophic false-alarm cost.
"""

import pytest

from repro.core.detector import FusionRule
from repro.core.metrics import ConfusionMatrix, classification_report
from repro.experiments.report import format_table
from repro.sim.runner import (
    make_detector_guard,
    run_fault_free,
    run_scenario_a,
    run_scenario_b,
)

ATTACKS = [
    ("B", 5000, 16),
    ("B", 13000, 64),
    ("B", 24000, 32),
    ("A", 0.05, 64),
    ("A", 0.2, 16),
]
FAULT_FREE_SEEDS = tuple(range(400, 408))
DURATION = 1.4
SEED = 7


@pytest.fixture(scope="module")
def ground_truth(thresholds):
    """Labels from unprotected replicas (computed once)."""
    reference = run_fault_free(seed=SEED, duration_s=DURATION)
    labels = []
    for scenario, value, period in ATTACKS:
        kwargs = dict(
            seed=SEED, period_ms=period, duration_s=DURATION,
            raven_safety_enabled=False, attack_delay_cycles=300,
        )
        raw = (
            run_scenario_b(error_dac=int(value), **kwargs)
            if scenario == "B"
            else run_scenario_a(error_mm=value, **kwargs)
        )
        labels.append(raw.trace.max_deviation_from(reference) > 1e-3)
    return labels


def evaluate_fusion(thresholds, fusion, labels):
    pairs = []
    for (scenario, value, period), label in zip(ATTACKS, labels):
        guard = make_detector_guard(thresholds, fusion=fusion)
        kwargs = dict(
            seed=SEED, period_ms=period, duration_s=DURATION, guard=guard,
            attack_delay_cycles=300,
        )
        if scenario == "B":
            run_scenario_b(error_dac=int(value), **kwargs)
        else:
            run_scenario_a(error_mm=value, **kwargs)
        pairs.append((label, guard.stats.alerted))
    for seed in FAULT_FREE_SEEDS:
        guard = make_detector_guard(thresholds, fusion=fusion)
        run_fault_free(seed=seed, duration_s=DURATION, guard=guard)
        pairs.append((False, guard.stats.alerted))
    return ConfusionMatrix.from_pairs(pairs)


def test_fusion_ablation(artifact_writer, thresholds, ground_truth, benchmark):
    results = {}
    for fusion in (FusionRule.ALL, FusionRule.MAJORITY, FusionRule.ANY):
        results[fusion] = evaluate_fusion(thresholds, fusion, ground_truth)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = [
        [
            fusion.value,
            f"{m.accuracy * 100:.1f}",
            f"{m.tpr * 100:.1f}",
            f"{m.fpr * 100:.1f}",
            f"{m.f1 * 100:.1f}",
        ]
        for fusion, m in results.items()
    ]
    artifact_writer(
        "ablation_fusion",
        format_table(["fusion", "ACC", "TPR", "FPR", "F1"], rows)
        + "\n\n"
        + "\n".join(
            classification_report(m, name=f.value) for f, m in results.items()
        ),
    )

    all_rule = results[FusionRule.ALL]
    any_rule = results[FusionRule.ANY]
    # The paper's choice: ALL drastically reduces false alarms...
    assert all_rule.fpr <= any_rule.fpr
    # ...without giving up (much) sensitivity on real attacks.
    assert all_rule.tpr >= 0.6
    # ANY is hair-triggered: it alarms on (nearly) every fault-free run.
    assert any_rule.fpr >= 0.5

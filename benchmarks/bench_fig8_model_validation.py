"""Figure 8: dynamic-model validation — RK4 vs Euler.

Two measurements, as in the paper's embedded table:

- average wall-clock time per model step for the 4th-order Runge-Kutta
  and explicit Euler integrators at the 1 ms step (paper: 0.032 ms vs
  0.011 ms on their C++ implementation);
- average absolute motor/joint position error of the model running in
  parallel with the robot under identical control inputs.

Shapes under test: Euler is ~3x cheaper per step, both stay well inside
the 1 ms real-time budget, and the trajectory errors are of comparable
magnitude (Euler slightly worse).
"""

import numpy as np
import pytest

from repro.core.dynamic_model import RavenDynamicModel
from repro.experiments.fig8 import format_results, run_fig8
from repro.kinematics.workspace import Workspace


@pytest.mark.parametrize("integrator", ["euler", "rk4"])
def test_model_step(benchmark, integrator):
    """Per-step cost of the real-time model (the Fig. 8 'Avg. Time/Step')."""
    model = RavenDynamicModel(integrator=integrator)
    q0 = Workspace().neutral()
    v0 = np.array([0.1, -0.05, 0.01])
    benchmark(model.step, q0, v0, [3000, -2000, 1000])


def test_fig8_artifact(artifact_writer, scale, benchmark):
    rows = benchmark.pedantic(
        run_fig8,
        kwargs={
            "runs": scale.validation_runs,
            "duration_s": scale.validation_duration_s,
        },
        rounds=1,
        iterations=1,
    )
    artifact_writer("fig8_model_validation", format_results(rows))

    by_name = {r.integrator: r for r in rows}
    euler, rk4 = by_name["euler"], by_name["rk4"]
    # Euler is substantially cheaper (paper: 2.9x)...
    assert rk4.mean_step_ms > 1.5 * euler.mean_step_ms
    # ...and both are fast enough to run inside the 1 ms control period.
    assert euler.mean_step_ms < 1.0
    # Trajectory errors are comparable: Euler within 10x of RK4 per joint.
    assert np.all(euler.jpos_mae < 10 * rk4.jpos_mae + 1e-6)
    # The model follows the robot: open-loop joint errors stay a small
    # fraction of the motion range, while the gear-amplified motor-position
    # errors are large — the same structure as the paper's table (jpos
    # errors ~1-2 deg vs mpos errors >100 deg).
    assert np.all(euler.jpos_mae[:2] < 0.15)
    assert np.all(euler.mpos_mae[:2] > 10 * euler.jpos_mae[:2])

"""Campaign throughput: scalar loop vs ``(N_rigs, ...)`` batched execution.

Sweeps the batch width N over {1, 8, 32, 128} on one core and records
runs/sec for the two batched surfaces, writing the tables to
``results/campaign_throughput.txt``:

- **closed loop** — full rigs (console, network, control software, guard,
  plant) advanced in lockstep by :class:`repro.sim.batch
  .BatchedSurgicalRig`.  The per-cycle frontend stays per-lane Python,
  so the win saturates near the plant/model share of the cycle budget.
- **detector replay** — the detection pipeline alone (estimator sync,
  one-step model prediction, threshold fusion) replayed over one
  recorded command stream for N detector variants at once via
  :func:`repro.experiments.batch.replay_detector_batched`.  This path is
  fully vectorized and carries the headline assertion: **>= 10x
  runs/sec at N >= 32** against the scalar reference loop.

Both tables come with bit-identity checks against the scalar path —
speed means nothing here if the bytes drift.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.detector import FusionRule
from repro.core.mitigation import MitigationStrategy
from repro.experiments.batch import (
    ReplayLaneConfig,
    replay_detector_batched,
    replay_detector_scalar,
)
from repro.sim.batch import BatchedSurgicalRig, LaneSpec
from repro.sim.rig import RigConfig
from repro.sim.runner import make_detector_guard

#: Simulated duration of every closed-loop benchmark run.
CLOSED_LOOP_DURATION_S = 0.5

#: Scalar closed-loop baseline sample size (runs timed one by one).
SCALAR_BASELINE_RUNS = 2

#: The headline assertion: batched detector replay beats the scalar loop
#: by at least this factor at some swept N >= 32, single-core.
REPLAY_MIN_SPEEDUP = 10.0


def _guarded_spec(thresholds, seed: int) -> LaneSpec:
    return LaneSpec(
        RigConfig(
            seed=seed,
            duration_s=CLOSED_LOOP_DURATION_S,
            trajectory_name="circle",
        ),
        guard=make_detector_guard(
            thresholds, strategy=MitigationStrategy.MONITOR
        ),
    )


def _replay_lanes(thresholds, n: int):
    """N heterogeneous detector variants (thresholds + model error)."""
    return [
        ReplayLaneConfig(
            thresholds=thresholds.scaled(1.0 + 0.02 * i),
            parameter_error=1.0 + 0.005 * i,
            fusion=FusionRule.ANY,
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def closed_loop_table(thresholds, batch_sizes):
    """Rows of (N, elapsed_s, runs_per_sec) plus the scalar baseline."""
    t0 = time.perf_counter()
    scalar_fps = [
        _guarded_spec(thresholds, seed).build().run().fingerprint()
        for seed in range(SCALAR_BASELINE_RUNS)
    ]
    scalar_s = time.perf_counter() - t0
    scalar_rps = SCALAR_BASELINE_RUNS / scalar_s

    rows = []
    verified = True
    for n in batch_sizes:
        specs = [_guarded_spec(thresholds, seed) for seed in range(n)]
        t0 = time.perf_counter()
        traces = BatchedSurgicalRig(specs).run()
        elapsed = time.perf_counter() - t0
        rows.append((n, elapsed, n / elapsed))
        # Bit-identity spot check against the scalar baseline lanes.
        for i in range(min(n, SCALAR_BASELINE_RUNS)):
            verified &= traces[i].fingerprint() == scalar_fps[i]
    return scalar_rps, rows, verified


@pytest.fixture(scope="module")
def replay_table(thresholds, recorded_stream, batch_sizes):
    """Rows of (N, scalar_rps, batched_rps, speedup) over one stream."""
    rows = []
    verified = True
    for n in batch_sizes:
        lanes = _replay_lanes(thresholds, n)
        t0 = time.perf_counter()
        scalar = replay_detector_scalar(recorded_stream, lanes)
        scalar_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        batched = replay_detector_batched(recorded_stream, lanes)
        batched_s = time.perf_counter() - t0
        verified &= np.array_equal(scalar.alert_mask, batched.alert_mask)
        verified &= np.array_equal(scalar.alerts, batched.alerts)
        rows.append((n, n / scalar_s, n / batched_s, scalar_s / batched_s))
    return rows, verified


@pytest.mark.campaign
@pytest.mark.batch
def test_campaign_throughput_artifact(
    artifact_writer, closed_loop_table, replay_table, batch_sizes, benchmark
):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    scalar_rps, loop_rows, loop_ok = closed_loop_table
    replay_rows, replay_ok = replay_table
    cores = os.cpu_count() or 1

    lines = [
        f"machine: {cores} cores (all timings single-core); "
        f"batch widths: {list(batch_sizes)}",
        "",
        f"closed loop (full rigs, {CLOSED_LOOP_DURATION_S}s/run, "
        "MONITOR-guarded):",
        f"  scalar baseline: {scalar_rps:7.2f} runs/sec",
        "      N   elapsed    runs/sec   speedup",
    ]
    for n, elapsed, rps in loop_rows:
        lines.append(
            f"  {n:5d}  {elapsed:7.2f}s  {rps:9.2f}  {rps / scalar_rps:7.2f}x"
        )
    lines += [
        f"  bit-identical to scalar: {loop_ok}",
        "",
        "detector replay (vectorized estimator+model+detector over one "
        "recorded stream):",
        "      N   scalar r/s   batched r/s   speedup",
    ]
    for n, s_rps, b_rps, speedup in replay_rows:
        lines.append(f"  {n:5d}  {s_rps:10.2f}  {b_rps:11.2f}  {speedup:7.2f}x")
    lines.append(f"  bit-identical to scalar: {replay_ok}")
    best = max(sp for n, _, _, sp in replay_rows if n >= 32)
    lines.append(
        f"  best replay speedup at N>=32: {best:.2f}x "
        f"(floor: {REPLAY_MIN_SPEEDUP:.0f}x)"
    )
    artifact_writer("campaign_throughput", "\n".join(lines))


@pytest.mark.campaign
@pytest.mark.batch
def test_closed_loop_batch_bit_identical(closed_loop_table, benchmark):
    """Batched closed-loop traces match the scalar runs byte for byte."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, _, verified = closed_loop_table
    assert verified


@pytest.mark.campaign
@pytest.mark.batch
def test_replay_bit_identical(replay_table, benchmark):
    """Vectorized replay verdicts equal the scalar loop at every N."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, verified = replay_table
    assert verified


@pytest.mark.campaign
@pytest.mark.batch
def test_replay_speedup_floor(replay_table, benchmark):
    """>= 10x detector-replay throughput at some batch width N >= 32."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows, _ = replay_table
    eligible = [speedup for n, _, _, speedup in rows if n >= 32]
    assert eligible, "sweep must include N >= 32"
    assert max(eligible) >= REPLAY_MIN_SPEEDUP

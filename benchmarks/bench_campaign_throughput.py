"""Campaign execution throughput: serial vs the parallel engine.

Runs one fixed small campaign grid twice — once through the serial
:class:`~repro.attacks.campaign.CampaignRunner` and once through the
process-pool :class:`~repro.attacks.campaign.ParallelCampaignRunner`
with ``REPRO_BENCH_JOBS`` workers (default 4) — and records campaign
runs/sec for both, plus the speedup.

Properties under test:

- parallel outcomes are **bit-identical** to serial ones (same values,
  same order) — determinism is the engine's core contract;
- with 4 workers on >= 4 cores, throughput improves by at least 3x
  (the speedup assertion is skipped, but still recorded, on smaller
  machines where 4 workers cannot physically beat one).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.attacks.campaign import CampaignRunner, ParallelCampaignRunner

#: Fixed benchmark workload, independent of REPRO_SCALE so throughput
#: numbers are comparable across machines and runs.
GRID = dict(
    scenario="B",
    error_values=[9000, 26000],
    periods_ms=[16, 64],
    repetitions=2,
    fault_free_runs=4,
)
DURATION_S = 0.8

PARALLEL_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))

#: The speedup floor asserted when the machine has enough cores.
MIN_SPEEDUP = 3.0


def _campaign_runs(result) -> int:
    return len(result.outcomes)


@pytest.fixture(scope="module")
def timed_campaigns(thresholds):
    """(serial_result, serial_s, parallel_result, parallel_s)."""
    serial_runner = CampaignRunner(thresholds, duration_s=DURATION_S)
    t0 = time.perf_counter()
    serial = serial_runner.run_campaign(**GRID)
    serial_s = time.perf_counter() - t0

    parallel_runner = ParallelCampaignRunner(
        thresholds, duration_s=DURATION_S, jobs=PARALLEL_JOBS
    )
    t0 = time.perf_counter()
    parallel = parallel_runner.run_campaign(**GRID)
    parallel_s = time.perf_counter() - t0
    return serial, serial_s, parallel, parallel_s


@pytest.mark.campaign
def test_campaign_throughput_artifact(artifact_writer, timed_campaigns, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    serial, serial_s, parallel, parallel_s = timed_campaigns
    runs = _campaign_runs(serial)
    serial_rps = runs / serial_s
    parallel_rps = runs / parallel_s
    speedup = parallel_rps / serial_rps
    cores = os.cpu_count() or 1
    artifact_writer(
        "campaign_throughput",
        "\n".join(
            [
                f"workload: {runs} campaign runs "
                f"({GRID['scenario']}, {len(GRID['error_values'])} errors x "
                f"{len(GRID['periods_ms'])} periods x {GRID['repetitions']} reps "
                f"+ {GRID['fault_free_runs']} fault-free), "
                f"duration {DURATION_S}s/run",
                f"machine: {cores} cores; parallel jobs: {PARALLEL_JOBS}",
                f"serial:   {serial_s:7.2f}s  ({serial_rps:6.2f} runs/sec)",
                f"parallel: {parallel_s:7.2f}s  ({parallel_rps:6.2f} runs/sec)",
                f"speedup:  {speedup:5.2f}x",
                f"bit-identical outcomes: {serial.outcomes == parallel.outcomes}",
            ]
        ),
    )


@pytest.mark.campaign
def test_parallel_bit_identical_to_serial(timed_campaigns, benchmark):
    """The engine's determinism contract: same values, same order."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    serial, _, parallel, _ = timed_campaigns
    assert serial.outcomes == parallel.outcomes


@pytest.mark.campaign
def test_parallel_speedup(timed_campaigns, benchmark):
    """>= 3x runs/sec with 4 workers, where the hardware allows it."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cores = os.cpu_count() or 1
    if cores < PARALLEL_JOBS:
        pytest.skip(
            f"only {cores} cores available; {PARALLEL_JOBS} workers cannot "
            f"demonstrate a {MIN_SPEEDUP}x speedup (numbers still recorded "
            "in results/campaign_throughput.txt)"
        )
    _, serial_s, _, parallel_s = timed_campaigns
    assert serial_s / parallel_s >= MIN_SPEEDUP

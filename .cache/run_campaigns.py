"""Precompute default-scale campaigns (cached as JSON)."""
import sys, time
from repro.experiments.campaigns import get_campaign
from repro.experiments.scale import DEFAULT

t0 = time.perf_counter()
for scenario in ("A", "B"):
    get_campaign(scenario, DEFAULT, progress=lambda m: print(m, flush=True))
    print(f"== scenario {scenario} done at {time.perf_counter()-t0:.0f}s", flush=True)
print("ALL CAMPAIGNS DONE", flush=True)

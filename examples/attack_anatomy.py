"""Anatomy of the targeted attack — all three phases, end to end.

Reproduces Section III of the paper against the simulated RAVEN II:

Phase 1 — Attack Preparation: a malicious shared library is added to the
    surgeon account's LD_PRELOAD; new control-software processes link its
    ``write`` wrapper, which captures every USB packet and forwards it to
    the attacker over (loopback) UDP.

Phase 2 — Offline Analysis: the attacker, who does not know the USB packet
    format, studies the captures byte by byte (Figure 5), finds the
    periodically toggling watchdog bit, identifies Byte 0 as the state
    byte, and maps its values onto the publicly documented state machine
    across several runs (Figure 6).

Phase 3 — Deployment: the wrapper is swapped for an injector keyed on the
    recovered Pedal-Down byte values.  Mid-"surgery", it corrupts the
    motor commands after the software safety checks — the arm jumps and
    the robot crashes to E-STOP.

Usage:  python examples/attack_anatomy.py
"""

import numpy as np

from repro import constants
from repro.attacks.analysis import (
    OfflineAnalysis,
    byte_cardinalities,
    byte_value_series,
)
from repro.attacks.eavesdrop import EavesdropLogger, build_eavesdropper_library
from repro.attacks.injection import DacOffsetInjection, build_scenario_b_library
from repro.attacks.malware import PedalDownTrigger
from repro.sim.rig import RigConfig, SurgicalRig
from repro.sim.runner import run_fault_free
from repro.teleop.network import LoopbackExfiltration


def phase1_eavesdrop(runs: int = 5, duration_s: float = 1.6):
    """Capture several surgical sessions with the preloaded library."""
    print("=== Phase 1: Attack Preparation (eavesdropping) ===")
    sink = LoopbackExfiltration()
    captures = []
    try:
        for i in range(runs):
            logger = EavesdropLogger()
            library, _ = build_eavesdropper_library(logger, sink=sink)
            config = RigConfig(
                seed=100 + i,
                duration_s=duration_s,
                trajectory_name=("circle", "figure8", "suturing")[i % 3],
                pedal_release_s=duration_s * 0.85 if i % 2 else None,
            )
            SurgicalRig(config, preload_libraries=[library]).run()
            captures.append(logger.command_packets())
            print(f"  run {i}: captured {len(captures[-1])} USB packets, "
                  f"exfiltrated {sink.sent} datagrams so far")
    finally:
        sink.close()
    return captures


def phase2_analyze(captures):
    """Byte-by-byte analysis of the captures (Figures 5-6)."""
    print("\n=== Phase 2: Offline Analysis ===")
    series = byte_value_series(captures[0])
    cards = byte_cardinalities(series)
    print("  per-byte distinct values (run 0):")
    print("   ", " ".join(f"B{i}:{c}" for i, c in enumerate(cards)))

    analysis = OfflineAnalysis()
    for packets in captures:
        analysis.add_run(packets)
    conclusion = analysis.conclude()
    print(f"  -> Byte {conclusion.state_byte} switches among few values "
          f"in long steps: the state byte")
    print(f"  -> bit {conclusion.watchdog_bit} of it toggles periodically: "
          f"the watchdog square wave")
    print("  -> matching value order against the public state machine:")
    for value, name in sorted(conclusion.value_to_state.items()):
        print(f"       0x{value:02X} = {name}")
    trigger_values = sorted(conclusion.pedal_down_raw_values)
    print(f"  -> TRIGGER: attack when Byte {conclusion.state_byte} is "
          + " or ".join(f"0x{v:02X}" for v in trigger_values))
    return conclusion


def phase3_deploy(conclusion, duration_s: float = 1.6):
    """Deploy the injector built from the analysis and show the damage."""
    print("\n=== Phase 3: Deployment ===")
    seed = 200
    reference = run_fault_free(seed=seed, duration_s=duration_s)

    trigger = PedalDownTrigger(
        trigger_values=conclusion.pedal_down_raw_values,
        delay_cycles=300,       # strike mid-procedure
        duration_cycles=64,     # 64 ms burst
    )
    payload = DacOffsetInjection(offset_counts=26000, channel=0)
    malware = build_scenario_b_library(trigger, payload)

    config = RigConfig(seed=seed, duration_s=duration_s)
    rig = SurgicalRig(config, preload_libraries=[malware])
    trace = rig.run()

    deviation = trace.max_deviation_from(reference)
    print(f"  malware activated at cycle {trigger.first_active_cycle} "
          f"(robot engaged, instruments 'inside the patient')")
    print(f"  packets corrupted: {trigger.activations}")
    print(f"  tool-tip deviation from surgeon intent: {deviation * 1e3:.2f} mm")
    print(f"  abrupt 10 ms jump: {trace.max_jump(10e-3) * 1e3:.2f} mm")
    print(f"  robot outcome: "
          f"{trace.estop_reasons or 'no E-STOP (attack under the radar)'}")
    print("\n  The software safety checks ran BEFORE the write() call — the "
          "corrupted packet sailed through the USB board unverified (TOCTOU).")


def main() -> None:
    captures = phase1_eavesdrop()
    conclusion = phase2_analyze(captures)
    phase3_deploy(conclusion)


if __name__ == "__main__":
    main()

"""Why the paper's attack defeats conventional defenses — and how the
dynamic model closes the gap.

Section III.D argues that traditional countermeasures — encrypted links,
authenticated protocols, remote software attestation — either cost too
much of the 1 ms budget or leave the TOCTOU window open.  This example
runs each defense against the relevant attack:

1. Secure ITP (HMAC-authenticated console traffic)
     vs a wire MITM        -> STOPS it (forged datagrams rejected)
     vs scenario A malware -> DOES NOT (modifies after authentication)
2. Bump-in-the-wire encryption on the USB link
     vs a wire tamperer    -> STOPS it (frames fail integrity)
     vs scenario B malware -> DOES NOT (wrapper runs before encryption)
3. Remote software attestation
     detects the preloaded library — but only at the next periodic scan,
     leaving a window of ~one period of 1 ms control cycles
4. The dynamic-model detector
     catches the *physical consequence* of the commands regardless of
     where in the stack they were forged — within ~1-2 cycles.

Usage:  python examples/defense_comparison.py
"""

import numpy as np

from repro.attacks.eavesdrop import EavesdropLogger, build_eavesdropper_library
from repro.attacks.injection import DacOffsetInjection, UserInputInjection
from repro.attacks.network import make_mitm_adversary
from repro.control.state_machine import RobotState
from repro.core.attestation import AttestationMonitor
from repro.core.mitigation import MitigationStrategy
from repro.hw.bitw import BitwProtectedDevice
from repro.hw.usb_packet import encode_command_packet
from repro.sim.runner import make_detector_guard, run_scenario_b, train_thresholds
from repro.sysmodel.linker import DynamicLinker, SystemEnvironment
from repro.teleop.itp import ItpPacket, encode_itp
from repro.teleop.secure_itp import (
    AuthenticationError,
    SecureItpReceiver,
    SecureItpSender,
)

KEY = b"session-key-32-bytes-aaaabbbbccc"


def demo_secure_itp() -> None:
    print("=== 1. Secure ITP (authenticated console traffic) ===")
    sender = SecureItpSender(KEY)
    receiver = SecureItpReceiver(KEY)

    # Wire MITM: can only corrupt bytes blindly -> rejected.
    sealed = bytearray(sender.seal(ItpPacket(0, True, np.zeros(3))))
    sealed[10] ^= 0xFF
    try:
        receiver.open(bytes(sealed))
        print("  wire MITM: forged packet ACCEPTED (defense failed!)")
    except AuthenticationError:
        print("  wire MITM: forged packet rejected  -> defense WORKS")

    # Scenario A: the wrapper modifies the packet after authentication.
    receiver.reset()
    authentic = receiver.open(sender.seal(ItpPacket(1, True, np.zeros(3))))
    malware = UserInputInjection(error_m=1e-3, direction=[1, 0, 0])
    corrupted = malware.apply(authentic)
    print(f"  scenario A: increment after in-host malware = "
          f"{corrupted.dpos[0] * 1e3:.1f} mm  -> defense BYPASSED (TOCTOU)")


def demo_bitw() -> None:
    print("\n=== 2. Bump-in-the-wire USB encryption ===")

    class Latch:
        dac0 = 0

        def fd_write(self, data):
            from repro.hw.usb_packet import decode_command_packet

            Latch.dac0 = decode_command_packet(data).dac_values[0]
            return len(data)

        def fd_read(self, n):
            return b"\x00" * n

    # Wire tamperer between the boxes: frame dropped.
    def flip(sealed: bytes) -> bytes:
        buf = bytearray(sealed)
        buf[7] ^= 0x20
        return bytes(buf)

    protected = BitwProtectedDevice(Latch(), KEY, wire_tamper=flip)
    protected.fd_write(
        encode_command_packet(RobotState.PEDAL_DOWN, True, [9000, 0, 0])
    )
    print(f"  wire tamperer: frames rejected = {protected.rejected_writes}, "
          f"executed DAC = {Latch.dac0}  -> defense WORKS")

    # Scenario B: wrapper output enters the encryptor as plaintext.
    protected = BitwProtectedDevice(Latch(), KEY)
    packet = encode_command_packet(RobotState.PEDAL_DOWN, True, [100, 0, 0])
    corrupted = DacOffsetInjection(8000, channel=0).apply(packet)
    protected.fd_write(corrupted)
    print(f"  scenario B malware: executed DAC = {Latch.dac0} "
          f"(injected 8000)  -> defense BYPASSED")
    print(f"  added latency per write: "
          f"{protected.round_trip_latency_s * 1e6:.0f} us of the 1000 us budget")


def demo_attestation() -> None:
    print("\n=== 3. Remote software attestation ===")
    env = SystemEnvironment()
    linker = DynamicLinker(env)
    process = linker.spawn("r2_control", user="surgeon")
    monitor = AttestationMonitor(process, env, period_cycles=1000)
    monitor.enroll()

    for _ in range(1000):
        monitor.tick()
    library, _ = build_eavesdropper_library(EavesdropLogger())
    env.set_user_preload("surgeon", library)
    process.relink(linker)
    infection_cycle = 1001
    for _ in range(1100):
        monitor.tick()

    latency = monitor.detection_latency_cycles(infection_cycle)
    print(f"  malware installed at cycle {infection_cycle}")
    print(f"  attestation flagged it {latency} control cycles later "
          f"(next periodic scan)")
    print(f"  -> {latency} one-millisecond TOCTOU windows in which the "
          f"malware was free to act")


def demo_dynamic_model() -> None:
    print("\n=== 4. Dynamic-model detector (the paper's defense) ===")
    thresholds = train_thresholds(num_runs=6, duration_s=1.2)
    guard = make_detector_guard(
        thresholds, strategy=MitigationStrategy.BLOCK_AND_ESTOP
    )
    result = run_scenario_b(
        seed=88, error_dac=26000, period_ms=64, duration_s=1.4, guard=guard,
        attack_delay_cycles=300,
    )
    latency = guard.stats.first_alert_cycle - result.trace.attack_first_cycle
    print(f"  scenario B attack detected {latency} ms after the first "
          f"corrupted packet; command blocked, robot E-STOPped")
    print(f"  jump with protection: "
          f"{result.trace.max_jump(10e-3) * 1e3:.2f} mm (< 1 mm limit)")
    print("  -> the detector judges commands by their PHYSICAL consequence,"
          "\n     so it does not matter where in the stack they were forged.")


def main() -> None:
    demo_secure_itp()
    demo_bitw()
    demo_attestation()
    demo_dynamic_model()


if __name__ == "__main__":
    main()

"""Quickstart: simulate a teleoperated surgery, attack it, detect it.

Runs in under a minute:

1. a fault-free teleoperated session on the simulated RAVEN II;
2. the same session with a scenario-B malware (LD_PRELOAD wrapper around
   ``write`` injecting a DAC offset once the robot is engaged);
3. the attacked session again with the dynamic model-based detector
   guarding the USB board in block-and-E-STOP mode.

Usage:  python examples/quickstart.py
"""

from repro.core.mitigation import MitigationStrategy
from repro.sim.runner import (
    make_detector_guard,
    run_fault_free,
    run_scenario_b,
    train_thresholds,
)

SEED = 42
DURATION_S = 1.6
ERROR_DAC = 26000
PERIOD_MS = 64


def main() -> None:
    print("=== 1. fault-free session ===")
    reference = run_fault_free(seed=SEED, duration_s=DURATION_S)
    print(f"  cycles: {len(reference)}")
    print(f"  engaged fraction: {reference.pedal_down_fraction():.2f}")
    print(f"  max 10ms jump: {reference.max_jump(10e-3) * 1e3:.3f} mm")
    print(f"  E-STOPs: {reference.estop_reasons or 'none'}")

    print("\n=== 2. scenario-B attack, robot unprotected ===")
    attacked = run_scenario_b(
        seed=SEED,
        error_dac=ERROR_DAC,
        period_ms=PERIOD_MS,
        duration_s=DURATION_S,
        raven_safety_enabled=False,
    )
    deviation = attacked.trace.max_deviation_from(reference)
    print(f"  attack fired: {attacked.record.fired} "
          f"({attacked.record.activations} packets corrupted)")
    print(f"  deviation from surgeon's intent: {deviation * 1e3:.2f} mm")
    print(f"  max 10ms jump: {attacked.trace.max_jump(10e-3) * 1e3:.3f} mm")
    print(f"  adverse impact (>1 mm): {deviation > 1e-3}")

    print("\n=== 3. same attack, dynamic-model detector installed ===")
    print("  training thresholds on fault-free runs "
          "(99.8-99.9th percentile of instant rates)...")
    thresholds = train_thresholds(num_runs=8, duration_s=1.2)
    guard = make_detector_guard(
        thresholds, strategy=MitigationStrategy.BLOCK_AND_ESTOP
    )
    protected = run_scenario_b(
        seed=SEED,
        error_dac=ERROR_DAC,
        period_ms=PERIOD_MS,
        duration_s=DURATION_S,
        guard=guard,
    )
    first_alert = guard.stats.first_alert_cycle
    first_attack = protected.trace.attack_first_cycle
    print(f"  detector alerted: {guard.stats.alerted}")
    if first_alert is not None and first_attack is not None:
        print(f"  detection latency: {first_alert - first_attack} ms "
              f"after the first corrupted packet")
    print(f"  commands blocked: {guard.stats.blocked}")
    print(f"  robot E-STOPped safely: "
          f"{[r for r in protected.trace.estop_reasons]}")
    print(f"  max 10ms jump with protection: "
          f"{protected.trace.max_jump(10e-3) * 1e3:.3f} mm "
          f"(vs {attacked.trace.max_jump(10e-3) * 1e3:.3f} mm unprotected)")

    from pathlib import Path

    from repro.sim.visualize import save_svg

    Path("results").mkdir(exist_ok=True)
    out = save_svg(
        attacked.trace,
        "results/quickstart_attack.svg",
        reference=reference,
        title="scenario-B attack vs fault-free reference",
    )
    print(f"\n  trajectory rendering written to {out}")


if __name__ == "__main__":
    main()

"""Detector calibration and tuning walkthrough.

Shows the full Section IV.C pipeline as a user of the library would run it:

1. learn alarm thresholds from fault-free runs (the paper uses the
   99.8-99.9th percentile of instant motor/joint rates over 600 runs —
   scaled down here for speed);
2. evaluate the detector on a small attack matrix and on fault-free runs;
3. sweep the alarm-fusion rule (ALL / MAJORITY / ANY) to show the
   TPR-vs-FPR trade-off the paper's fusion choice navigates.

Usage:  python examples/detection_tuning.py
"""

import numpy as np

from repro.core.detector import FusionRule
from repro.core.metrics import ConfusionMatrix, classification_report
from repro.sim.runner import (
    make_detector_guard,
    run_fault_free,
    run_scenario_a,
    run_scenario_b,
    train_thresholds,
)

TRAIN_RUNS = 10
ATTACKS = [
    ("B", 5000, 16),
    ("B", 13000, 64),
    ("B", 18000, 64),
    ("B", 26000, 32),
    ("A", 0.05, 64),
    ("A", 0.1, 32),
    ("A", 0.5, 16),
]
FAULT_FREE_SEEDS = range(300, 308)
DURATION = 1.4


def evaluate(thresholds, fusion: FusionRule):
    """Label/detection pairs for the attack matrix + fault-free runs."""
    pairs = []
    for scenario, value, period in ATTACKS:
        guard = make_detector_guard(thresholds, fusion=fusion)
        common = dict(seed=7, period_ms=period, duration_s=DURATION,
                      guard=guard, attack_delay_cycles=300)
        if scenario == "B":
            result = run_scenario_b(error_dac=int(value), **common)
        else:
            result = run_scenario_a(error_mm=value, **common)
        # Ground truth from the unprotected replica.
        raw_kwargs = dict(common, guard=None, raven_safety_enabled=False)
        raw = (run_scenario_b(error_dac=int(value), **raw_kwargs)
               if scenario == "B"
               else run_scenario_a(error_mm=value, **raw_kwargs))
        reference = run_fault_free(seed=7, duration_s=DURATION)
        label = raw.trace.max_deviation_from(reference) > 1e-3
        pairs.append((label, guard.stats.alerted))
    for seed in FAULT_FREE_SEEDS:
        guard = make_detector_guard(thresholds, fusion=fusion)
        run_fault_free(seed=seed, duration_s=DURATION, guard=guard)
        pairs.append((False, guard.stats.alerted))
    return ConfusionMatrix.from_pairs(pairs)


def main() -> None:
    print(f"training thresholds on {TRAIN_RUNS} fault-free runs...")
    thresholds = train_thresholds(num_runs=TRAIN_RUNS, duration_s=1.4)
    print("  motor velocity thresholds (rad/s):",
          np.round(thresholds.motor_velocity, 2))
    print("  motor acceleration thresholds (rad/s^2):",
          np.round(thresholds.motor_acceleration, 0))
    print("  joint velocity thresholds:",
          np.round(thresholds.joint_velocity, 3))

    print("\nfusion-rule sweep (the paper uses ALL):")
    for fusion in (FusionRule.ALL, FusionRule.MAJORITY, FusionRule.ANY):
        matrix = evaluate(thresholds, fusion)
        print(" ", classification_report(matrix, name=f"fusion={fusion.value:9s}"))

    print("\nthreshold-margin sweep (fusion=ALL):")
    for margin in (0.8, 1.0, 1.5):
        matrix = evaluate(thresholds.scaled(margin), FusionRule.ALL)
        print(" ", classification_report(matrix, name=f"margin={margin:4.1f}   "))


if __name__ == "__main__":
    main()

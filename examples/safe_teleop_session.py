"""A protected surgical session: teleoperation under active attack.

Wires a complete session — console, network, control software, USB board,
PLC, plant — with BOTH a deployed scenario-B malware and the dynamic
model-based detector in block-and-E-STOP mode, then compares three worlds:

- fault-free surgery (what the surgeon intended);
- attacked surgery on the stock robot (what the paper shows happens);
- attacked surgery with the detector guarding the USB board.

Usage:  python examples/safe_teleop_session.py
"""

import numpy as np

from repro.attacks.injection import DacOffsetInjection, build_scenario_b_library
from repro.attacks.malware import PedalDownTrigger
from repro.core.mitigation import MitigationStrategy
from repro.sim.rig import RigConfig, SurgicalRig
from repro.sim.runner import make_detector_guard, train_thresholds

SEED = 77
DURATION_S = 2.0
TRAJECTORY = "suturing"


def run_world(name, malware=None, guard=None):
    config = RigConfig(
        seed=SEED,
        duration_s=DURATION_S,
        trajectory_name=TRAJECTORY,
        raven_safety_enabled=True,
    )
    libraries = [malware] if malware is not None else []
    rig = SurgicalRig(config, preload_libraries=libraries, guard=guard)
    trace = rig.run()
    return trace


def fresh_malware():
    trigger = PedalDownTrigger.for_pedal_down(
        delay_cycles=500, duration_cycles=96
    )
    payload = DacOffsetInjection(offset_counts=28000, channel=1)
    return build_scenario_b_library(trigger, payload), trigger


def main() -> None:
    print("calibrating detector thresholds (fault-free runs)...")
    thresholds = train_thresholds(num_runs=8, duration_s=1.4)

    print("\nworld 1: fault-free suturing session")
    reference = run_world("fault-free")
    print(f"  engaged {reference.pedal_down_fraction() * 100:.0f}% of the "
          f"session, no E-STOP: {not reference.estop_occurred()}")

    print("\nworld 2: the same session with the malware, stock robot")
    malware, trigger = fresh_malware()
    attacked = run_world("attacked", malware=malware)
    print(f"  malware corrupted {trigger.activations} packets")
    print(f"  abrupt jump: {attacked.max_jump(10e-3) * 1e3:.2f} mm")
    print(f"  deviation from intent: "
          f"{attacked.max_deviation_from(reference) * 1e3:.2f} mm")
    print(f"  robot outcome: {attacked.estop_reasons or 'kept running'}")

    print("\nworld 3: the same session, detector guarding the USB board")
    malware, trigger = fresh_malware()
    guard = make_detector_guard(
        thresholds, strategy=MitigationStrategy.BLOCK_AND_ESTOP
    )
    protected = run_world("protected", malware=malware, guard=guard)
    first_alert = guard.stats.first_alert_cycle
    latency = (None if first_alert is None or trigger.first_active_cycle is None
               else first_alert - trigger.first_active_cycle)
    print(f"  detector alert: {guard.stats.alerted} "
          f"(latency {latency} ms after first corrupted packet)")
    print(f"  malicious commands blocked: {guard.stats.blocked}")
    print(f"  abrupt jump: {protected.max_jump(10e-3) * 1e3:.2f} mm "
          f"(vs {attacked.max_jump(10e-3) * 1e3:.2f} mm unprotected)")
    print(f"  robot outcome: {protected.estop_reasons}")
    print("\nthe detector halted the robot before the jump the malware "
          "would have caused could complete.")


if __name__ == "__main__":
    main()

"""Black-box forensics: reconstruct an attack from the flight recorder.

A surgical-robot incident is only as analyzable as the evidence it
leaves behind.  With ``REPRO_OBS=1`` the simulator keeps a bounded ring
of per-cycle forensic records — commanded DAC vs. the DAC the USB board
actually saw, model-estimated vs. measured state, detector margins, and
guard health — and dumps it as a JSONL "black box" the moment the
detector blocks a command or the PLC latches an E-STOP.

This example stages the paper's scenario B (a preloaded ``write``
wrapper adds a DAC offset *after* the RAVEN safety checks), lets the
dynamic-model detector block it, then plays the investigator: load the
dump, find the offending cycle, and show that the recorded evidence
pins both the tampering (commanded != seen DAC) and the physics that
exposed it (all three margin groups above 1.0).

Usage:  python examples/blackbox_forensics.py
        # artifacts land in obs_out/ (trace.json opens in Perfetto /
        # chrome://tracing; flight dumps are JSONL)
"""

import os

# Telemetry must be configured before any component captures the
# runtime: flip the knobs first, then import the stack.
os.environ.setdefault("REPRO_OBS", "1")
os.environ.setdefault("REPRO_OBS_DIR", "obs_out")

import numpy as np  # noqa: E402

from repro.core.mitigation import MitigationStrategy  # noqa: E402
from repro.core.thresholds import SafetyThresholds  # noqa: E402
from repro.obs.flight import FlightRecorder  # noqa: E402
from repro.obs.runtime import get_runtime  # noqa: E402
from repro.sim.runner import make_detector_guard, run_scenario_b  # noqa: E402

#: Realistically wide thresholds: fault-free motion stays well under
#: them; a violent injection exceeds all three groups within cycles.
THRESHOLDS = SafetyThresholds(
    motor_velocity=np.array([15.0, 15.0, 8.0]),
    motor_acceleration=np.array([1200.0, 1200.0, 900.0]),
    joint_velocity=np.array([0.5, 0.5, 0.1]),
)


def main() -> None:
    print("== incident: scenario-B injection vs detector in BLOCK mode ==")
    guard = make_detector_guard(THRESHOLDS, strategy=MitigationStrategy.BLOCK)
    run_scenario_b(
        seed=11,
        error_dac=30_000,
        period_ms=64,
        duration_s=1.1,
        attack_delay_cycles=150,
        guard=guard,
    )
    print(f"detector: {guard.stats.alerts} alerts, {guard.stats.blocked} blocked")

    runtime = get_runtime()
    dumps = sorted(runtime.flight_dir.glob("flight-*.jsonl"))
    if not dumps:
        raise SystemExit("no flight dump written — is REPRO_OBS enabled?")
    print(f"black boxes: {[d.name for d in dumps]}")

    print("\n== investigation: load the first dump, find the offender ==")
    header, rows = FlightRecorder.load(dumps[0])
    print(
        f"dump reason={header['reason']!r}, "
        f"{header['cycles_in_dump']} cycles of context, "
        f"run context={header['context']}"
    )
    offender = next(row for row in rows if row["alert"])
    deltas = [
        seen - commanded
        for seen, commanded in zip(offender["dac_seen"], offender["dac_commanded"])
    ]
    print(f"first alerting cycle: {offender['cycle']} (t={offender['t']:.3f}s)")
    print(f"  controller commanded DAC: {offender['dac_commanded'][:3]}")
    print(f"  USB board actually saw:   {offender['dac_seen'][:3]}")
    print(f"  per-channel tampering:    {deltas[:3]}  <- the smoking gun")
    print("  margins vs thresholds:    "
          + ", ".join(f"{k}={v:.2f}" for k, v in offender["margins"].items()))
    print(f"  command blocked: {offender['blocked']}, health: {offender['health']}")

    before = [row for row in rows if row["cycle"] < offender["cycle"]][-3:]
    print("\nlead-up (ALL-groups fusion withheld the alert until every "
          "variable group alarmed):")
    for row in before:
        worst = max(row["margins"].values()) if row["margins"] else float("nan")
        print(f"  cycle {row['cycle']}: worst margin {worst:.2f}, "
              f"alert={row['alert']}")

    # Flush metrics.prom / trace.json / events.jsonl for inspection now
    # (an atexit hook would also write them at interpreter shutdown).
    paths = runtime.export()
    print("\nexported: " + ", ".join(str(p) for p in paths))
    print("open obs_out/trace.json in chrome://tracing or ui.perfetto.dev")


if __name__ == "__main__":
    main()

"""The sanctioned environment-variable shim (RPR002).

Golden-trace-critical packages (``core``, ``dynamics``, ``sim``, ``hw``,
``experiments``) must not read ``os.environ`` directly: an ambient
environment read buried in a hot path is exactly the kind of hidden input
that makes two "identical" runs diverge, and the static-analysis pass
(:mod:`repro.analysis`, rule RPR002) rejects it.  Every knob instead goes
through this module, which keeps the full set of environment inputs
greppable in one place and gives the engine a single seam to audit.

The helpers deliberately do *not* cache: chaos tests and the CLI mutate
``os.environ`` mid-process and expect the next read to see the change.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, TypeVar

_T = TypeVar("_T")


def env_str(name: str, default: str = "") -> str:
    """The stripped value of ``name`` (``default`` when unset).

    This is the single sanctioned raw ``os.environ`` read; everything in
    the golden-trace-critical packages funnels through it.
    """
    return os.environ.get(name, default).strip()


def env_is_set(name: str) -> bool:
    """Whether ``name`` is set to a non-empty (non-whitespace) value."""
    return bool(env_str(name))


def env_parsed(
    name: str, parse: Callable[[str], _T], kind: str = "a number"
) -> Optional[_T]:
    """Parse ``name`` with ``parse``; ``None`` when unset.

    A set-but-unparseable value raises ``ValueError`` naming the variable,
    so a typo'd knob fails loudly instead of silently using a default.
    """
    raw = env_str(name)
    if not raw:
        return None
    try:
        return parse(raw)
    except ValueError:
        raise ValueError(f"{name} must be {kind}, got {raw!r}") from None


def env_int(name: str) -> Optional[int]:
    """Integer value of ``name`` (``None`` when unset)."""
    return env_parsed(name, int, kind="an integer")


def env_float(name: str) -> Optional[float]:
    """Float value of ``name`` (``None`` when unset)."""
    return env_parsed(name, float, kind="a number")

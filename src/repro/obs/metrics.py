"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry is deliberately minimal — no labels, no background threads,
no locks (the control loop is single-threaded and worker processes each
own their registry).  Histograms use *fixed* bucket bounds so memory is
bounded no matter how long a campaign runs: observing ten million cycles
costs the same few dozen integers as observing ten.

Disabled mode is a first-class citizen: :class:`NullRegistry` hands out
shared no-op metric instances, so instrumented code can hold references
unconditionally and the disabled path costs one ``is None`` / ``enabled``
branch, never a dictionary lookup or an allocation.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple, Union

#: Default bounds for duration histograms (seconds): 1 µs .. 100 ms,
#: log-spaced 1-2-5.  Control-loop probes land mid-range; anything above
#: the top bucket overflows into +Inf and is still counted and summed.
DEFAULT_TIME_BUCKETS_S: Tuple[float, ...] = (
    1e-6, 2e-6, 5e-6,
    1e-5, 2e-5, 5e-5,
    1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2,
    1e-1,
)

#: Default bounds for detector margin *ratios* (value / threshold): the
#: interesting dynamics live around 1.0 (the alarm line).
MARGIN_RATIO_BUCKETS: Tuple[float, ...] = (
    0.1, 0.2, 0.5, 0.8, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 5.0, 10.0, 100.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:  # noqa: A002
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def summary(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A value that goes up and down (last write wins)."""

    __slots__ = ("name", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:  # noqa: A002
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def summary(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket histogram with bounded memory.

    ``buckets`` are finite, strictly increasing upper bounds; a value
    ``v`` lands in the first bucket with ``v <= bound`` and anything
    above the last bound lands in the implicit ``+Inf`` overflow bucket.
    ``count``/``sum``/``min``/``max`` are exact; :meth:`quantile` is the
    usual bucket-bound approximation (good enough for overhead reports,
    not for billing).
    """

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count", "sum",
                 "min", "max")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",  # noqa: A002
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS_S,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name} bucket bounds must strictly increase"
            )
        self.name = name
        self.help = help
        self.bounds = bounds
        #: Per-bucket (non-cumulative) counts; last slot is +Inf overflow.
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def cumulative_counts(self) -> List[int]:
        """Cumulative counts per bucket, +Inf last (Prometheus shape)."""
        out, running = [], 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile as a bucket upper bound.

        Returns the smallest bucket bound whose cumulative count covers
        ``q`` of the observations; overflow observations report the
        exact observed maximum instead of +Inf.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for bound, c in zip(self.bounds, self.bucket_counts):
            running += c
            if running >= target:
                return bound
        return self.max if self.max is not None else self.bounds[-1]

    def summary(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
        }


Metric = Union[Counter, Gauge, Histogram]


class NullCounter(Counter):
    """Counter that ignores everything (disabled telemetry)."""

    def __init__(self) -> None:
        super().__init__("null")

    def inc(self, amount: float = 1.0) -> None:
        pass


class NullGauge(Gauge):
    """Gauge that ignores everything (disabled telemetry)."""

    def __init__(self) -> None:
        super().__init__("null")

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass


class NullHistogram(Histogram):
    """Histogram that ignores everything (disabled telemetry)."""

    def __init__(self) -> None:
        super().__init__("null", buckets=(1.0,))

    def observe(self, value: float) -> None:
        pass


class MetricsRegistry:
    """Name -> metric map with get-or-create semantics."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, factory, kind: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {metric.kind}, "
                f"requested as a {kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:  # noqa: A002
        return self._get_or_create(  # type: ignore[return-value]
            name, lambda: Counter(name, help), "counter"
        )

    def gauge(self, name: str, help: str = "") -> Gauge:  # noqa: A002
        return self._get_or_create(  # type: ignore[return-value]
            name, lambda: Gauge(name, help), "gauge"
        )

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS_S,
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            name, lambda: Histogram(name, help, buckets), "histogram"
        )

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self, prefix: str = "") -> Dict[str, dict]:
        """Metrics as JSON-native summaries, name-sorted.

        ``prefix`` restricts the export to metric names starting with it —
        the per-tenant seam the service scrape endpoint uses (e.g.
        ``prefix="repro_svc_decisions_total_rig_001"``).
        """
        return {
            name: self._metrics[name].summary()
            for name in sorted(self._metrics)
            if name.startswith(prefix)
        }

    def to_prometheus(self, prefix: str = "") -> str:
        """Prometheus text exposition, optionally filtered by ``prefix``."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            if prefix and not name.startswith(prefix):
                continue
            metric = self._metrics[name]
            safe = _prom_name(name)
            if metric.help:
                lines.append(f"# HELP {safe} {metric.help}")
            lines.append(f"# TYPE {safe} {metric.kind}")
            if isinstance(metric, Histogram):
                for bound, cum in zip(
                    metric.bounds, metric.cumulative_counts()
                ):
                    lines.append(
                        f'{safe}_bucket{{le="{bound!r}"}} {cum}'
                    )
                lines.append(f'{safe}_bucket{{le="+Inf"}} {metric.count}')
                lines.append(f"{safe}_sum {metric.sum!r}")
                lines.append(f"{safe}_count {metric.count}")
            else:
                lines.append(f"{safe} {metric.value!r}")
        return "\n".join(lines) + ("\n" if lines else "")


class NullRegistry(MetricsRegistry):
    """Registry that hands out shared no-op metrics (disabled mode)."""

    enabled = False

    _COUNTER = NullCounter()
    _GAUGE = NullGauge()
    _HISTOGRAM = NullHistogram()

    def counter(self, name: str, help: str = "") -> Counter:  # noqa: A002
        return self._COUNTER

    def gauge(self, name: str, help: str = "") -> Gauge:  # noqa: A002
        return self._GAUGE

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS_S,
    ) -> Histogram:
        return self._HISTOGRAM

    def snapshot(self, prefix: str = "") -> Dict[str, dict]:
        return {}

    def to_prometheus(self, prefix: str = "") -> str:
        return ""


def _prom_name(name: str) -> str:
    """Sanitize a metric name for the Prometheus text format."""
    return "".join(
        ch if (ch.isalnum() or ch in "_:") else "_" for ch in name
    )

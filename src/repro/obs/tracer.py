"""Lightweight span tracer with Chrome ``trace_event`` export.

Spans are ``(name, category, start, duration)`` intervals on the
monotonic clock — never wall-clock timestamps, so tracing cannot leak an
ambient input into simulated values (RPR002).  Worker processes measure
their own spans (same machine, same monotonic clock on Linux) and ship
them back inside task results; :meth:`SpanTracer.add_span` merges them
into the campaign-level timeline, keyed by worker pid as the Chrome
"thread" id so ``about:tracing``/Perfetto draws one lane per worker.

The span list is bounded: past ``max_spans`` new spans are counted as
dropped instead of growing without limit.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.obs.timing import monotonic_s

#: Default bound on retained spans; campaigns emit one span per task, so
#: this is far above any realistic run while still bounding memory.
DEFAULT_MAX_SPANS = 100_000


class Span:
    """One completed interval on the monotonic clock."""

    __slots__ = ("name", "cat", "start_s", "dur_s", "tid", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        start_s: float,
        dur_s: float,
        tid: int = 0,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.start_s = start_s
        self.dur_s = dur_s
        self.tid = tid
        self.args = args or {}


class SpanTracer:
    """Collects spans relative to its own monotonic origin."""

    enabled = True

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.origin_s = monotonic_s()
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0

    @contextmanager
    def span(
        self, name: str, cat: str = "", **args: object
    ) -> Iterator[None]:
        """Record the enclosed block as one span."""
        start = monotonic_s()
        try:
            yield
        finally:
            self.add_span(
                name, start_s=start, dur_s=monotonic_s() - start,
                cat=cat, **args,
            )

    def add_span(
        self,
        name: str,
        start_s: float,
        dur_s: float,
        cat: str = "",
        tid: int = 0,
        **args: object,
    ) -> None:
        """Merge one externally measured span (e.g. from a worker)."""
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(Span(name, cat, start_s, dur_s, tid, dict(args)))

    def to_chrome(self, process_name: str = "repro") -> dict:
        """Chrome ``trace_event`` JSON (the ``about:tracing`` format).

        Timestamps are microsecond offsets from the tracer's origin,
        clamped at zero: worker clocks share the machine's monotonic
        epoch on Linux, and a small cross-platform misalignment only
        shifts lanes, never corrupts durations.
        """
        pid = os.getpid()
        events: List[dict] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name},
            }
        ]
        for span in self.spans:
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": span.cat or "repro",
                    "pid": pid,
                    "tid": span.tid,
                    "ts": max(0.0, (span.start_s - self.origin_s) * 1e6),
                    "dur": max(0.0, span.dur_s * 1e6),
                    "args": span.args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}


class NullTracer(SpanTracer):
    """Tracer that records nothing (disabled telemetry)."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_spans=0)
        self.origin_s = 0.0

    @contextmanager
    def span(
        self, name: str, cat: str = "", **args: object
    ) -> Iterator[None]:
        yield

    def add_span(
        self,
        name: str,
        start_s: float,
        dur_s: float,
        cat: str = "",
        tid: int = 0,
        **args: object,
    ) -> None:
        pass

"""Monotonic duration probes — the sanctioned home of ``perf_counter``.

RPR002 bans wall-clock *value* reads in the golden-trace-critical
packages outright, and (now that this module exists) also flags bare
monotonic timing pairs: every duration probe in the instrumented
packages routes through :class:`Stopwatch` / :func:`monotonic_s`, so
overhead instrumentation has exactly one auditable code path and can
never leak a timestamp into simulated values.

Only durations (and offsets between two reads of the *same* clock) ever
leave this module; the epoch of the monotonic clock is arbitrary and
must never be persisted as an absolute time.
"""

from __future__ import annotations

import time
from typing import Optional


def monotonic_s() -> float:
    """Seconds on the monotonic performance clock (arbitrary epoch)."""
    return time.perf_counter()


class Stopwatch:
    """A reusable context-manager duration probe.

    ``elapsed_s`` holds the duration of the most recent ``with`` block;
    re-entering the same instance restarts the measurement, so one
    stopwatch can time every iteration of a hot loop without
    per-iteration allocation.
    """

    __slots__ = ("start_s", "elapsed_s")

    def __init__(self) -> None:
        self.start_s = 0.0
        self.elapsed_s = 0.0

    def __enter__(self) -> "Stopwatch":
        self.start_s = monotonic_s()
        return self

    def __exit__(self, *exc: object) -> Optional[bool]:
        self.elapsed_s = monotonic_s() - self.start_s
        return None

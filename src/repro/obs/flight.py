"""The flight recorder: a bounded ring of per-cycle forensic records.

A surgical-robot incident is only as analyzable as the evidence it
leaves behind.  The recorder keeps the last ``capacity`` control cycles
— commanded DAC vs. the DAC the USB board actually saw, measured vs.
model-estimated motor/joint state, the detector's per-group margins
against its thresholds, and the :class:`~repro.core.pipeline.GuardHealth`
state — in a fixed-size ring, and dumps them as a JSONL "black box" when
something goes wrong (first alarm, first blocked command, E-STOP).

Recording holds *references* to the per-cycle arrays (the same objects
the run trace stores), so the per-cycle cost is one ring append;
JSON conversion happens only at dump time.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple, Union

#: Default ring size: at a 1 ms control period this is ~1 s of history
#: leading up to an incident, matching the horizon the paper's incident
#: reconstructions examine.
DEFAULT_FLIGHT_CYCLES = 1024

#: Schema tag written into every dump header.
FLIGHT_SCHEMA = 1


def _jsonable(value: object) -> object:
    """Convert numpy arrays/scalars (and containers) to JSON natives."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    tolist = getattr(value, "tolist", None)
    if tolist is not None:
        return tolist()
    item = getattr(value, "item", None)
    if item is not None:
        return item()
    return str(value)


class CycleRecord:
    """One control cycle's forensic snapshot (references, not copies)."""

    __slots__ = (
        "cycle", "t", "state",
        "dac_commanded", "dac_seen",
        "jpos", "jvel", "mpos",
        "est_motor_velocity", "est_motor_acceleration", "est_joint_velocity",
        "est_jpos_next",
        "margins", "alarms", "alert", "raw_alert", "blocked", "health",
    )

    def __init__(
        self,
        cycle: int,
        t: float,
        state: str,
        dac_commanded: object = None,
        dac_seen: object = None,
        jpos: object = None,
        jvel: object = None,
        mpos: object = None,
        est_motor_velocity: object = None,
        est_motor_acceleration: object = None,
        est_joint_velocity: object = None,
        est_jpos_next: object = None,
        margins: Optional[Dict[str, float]] = None,
        alarms: Optional[Dict[str, bool]] = None,
        alert: Optional[bool] = None,
        raw_alert: Optional[bool] = None,
        blocked: Optional[bool] = None,
        health: Optional[str] = None,
    ) -> None:
        self.cycle = cycle
        self.t = t
        self.state = state
        self.dac_commanded = dac_commanded
        self.dac_seen = dac_seen
        self.jpos = jpos
        self.jvel = jvel
        self.mpos = mpos
        self.est_motor_velocity = est_motor_velocity
        self.est_motor_acceleration = est_motor_acceleration
        self.est_joint_velocity = est_joint_velocity
        self.est_jpos_next = est_jpos_next
        self.margins = margins
        self.alarms = alarms
        self.alert = alert
        self.raw_alert = raw_alert
        self.blocked = blocked
        self.health = health

    def to_dict(self) -> dict:
        """JSON-native view of the record."""
        return {name: _jsonable(getattr(self, name)) for name in self.__slots__}


class FlightRecorder:
    """Bounded ring buffer of :class:`CycleRecord`."""

    def __init__(
        self,
        capacity: int = DEFAULT_FLIGHT_CYCLES,
        context: Optional[dict] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        #: Static run context (seed, trajectory, thresholds, ...) written
        #: into every dump header.
        self.context = dict(context or {})
        self._ring: Deque[CycleRecord] = deque(maxlen=capacity)
        self.cycles_recorded = 0
        self.dumps: List[Path] = []

    def record_cycle(self, cycle: int, t: float, state: str, **fields: object
                     ) -> CycleRecord:
        """Append one cycle; evicts the oldest record when full."""
        record = CycleRecord(cycle=cycle, t=t, state=state, **fields)
        self._ring.append(record)
        self.cycles_recorded += 1
        return record

    def annotate(self, **fields: object) -> None:
        """Attach/overwrite fields on the most recent record."""
        if not self._ring:
            return
        record = self._ring[-1]
        for name, value in fields.items():
            setattr(record, name, value)

    def records(self) -> List[CycleRecord]:
        """Ring contents, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    # -- dumping -----------------------------------------------------------------

    def header(self, reason: str) -> dict:
        """The dump's first JSONL line."""
        return {
            "kind": "flight",
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "capacity": self.capacity,
            "cycles_recorded": self.cycles_recorded,
            "cycles_in_dump": len(self._ring),
            "context": _jsonable(self.context),
        }

    def dump(self, path: Union[str, Path], reason: str = "manual") -> Path:
        """Write header + one JSONL line per retained cycle to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            handle.write(json.dumps(self.header(reason)) + "\n")
            for record in self._ring:
                handle.write(json.dumps(record.to_dict()) + "\n")
        self.dumps.append(path)
        return path

    @staticmethod
    def load(path: Union[str, Path]) -> Tuple[dict, List[dict]]:
        """Read a dump back as ``(header, rows)``."""
        lines = Path(path).read_text().splitlines()
        if not lines:
            raise ValueError(f"flight dump {path} is empty")
        header = json.loads(lines[0])
        if header.get("kind") != "flight":
            raise ValueError(f"{path} is not a flight-recorder dump")
        return header, [json.loads(line) for line in lines[1:] if line]

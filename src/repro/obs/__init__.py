"""``repro.obs`` — telemetry and flight-recorder subsystem.

Cycle-level observability for the whole pipeline, gated behind the
``REPRO_OBS`` environment variable and **bit-identical to an
uninstrumented build when disabled**: telemetry only ever *measures*
(monotonic durations, counters, per-cycle snapshots) and never feeds a
value back into the simulation, so golden-trace fingerprints do not move
whether it is on or off.

Pieces:

- :mod:`repro.obs.timing` — ``Stopwatch``/``monotonic_s``, the single
  sanctioned home of ``perf_counter`` pairs (enforced by RPR002);
- :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  and the :class:`MetricsRegistry`;
- :mod:`repro.obs.tracer` — span tracer with Chrome ``trace_event``
  export (``about:tracing`` / Perfetto);
- :mod:`repro.obs.flight` — the flight recorder: a bounded ring of
  per-cycle forensic records dumped as a JSONL black box on
  alarm/block/E-STOP;
- :mod:`repro.obs.runtime` — the env-gated per-process runtime;
- ``python -m repro.obs`` — summarize/validate recorded telemetry.
"""

from repro.obs.flight import CycleRecord, FlightRecorder
from repro.obs.metrics import (
    Counter,
    DEFAULT_TIME_BUCKETS_S,
    Gauge,
    Histogram,
    MARGIN_RATIO_BUCKETS,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.runtime import ObsRuntime, get_runtime, reset_runtime
from repro.obs.timing import Stopwatch, monotonic_s
from repro.obs.tracer import NullTracer, Span, SpanTracer

__all__ = [
    "Counter",
    "CycleRecord",
    "DEFAULT_TIME_BUCKETS_S",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MARGIN_RATIO_BUCKETS",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "ObsRuntime",
    "Span",
    "SpanTracer",
    "Stopwatch",
    "get_runtime",
    "monotonic_s",
    "reset_runtime",
]

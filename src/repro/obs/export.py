"""Exporters: JSONL event logs, Prometheus text, Chrome trace JSON.

Everything here is plain-file output of already-collected telemetry; no
exporter ever feeds a value back into the pipeline, so exporting cannot
perturb a run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Tuple, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanTracer


def write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path``, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def write_jsonl(path: Union[str, Path], rows: Iterable[dict]) -> Path:
    """Write one JSON object per line."""
    return write_text(
        path, "".join(json.dumps(row) + "\n" for row in rows)
    )


def read_jsonl(path: Union[str, Path]) -> List[dict]:
    """Read a JSONL file back into a list of dicts."""
    return [
        json.loads(line)
        for line in Path(path).read_text().splitlines()
        if line.strip()
    ]


def write_prometheus(path: Union[str, Path], registry: MetricsRegistry) -> Path:
    """Dump the registry in the Prometheus text exposition format."""
    return write_text(path, registry.to_prometheus())


def write_chrome_trace(
    path: Union[str, Path], tracer: SpanTracer, process_name: str = "repro"
) -> Path:
    """Dump the tracer as Chrome ``trace_event`` JSON."""
    return write_text(
        path, json.dumps(tracer.to_chrome(process_name=process_name))
    )


def validate_chrome_trace(path: Union[str, Path]) -> Tuple[bool, str]:
    """Whether ``path`` parses as a usable Chrome trace.

    Checks the structural contract ``about:tracing``/Perfetto relies on:
    a ``traceEvents`` list whose entries carry a phase and a name, with
    numeric non-negative ``ts``/``dur`` on complete (``X``) events.
    Returns ``(ok, message)``.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        return False, f"unreadable or invalid JSON: {exc}"
    if not isinstance(payload, dict):
        return False, "top level must be an object"
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return False, "missing traceEvents list"
    complete = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            return False, f"event {i} is not an object"
        if "ph" not in event or "name" not in event:
            return False, f"event {i} lacks ph/name"
        if event["ph"] == "X":
            complete += 1
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    return False, f"event {i} has invalid {key}: {value!r}"
    return True, f"{len(events)} events ({complete} spans)"

"""Command-line reader for recorded telemetry::

    python -m repro.obs summary obs/                  # whole export dir
    python -m repro.obs summary obs/flight/flight-*.jsonl
    python -m repro.obs flight obs/flight/flight-*.jsonl --last 20
    python -m repro.obs validate-trace obs/trace.json

``summary`` prints the header and aggregate statistics of a flight dump
or JSONL event log (given a directory, it summarizes every JSONL
telemetry file found under it); ``flight`` prints a per-cycle table of
the recorded black box; ``validate-trace`` checks that an exported
Chrome trace parses and is structurally sound (exit code 1 when it is
not).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.obs.export import read_jsonl, validate_chrome_trace
from repro.obs.flight import FlightRecorder


def _fmt3(values: object) -> str:
    if not isinstance(values, list):
        return "-"
    return "[" + ", ".join(f"{float(v):+.4g}" for v in values) + "]"


def _max_margin(row: dict) -> Optional[float]:
    margins = row.get("margins")
    if not isinstance(margins, dict) or not margins:
        return None
    return max(float(v) for v in margins.values())


def _summarize_flight(path: Path) -> int:
    header, rows = FlightRecorder.load(path)
    print(f"flight dump: {path}")
    print(f"  reason:           {header.get('reason')}")
    print(f"  ring capacity:    {header.get('capacity')}")
    print(f"  cycles recorded:  {header.get('cycles_recorded')}")
    print(f"  cycles in dump:   {header.get('cycles_in_dump')}")
    context = header.get("context") or {}
    for key in sorted(context):
        print(f"  context.{key}: {context[key]}")
    if rows:
        alerts = [r for r in rows if r.get("alert")]
        blocked = [r for r in rows if r.get("blocked")]
        margins = [m for m in (_max_margin(r) for r in rows) if m is not None]
        print(f"  cycle span:       {rows[0]['cycle']}..{rows[-1]['cycle']}")
        print(f"  alert cycles:     {len(alerts)}"
              + (f" (first {alerts[0]['cycle']})" if alerts else ""))
        print(f"  blocked cycles:   {len(blocked)}")
        if margins:
            print(f"  peak margin:      {max(margins):.3f}x threshold")
        healths = sorted({str(r.get("health")) for r in rows})
        print(f"  health states:    {', '.join(healths)}")
    return 0


def _summarize_events(path: Path) -> int:
    rows = read_jsonl(path)
    print(f"event log: {path} ({len(rows)} events)")
    counts: dict = {}
    for row in rows:
        counts[row.get("event", "?")] = counts.get(row.get("event", "?"), 0) + 1
    for kind in sorted(counts):
        print(f"  {kind}: {counts[kind]}")
    return 0


def cmd_summary(path: Path) -> int:
    """Dispatch on the file's first line (or recurse over a directory)."""
    if path.is_dir():
        files = sorted(path.rglob("*.jsonl"))
        if not files:
            print(f"{path}: no JSONL telemetry files found", file=sys.stderr)
            return 1
        status = 0
        for i, file in enumerate(files):
            if i:
                print()
            status = max(status, cmd_summary(file))
        return status
    first = path.read_text().splitlines()[:1]
    if first and '"kind": "flight"' in first[0]:
        return _summarize_flight(path)
    try:
        json.loads(first[0]) if first else None
    except json.JSONDecodeError:
        print(f"{path}: not a JSONL telemetry file", file=sys.stderr)
        return 1
    return _summarize_events(path)


def cmd_flight(path: Path, last: int) -> int:
    header, rows = FlightRecorder.load(path)
    print(
        f"# {path} — reason={header.get('reason')} "
        f"({header.get('cycles_in_dump')} cycles)"
    )
    print(
        f"{'cycle':>7} {'t_s':>7} {'state':<12} {'margin':>7} "
        f"{'alert':>5} {'block':>5} {'health':<9} dac_seen"
    )
    for row in rows[-last:]:
        margin = _max_margin(row)
        print(
            f"{row['cycle']:>7} {row['t']:>7.3f} {str(row['state']):<12} "
            f"{('-' if margin is None else f'{margin:.2f}'):>7} "
            f"{str(bool(row.get('alert'))):>5} "
            f"{str(bool(row.get('blocked'))):>5} "
            f"{str(row.get('health')):<9} {_fmt3(row.get('dac_seen'))}"
        )
    return 0


def cmd_validate_trace(path: Path) -> int:
    ok, message = validate_chrome_trace(path)
    print(f"{path}: {'OK' if ok else 'INVALID'} — {message}")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser(
        "summary", help="summarize a flight dump or event log"
    )
    p_summary.add_argument("path", type=Path)

    p_flight = sub.add_parser(
        "flight", help="print the per-cycle table of a flight dump"
    )
    p_flight.add_argument("path", type=Path)
    p_flight.add_argument(
        "--last", type=int, default=30,
        help="how many trailing cycles to print (default 30)",
    )

    p_validate = sub.add_parser(
        "validate-trace", help="validate an exported Chrome trace JSON"
    )
    p_validate.add_argument("path", type=Path)

    args = parser.parse_args(argv)
    if args.command == "summary":
        return cmd_summary(args.path)
    if args.command == "flight":
        return cmd_flight(args.path, max(1, args.last))
    return cmd_validate_trace(args.path)


if __name__ == "__main__":
    sys.exit(main())

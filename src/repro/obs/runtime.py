"""The env-gated telemetry runtime (``REPRO_OBS``).

One :class:`ObsRuntime` per process owns the metrics registry, the span
tracer, the event log, and the flight-recorder policy.  It is resolved
once per process from the environment (through :mod:`repro.envcfg`, the
sanctioned shim) and cached — hot paths capture the runtime at
construction time, so the disabled path costs a cached attribute read
and a branch, never an environment lookup per cycle.

Knobs:

- ``REPRO_OBS`` — enable telemetry (``1``/anything truthy; ``0``,
  ``false``, ``off``, ``no`` and unset disable);
- ``REPRO_OBS_DIR`` — when set (and telemetry is enabled), export
  ``metrics.prom``, ``trace.json`` and ``events.jsonl`` there at process
  exit, and place flight dumps in its ``flight/`` subdirectory;
- ``REPRO_OBS_FLIGHT_CYCLES`` — flight-recorder ring size (default 1024);
- ``REPRO_OBS_MAX_DUMPS`` — per-process cap on automatic flight dumps
  (default 16), so a pathological campaign cannot fill a disk.

Tests swap configurations with :func:`reset_runtime`; production code
should only ever call :func:`get_runtime`.
"""

from __future__ import annotations

import atexit
import os
from pathlib import Path
from typing import List, Optional

from repro.envcfg import env_int, env_str
from repro.obs.export import (
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.flight import DEFAULT_FLIGHT_CYCLES, FlightRecorder
from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.tracer import NullTracer, SpanTracer

ENV_ENABLE = "REPRO_OBS"
ENV_DIR = "REPRO_OBS_DIR"
ENV_FLIGHT_CYCLES = "REPRO_OBS_FLIGHT_CYCLES"
ENV_MAX_DUMPS = "REPRO_OBS_MAX_DUMPS"

#: Default cap on automatic flight dumps per process.
DEFAULT_MAX_DUMPS = 16

_FALSEY = frozenset({"", "0", "false", "off", "no"})


def obs_enabled_from_env() -> bool:
    """Whether ``REPRO_OBS`` requests telemetry."""
    return env_str(ENV_ENABLE).lower() not in _FALSEY


class ObsRuntime:
    """Per-process telemetry state: registry + tracer + flight policy."""

    def __init__(
        self,
        enabled: bool = False,
        export_dir: Optional[Path] = None,
        flight_cycles: int = DEFAULT_FLIGHT_CYCLES,
        max_flight_dumps: int = DEFAULT_MAX_DUMPS,
    ) -> None:
        self.enabled = enabled
        self.export_dir = None if export_dir is None else Path(export_dir)
        self.flight_cycles = flight_cycles
        self.max_flight_dumps = max_flight_dumps
        self.registry: MetricsRegistry = (
            MetricsRegistry() if enabled else NullRegistry()
        )
        self.tracer: SpanTracer = SpanTracer() if enabled else NullTracer()
        self.events: List[dict] = []
        self.flight_dumps_written = 0
        self.flight_dumps_suppressed = 0

    # -- events ------------------------------------------------------------------

    def log_event(self, kind: str, **fields: object) -> None:
        """Append one event to the in-memory JSONL event log."""
        if not self.enabled:
            return
        event = {"event": kind}
        event.update(fields)
        self.events.append(event)

    # -- flight recorder ---------------------------------------------------------

    def new_flight_recorder(
        self, context: Optional[dict] = None
    ) -> Optional[FlightRecorder]:
        """A fresh per-run recorder, or ``None`` when disabled."""
        if not self.enabled:
            return None
        return FlightRecorder(capacity=self.flight_cycles, context=context)

    @property
    def flight_dir(self) -> Path:
        """Where automatic flight dumps land."""
        base = self.export_dir if self.export_dir is not None else Path("obs")
        return base / "flight"

    def flight_dump_path(
        self, label: str, seed: object, cycle: int, reason: str
    ) -> Optional[Path]:
        """Reserve a dump path, or ``None`` when disabled/over the cap.

        Names are deterministic functions of run identity plus a
        per-process sequence number and pid (collision safety across
        pool workers) — never wall-clock timestamps.
        """
        if not self.enabled:
            return None
        if self.flight_dumps_written >= self.max_flight_dumps:
            self.flight_dumps_suppressed += 1
            return None
        self.flight_dumps_written += 1
        slug = "".join(
            ch if (ch.isalnum() or ch in "-_") else "-" for ch in str(label)
        ) or "run"
        name = (
            f"flight-{slug}-seed{seed}-c{cycle}-{reason}"
            f"-p{os.getpid()}-{self.flight_dumps_written}.jsonl"
        )
        return self.flight_dir / name

    # -- export ------------------------------------------------------------------

    def export(self, directory: Optional[Path] = None) -> List[Path]:
        """Write metrics.prom / trace.json / events.jsonl.

        Uses ``directory`` or the configured ``REPRO_OBS_DIR``; a no-op
        returning ``[]`` when disabled or no directory is known.
        """
        if not self.enabled:
            return []
        directory = Path(directory) if directory else self.export_dir
        if directory is None:
            return []
        return [
            write_prometheus(directory / "metrics.prom", self.registry),
            write_chrome_trace(directory / "trace.json", self.tracer),
            write_jsonl(directory / "events.jsonl", self.events),
        ]

    def export_default(self) -> None:
        """Atexit hook: export to the configured directory, best-effort."""
        try:
            self.export()
        except OSError:
            pass


_runtime: Optional[ObsRuntime] = None


def _runtime_from_env() -> ObsRuntime:
    enabled = obs_enabled_from_env()
    export_dir = env_str(ENV_DIR) or None
    flight_cycles = env_int(ENV_FLIGHT_CYCLES)
    max_dumps = env_int(ENV_MAX_DUMPS)
    runtime = ObsRuntime(
        enabled=enabled,
        export_dir=None if export_dir is None else Path(export_dir),
        flight_cycles=(
            DEFAULT_FLIGHT_CYCLES if flight_cycles is None
            else max(1, flight_cycles)
        ),
        max_flight_dumps=(
            DEFAULT_MAX_DUMPS if max_dumps is None else max(0, max_dumps)
        ),
    )
    if runtime.enabled and runtime.export_dir is not None:
        atexit.register(runtime.export_default)
    return runtime


def get_runtime() -> ObsRuntime:
    """The process-wide runtime (resolved from the environment once)."""
    global _runtime
    if _runtime is None:
        _runtime = _runtime_from_env()
    return _runtime


def reset_runtime() -> None:
    """Drop the cached runtime so the next access re-reads the env.

    Test seam: lets a test flip ``REPRO_OBS`` and observe the change in
    freshly constructed components.  Unregisters any pending atexit
    export of the dropped runtime.
    """
    global _runtime
    if _runtime is not None:
        atexit.unregister(_runtime.export_default)
    _runtime = None

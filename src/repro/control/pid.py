"""Per-motor PID position controllers.

The RAVEN control software computes, every millisecond, the torque needed
for each motor to reach the desired motor position ``mpos_d`` from a
Proportional-Integral-Derivative controller, then transfers the torques as
DAC commands to the motor controllers (Figure 2 of the paper).

The controller output here is a *current* command (A) which the caller
converts to DAC counts; derivative action is taken on the measurement
(avoiding setpoint-kick), and the integral term is clamped (anti-windup).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import constants


@dataclass(frozen=True)
class PidGains:
    """PID gains for one motor position loop (current output, A per rad)."""

    kp: float
    ki: float
    kd: float
    integral_limit: float = 2.0

    def __post_init__(self) -> None:
        if self.kp < 0 or self.ki < 0 or self.kd < 0:
            raise ValueError("PID gains must be non-negative")
        if self.integral_limit <= 0:
            raise ValueError("integral_limit must be positive")


#: Gains tuned for the default plant (RE40/RE40/RE30 with the default
#: transmission): stiff enough to track surgical motion with sub-millimetre
#: error, compliant enough that short torque injections are corrected, as
#: the paper observes for injections under ~64 ms.
DEFAULT_GAINS = (
    PidGains(kp=8.0, ki=40.0, kd=0.15),
    PidGains(kp=8.0, ki=40.0, kd=0.15),
    PidGains(kp=7.0, ki=35.0, kd=0.12),
)


class MotorPid:
    """Vector PID over the three modelled motor axes."""

    def __init__(
        self,
        gains: Sequence[PidGains] = DEFAULT_GAINS,
        output_limit_a: Optional[Sequence[float]] = None,
    ) -> None:
        """Create the controller.

        Parameters
        ----------
        gains:
            One :class:`PidGains` per motor.
        output_limit_a:
            Per-axis saturation of the current command (A); defaults to the
            DAC full-scale current.  The controller does *not* pre-clamp to
            the safety threshold — the software safety check compares the
            raw demand against the threshold afterwards, which is exactly
            how the RAVEN checks end up tripping when the PID fights a
            physical disturbance.
        """
        self.gains = tuple(gains)
        n = len(self.gains)
        self._kp = np.array([g.kp for g in self.gains])
        self._ki = np.array([g.ki for g in self.gains])
        self._kd = np.array([g.kd for g in self.gains])
        self._int_limit = np.array([g.integral_limit for g in self.gains])
        if output_limit_a is None:
            output_limit_a = [constants.DAC_FULL_SCALE_CURRENT_A] * n
        self._out_limit = np.asarray(output_limit_a, dtype=float)
        self._integral = np.zeros(n)
        self._prev_measurement: Optional[np.ndarray] = None

    def reset(self) -> None:
        """Clear integral state and derivative memory (on E-STOP/re-engage)."""
        self._integral[:] = 0.0
        self._prev_measurement = None

    def update(
        self,
        setpoint: Sequence[float],
        measurement: Sequence[float],
        dt: float = constants.CONTROL_PERIOD_S,
    ) -> np.ndarray:
        """One PID step; returns the current command (A) per motor."""
        setpoint = np.asarray(setpoint, dtype=float)
        measurement = np.asarray(measurement, dtype=float)
        error = setpoint - measurement

        self._integral = np.clip(
            self._integral + error * dt, -self._int_limit, self._int_limit
        )
        if self._prev_measurement is None:
            derivative = np.zeros_like(error)
        else:
            derivative = -(measurement - self._prev_measurement) / dt
        self._prev_measurement = measurement

        out = self._kp * error + self._ki * self._integral + self._kd * derivative
        return np.clip(out, -self._out_limit, self._out_limit)

    @property
    def integral(self) -> np.ndarray:
        """Current integral state (for tests and diagnostics)."""
        return self._integral.copy()

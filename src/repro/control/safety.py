"""Software safety checks and watchdog generation (RAVEN II, Section II.B).

The RAVEN control software performs two kinds of checks *before* sending
commands to the USB I/O boards:

- DAC commands are compared against fixed thresholds, so the motors do not
  receive over-current commands;
- desired joint positions are checked against the robot workspace.

It also emits a periodic square-wave "I'm alive" watchdog in Byte 0 of the
USB packets; on detecting an unsafe command it stops toggling the watchdog,
which makes the PLC safety processor drop the system into E-STOP.

These checks run at the *latest computation step in software* — after them
the command crosses the software/hardware boundary unverified.  That gap is
the TOCTOU window the paper's scenario-B attack exploits, and it is
faithfully preserved here: the checks live in this module, the malicious
wrapper hooks the ``write`` system call *after* them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro import constants
from repro.kinematics.workspace import Workspace


@dataclass
class SafetyDecision:
    """Outcome of the software safety checks for one control cycle."""

    safe: bool
    reasons: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.safe


class SafetyChecker:
    """The RAVEN software safety checks on outgoing commands.

    Note the limitation the paper highlights: the checks compare DAC values
    against *fixed thresholds* only — they do not model what the command
    does to the physical system, so a command under the threshold that
    still causes an abrupt jump passes unnoticed.
    """

    def __init__(
        self,
        dac_limit: int = constants.DAC_SAFETY_LIMIT,
        workspace: Optional[Workspace] = None,
        workspace_margin: float = 0.0,
    ) -> None:
        if dac_limit <= 0:
            raise ValueError("dac_limit must be positive")
        self.dac_limit = int(dac_limit)
        self.workspace = workspace or Workspace()
        self.workspace_margin = workspace_margin

    def check_dac(self, dac_values: Sequence[float]) -> SafetyDecision:
        """Threshold check on DAC commands (counts)."""
        dac = np.asarray(dac_values, dtype=float)
        over = np.abs(dac) > self.dac_limit
        if not np.any(over):
            return SafetyDecision(safe=True)
        reasons = [
            f"DAC channel {i} value {int(dac[i])} exceeds limit "
            f"{self.dac_limit}"
            for i in np.nonzero(over)[0]
        ]
        return SafetyDecision(safe=False, reasons=reasons)

    def check_joint_targets(self, jpos_d: Sequence[float]) -> SafetyDecision:
        """Workspace check on desired joint positions."""
        if self.workspace.contains(jpos_d, margin=self.workspace_margin):
            return SafetyDecision(safe=True)
        violation = self.workspace.violation(jpos_d)
        return SafetyDecision(
            safe=False,
            reasons=[f"desired joints outside workspace by {violation}"],
        )

    def check(
        self, dac_values: Sequence[float], jpos_d: Sequence[float]
    ) -> SafetyDecision:
        """Combined per-cycle check, short-circuiting nothing (all reasons)."""
        dac_result = self.check_dac(dac_values)
        joint_result = self.check_joint_targets(jpos_d)
        return SafetyDecision(
            safe=dac_result.safe and joint_result.safe,
            reasons=dac_result.reasons + joint_result.reasons,
        )


class WatchdogGenerator:
    """Square-wave "I'm alive" signal embedded in Byte 0, bit 4.

    Toggles every ``half_period_cycles`` control cycles while the software
    believes the system is healthy; :meth:`trip` freezes it, which the PLC
    interprets as software failure.
    """

    def __init__(
        self, half_period_cycles: int = constants.WATCHDOG_HALF_PERIOD_CYCLES
    ) -> None:
        if half_period_cycles < 1:
            raise ValueError("half_period_cycles must be >= 1")
        self.half_period_cycles = half_period_cycles
        self._cycles = 0
        self._level = False
        self._tripped = False

    @property
    def level(self) -> bool:
        """Current logic level of the watchdog line."""
        return self._level

    @property
    def tripped(self) -> bool:
        """Whether the software stopped the watchdog after an unsafe command."""
        return self._tripped

    def trip(self) -> None:
        """Stop toggling forever (unsafe command detected)."""
        self._tripped = True

    def reset(self) -> None:
        """Re-arm after the operator clears the E-STOP."""
        self._tripped = False
        self._cycles = 0

    def tick(self) -> bool:
        """Advance one control cycle; returns the level to transmit."""
        if self._tripped:
            return self._level
        self._cycles += 1
        if self._cycles >= self.half_period_cycles:
            self._cycles = 0
            self._level = not self._level
        return self._level

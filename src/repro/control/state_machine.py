"""Operational state machine of the RAVEN II robot (Figure 1(c)).

The robot navigates four states:

    E-STOP --(start button)--> INIT --(homing done)--> PEDAL_UP
    PEDAL_UP  <--(pedal release)/(pedal press)-->  PEDAL_DOWN
    any state --(emergency stop / watchdog loss)--> E-STOP

The current state is encoded into Byte 0 of every USB packet (low nibble;
see :mod:`repro.hw.usb_packet`), which is exactly the information leak the
paper's offline analysis recovers.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple

from repro import constants
from repro.errors import StateMachineError


class RobotState(enum.Enum):
    """The four operational states of Figure 1(c)."""

    E_STOP = "E-STOP"
    INIT = "Init"
    PEDAL_UP = "Pedal Up"
    PEDAL_DOWN = "Pedal Down"

    @property
    def byte_value(self) -> int:
        """Low-nibble Byte 0 encoding of this state in USB packets."""
        return _STATE_TO_BYTE[self]

    @classmethod
    def from_byte(cls, value: int) -> "RobotState":
        """Decode a Byte 0 low nibble back to a state.

        Raises
        ------
        StateMachineError
            If the nibble does not encode a valid state.
        """
        masked = value & ~(1 << constants.USB_WATCHDOG_BIT)
        try:
            return _BYTE_TO_STATE[masked]
        except KeyError:
            raise StateMachineError(f"invalid state byte 0x{value:02X}") from None


_STATE_TO_BYTE: Dict[RobotState, int] = {
    RobotState.E_STOP: constants.STATE_BYTE_ESTOP,
    RobotState.INIT: constants.STATE_BYTE_INIT,
    RobotState.PEDAL_UP: constants.STATE_BYTE_PEDAL_UP,
    RobotState.PEDAL_DOWN: constants.STATE_BYTE_PEDAL_DOWN,
}

_BYTE_TO_STATE: Dict[int, RobotState] = {v: k for k, v in _STATE_TO_BYTE.items()}

#: Legal transitions (besides the always-allowed transition to E-STOP).
_TRANSITIONS: Dict[RobotState, Tuple[RobotState, ...]] = {
    RobotState.E_STOP: (RobotState.INIT,),
    RobotState.INIT: (RobotState.PEDAL_UP,),
    RobotState.PEDAL_UP: (RobotState.PEDAL_DOWN,),
    RobotState.PEDAL_DOWN: (RobotState.PEDAL_UP,),
}


class OperationalStateMachine:
    """Tracks the robot's operational state and enforces legal transitions."""

    def __init__(self, initial: RobotState = RobotState.E_STOP) -> None:
        self._state = initial
        self._listeners: List[Callable[[RobotState, RobotState], None]] = []
        self._history: List[Tuple[float, RobotState]] = [(0.0, initial)]

    @property
    def state(self) -> RobotState:
        """Current operational state."""
        return self._state

    @property
    def history(self) -> List[Tuple[float, RobotState]]:
        """(time, state) pairs for every transition, oldest first."""
        return list(self._history)

    def add_listener(self, fn: Callable[[RobotState, RobotState], None]) -> None:
        """Register a callback invoked as ``fn(old, new)`` on transitions."""
        self._listeners.append(fn)

    def _move(self, new: RobotState, time: float) -> None:
        old = self._state
        if new is old:
            return
        self._state = new
        self._history.append((time, new))
        for fn in self._listeners:
            fn(old, new)

    # -- events ---------------------------------------------------------------

    def press_start(self, time: float = 0.0) -> None:
        """Physical start button: leave E-STOP and begin initialization."""
        if self._state is not RobotState.E_STOP:
            raise StateMachineError(
                f"start button only acts in E-STOP (currently {self._state})"
            )
        self._move(RobotState.INIT, time)

    def initialization_done(self, time: float = 0.0) -> None:
        """Homing/self-test complete: become ready for teleoperation."""
        if self._state is not RobotState.INIT:
            raise StateMachineError(
                f"initialization_done only acts in INIT (currently {self._state})"
            )
        self._move(RobotState.PEDAL_UP, time)

    def set_pedal(self, pressed: bool, time: float = 0.0) -> None:
        """Foot-pedal edge: switch between Pedal Up and Pedal Down.

        Pedal events in E-STOP or INIT are ignored (the console is
        disengaged there), matching the real robot.
        """
        if pressed and self._state is RobotState.PEDAL_UP:
            self._move(RobotState.PEDAL_DOWN, time)
        elif not pressed and self._state is RobotState.PEDAL_DOWN:
            self._move(RobotState.PEDAL_UP, time)

    def emergency_stop(self, time: float = 0.0, reason: Optional[str] = None) -> None:
        """Drop to E-STOP from any state (button, PLC, or safety check)."""
        self._last_estop_reason = reason
        self._move(RobotState.E_STOP, time)

    @property
    def last_estop_reason(self) -> Optional[str]:
        """Why the last emergency stop happened, if one occurred."""
        return getattr(self, "_last_estop_reason", None)

    def can_transition(self, new: RobotState) -> bool:
        """Whether a (non-E-STOP) transition to ``new`` is legal now."""
        if new is RobotState.E_STOP:
            return True
        return new in _TRANSITIONS[self._state]

    @property
    def engaged(self) -> bool:
        """True when the robot is teleoperated with brakes released."""
        return self._state is RobotState.PEDAL_DOWN

"""Desired-motion generators for the master console emulator.

The paper's simulation framework replays "previously collected trajectories
of surgical movements made by a human operator".  We generate synthetic
surgical-movement families instead (circles, figure-eights, suturing loops,
idle holds), each overlaid with a physiological hand-tremor model, and a
:class:`TrajectoryLibrary` that samples parameter variations — the paper's
threshold learning requires fault-free runs "with sufficient variability in
the movement".

A trajectory is an absolute desired tool-tip path ``p(t)`` around a centre
point; the console transmits *incremental* motions ``p(t+dt) - p(t)`` per
ITP packet, exactly like the RAVEN master console.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro import constants
from repro.kinematics.spherical_arm import SphericalArm
from repro.kinematics.workspace import Workspace


class TremorModel:
    """Band-limited physiological hand tremor (~8-12 Hz, tens of microns).

    Implemented as white noise through a lightly damped second-order
    resonator centred at ``frequency_hz``; output is a 3-vector of position
    perturbations added to the ideal path.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        amplitude_m: float = 3e-5,
        frequency_hz: float = 9.0,
        damping: float = 0.15,
    ) -> None:
        if amplitude_m < 0:
            raise ValueError("amplitude_m must be non-negative")
        self.amplitude = amplitude_m
        self.omega = 2.0 * math.pi * frequency_hz
        self.damping = damping
        self._rng = rng
        self._x = np.zeros(3)
        self._v = np.zeros(3)

    def sample(self, dt: float) -> np.ndarray:
        """Advance one tick and return the tremor displacement (m).

        The white-noise drive is scaled by ``1/sqrt(dt)`` so its power
        spectral density — and hence the steady-state displacement variance
        ``1 / (4 * damping)`` of the unit resonator — is independent of the
        step size; the output is then scaled so its RMS equals
        ``amplitude``.
        """
        if self.amplitude == 0.0:
            return np.zeros(3)
        drive = self._rng.standard_normal(3) * self.omega**1.5 / math.sqrt(dt)
        acc = drive - 2 * self.damping * self.omega * self._v - self.omega**2 * self._x
        self._v = self._v + acc * dt
        self._x = self._x + self._v * dt
        scale = self.amplitude * 2.0 * math.sqrt(self.damping)
        return self._x * scale


class Trajectory:
    """Base class: absolute desired tool-tip position over time."""

    def __init__(
        self,
        center: np.ndarray,
        tremor: Optional[TremorModel] = None,
        name: str = "trajectory",
    ) -> None:
        self.center = np.asarray(center, dtype=float)
        self.tremor = tremor
        self.name = name

    def offset(self, t: float) -> np.ndarray:
        """Ideal displacement from the centre at time ``t`` (override me)."""
        raise NotImplementedError

    def position(self, t: float, dt: float = constants.CONTROL_PERIOD_S) -> np.ndarray:
        """Desired absolute position at time ``t`` including tremor."""
        p = self.center + self.offset(t)
        if self.tremor is not None:
            p = p + self.tremor.sample(dt)
        return p

    def increments(
        self, duration: float, dt: float = constants.CONTROL_PERIOD_S
    ) -> Iterator[np.ndarray]:
        """Yield per-tick incremental motions over ``duration`` seconds."""
        steps = int(round(duration / dt))
        prev = self.position(0.0, dt)
        for k in range(1, steps + 1):
            cur = self.position(k * dt, dt)
            yield cur - prev
            prev = cur


class IdleTrajectory(Trajectory):
    """Instrument held still (tremor only) — e.g. while the surgeon pauses."""

    def __init__(self, center, tremor=None) -> None:
        super().__init__(center, tremor, name="idle")

    def offset(self, t: float) -> np.ndarray:
        return np.zeros(3)


class CircleTrajectory(Trajectory):
    """Circular sweep in a tilted plane — blunt-dissection-like motion."""

    def __init__(
        self,
        center,
        radius: float = 0.015,
        period: float = 4.0,
        tilt: float = 0.4,
        tremor=None,
    ) -> None:
        super().__init__(center, tremor, name="circle")
        if radius <= 0 or period <= 0:
            raise ValueError("radius and period must be positive")
        self.radius = radius
        self.period = period
        self.tilt = tilt

    def offset(self, t: float) -> np.ndarray:
        # Smooth-start envelope avoids a velocity step at t = 0.
        envelope = min(1.0, t / (0.25 * self.period))
        phase = 2.0 * math.pi * t / self.period
        x = self.radius * math.cos(phase) - self.radius
        y = self.radius * math.sin(phase)
        z = math.sin(self.tilt) * y
        return envelope * np.array([x, math.cos(self.tilt) * y, z])


class Figure8Trajectory(Trajectory):
    """Lissajous figure-eight — instrument-exercise motion."""

    def __init__(
        self,
        center,
        width: float = 0.02,
        height: float = 0.012,
        period: float = 5.0,
        tremor=None,
    ) -> None:
        super().__init__(center, tremor, name="figure8")
        if width <= 0 or height <= 0 or period <= 0:
            raise ValueError("width, height and period must be positive")
        self.width = width
        self.height = height
        self.period = period

    def offset(self, t: float) -> np.ndarray:
        envelope = min(1.0, t / (0.2 * self.period))
        phase = 2.0 * math.pi * t / self.period
        return envelope * np.array(
            [
                self.width * math.sin(phase),
                self.height * math.sin(2.0 * phase),
                0.3 * self.height * math.cos(phase) - 0.3 * self.height,
            ]
        )


class SuturingTrajectory(Trajectory):
    """Repeated stitching loops advancing along a seam, with depth bobbing.

    The motion the paper's intro motivates: small fast loops (the needle
    pass) superposed on a slow advance, with periodic insertion-depth
    changes as the needle enters and exits tissue.
    """

    def __init__(
        self,
        center,
        loop_radius: float = 0.008,
        loop_period: float = 1.5,
        advance_speed: float = 0.002,
        depth_amplitude: float = 0.006,
        tremor=None,
    ) -> None:
        super().__init__(center, tremor, name="suturing")
        if loop_radius <= 0 or loop_period <= 0:
            raise ValueError("loop_radius and loop_period must be positive")
        self.loop_radius = loop_radius
        self.loop_period = loop_period
        self.advance_speed = advance_speed
        self.depth_amplitude = depth_amplitude

    def offset(self, t: float) -> np.ndarray:
        envelope = min(1.0, t / (0.5 * self.loop_period))
        phase = 2.0 * math.pi * t / self.loop_period
        loop = np.array(
            [
                self.loop_radius * math.cos(phase) - self.loop_radius,
                0.4 * self.loop_radius * math.sin(phase),
                self.depth_amplitude * 0.5 * (1 - math.cos(phase)),
            ]
        )
        advance = np.array([0.0, self.advance_speed * t, 0.0])
        return envelope * loop + advance


class TrajectoryLibrary:
    """Named trajectory factories with randomized-parameter sampling."""

    def __init__(
        self,
        arm: Optional[SphericalArm] = None,
        workspace: Optional[Workspace] = None,
    ) -> None:
        self.arm = arm or SphericalArm()
        self.workspace = workspace or Workspace()
        self.center = self.arm.forward(self.workspace.neutral())

    def names(self) -> Tuple[str, ...]:
        """Names of the available trajectory families."""
        return ("idle", "circle", "figure8", "suturing")

    def make(
        self,
        name: str,
        rng: Optional[np.random.Generator] = None,
        tremor_amplitude: float = 3e-5,
        **params,
    ) -> Trajectory:
        """Build a trajectory by family name with explicit parameters."""
        rng = rng or np.random.default_rng(0)
        tremor = TremorModel(rng, amplitude_m=tremor_amplitude)
        if name == "idle":
            return IdleTrajectory(self.center, tremor=tremor)
        if name == "circle":
            return CircleTrajectory(self.center, tremor=tremor, **params)
        if name == "figure8":
            return Figure8Trajectory(self.center, tremor=tremor, **params)
        if name == "suturing":
            return SuturingTrajectory(self.center, tremor=tremor, **params)
        raise KeyError(f"unknown trajectory family {name!r}")

    def sample(self, rng: np.random.Generator) -> Trajectory:
        """A random trajectory with randomized parameters (training runs)."""
        name = rng.choice(["circle", "figure8", "suturing"])
        if name == "circle":
            return self.make(
                "circle",
                rng=rng,
                radius=float(rng.uniform(0.008, 0.025)),
                period=float(rng.uniform(2.5, 6.0)),
                tilt=float(rng.uniform(0.0, 0.8)),
            )
        if name == "figure8":
            return self.make(
                "figure8",
                rng=rng,
                width=float(rng.uniform(0.01, 0.025)),
                height=float(rng.uniform(0.006, 0.015)),
                period=float(rng.uniform(3.0, 7.0)),
            )
        return self.make(
            "suturing",
            rng=rng,
            loop_radius=float(rng.uniform(0.005, 0.012)),
            loop_period=float(rng.uniform(1.0, 2.5)),
            advance_speed=float(rng.uniform(0.001, 0.003)),
            depth_amplitude=float(rng.uniform(0.003, 0.008)),
        )

    def paper_pair(self, rng: np.random.Generator) -> Dict[str, Trajectory]:
        """The paper's two training trajectories ("two different
        trajectories containing sufficient variability in the movement")."""
        return {
            "circle": self.make("circle", rng=rng, radius=0.018, period=3.5, tilt=0.5),
            "suturing": self.make("suturing", rng=rng),
        }

"""RAVEN II control software model.

Implements the software side of Figure 1(b)/Figure 2 of the paper: the
operational state machine, the kinematic chain (forward kinematics from
encoder feedback, inverse kinematics to joint/motor targets, PID to DAC
commands), the software safety checks, and the watchdog generation.

Public API
----------
- :class:`RavenController` — the control-software node.
- :class:`OperationalStateMachine`, :class:`RobotState` — Figure 1(c).
- :class:`MotorPid` — per-motor PID controllers.
- :class:`SafetyChecker`, :class:`WatchdogGenerator` — software safety.
- :mod:`repro.control.trajectory` — desired-motion generators.
"""

from repro.control.pid import MotorPid, PidGains
from repro.control.state_machine import OperationalStateMachine, RobotState
from repro.control.safety import SafetyChecker, SafetyDecision, WatchdogGenerator
from repro.control.trajectory import (
    CircleTrajectory,
    IdleTrajectory,
    Figure8Trajectory,
    SuturingTrajectory,
    TrajectoryLibrary,
    TremorModel,
)
from repro.control.controller import ControllerOutput, RavenController

__all__ = [
    "CircleTrajectory",
    "ControllerOutput",
    "Figure8Trajectory",
    "IdleTrajectory",
    "MotorPid",
    "OperationalStateMachine",
    "PidGains",
    "RavenController",
    "RobotState",
    "SafetyChecker",
    "SafetyDecision",
    "SuturingTrajectory",
    "TrajectoryLibrary",
    "TremorModel",
    "WatchdogGenerator",
]

"""The RAVEN II control-software node.

Implements the kinematic chain of Figure 2 of the paper, running once per
1 ms control period:

1. receive operator packets (``recvfrom`` system call) — incremental
   desired end-effector motions plus foot-pedal state;
2. read encoder feedback from the USB board (``read`` system call) and
   compute the current joint and end-effector configuration (forward
   kinematics);
3. inverse kinematics: desired end-effector position -> desired joint
   (``jpos_d``) and motor (``mpos_d``) positions;
4. PID control: motor position error -> torque, expressed as DAC counts;
5. software safety checks on the DAC commands and desired joint positions;
6. ``write`` the command packet (state byte + watchdog + DACs) to the USB
   board.

The *order* of steps 5 and 6 is the TOCTOU gap of the paper: anything that
hooks the ``write`` system call modifies the command after the checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro import constants
from repro.control.pid import MotorPid
from repro.control.safety import SafetyChecker, SafetyDecision, WatchdogGenerator
from repro.control.state_machine import OperationalStateMachine, RobotState
from repro.dynamics.plant import current_to_dac
from repro.dynamics.transmission import Transmission
from repro.errors import ChecksumError, InverseKinematicsError, PacketError
from repro.hw.encoder import EncoderBank
from repro.hw.usb_packet import decode_feedback_packet, encode_command_packet
from repro.kinematics.frames import quat_multiply, quat_normalize
from repro.kinematics.spherical_arm import SphericalArm
from repro.kinematics.workspace import Workspace
from repro.kinematics.wrist import WristKinematics
from repro.sysmodel.process import Process
from repro.teleop.itp import ItpPacket, clamp_increment, decode_itp

#: Control cycles spent in INIT for self-test/homing before Pedal Up.
INIT_CYCLES = 200


@dataclass
class ControllerOutput:
    """Everything the controller produced in one cycle (for tracing)."""

    time: float
    state: RobotState
    pos: np.ndarray
    pos_d: np.ndarray
    jpos: np.ndarray
    jpos_d: np.ndarray
    mpos: np.ndarray
    mpos_d: np.ndarray
    dac: np.ndarray
    safety: SafetyDecision
    ori_d: Optional[np.ndarray] = None
    wrist_joints: Optional[np.ndarray] = None
    packets_consumed: int = 0
    notes: List[str] = field(default_factory=list)


class RavenController:
    """One arm's control software, as a process in the simulated OS."""

    def __init__(
        self,
        process: Process,
        usb_fd: int,
        itp_fd: int,
        arm: Optional[SphericalArm] = None,
        transmission: Optional[Transmission] = None,
        workspace: Optional[Workspace] = None,
        pid: Optional[MotorPid] = None,
        safety: Optional[SafetyChecker] = None,
        watchdog: Optional[WatchdogGenerator] = None,
        encoders: Optional[EncoderBank] = None,
    ) -> None:
        self.process = process
        self.usb_fd = usb_fd
        self.itp_fd = itp_fd
        self.arm = arm or SphericalArm()
        self.transmission = transmission or Transmission()
        self.workspace = workspace or Workspace()
        self.pid = pid or MotorPid()
        self.safety = safety or SafetyChecker(workspace=self.workspace)
        self.watchdog = watchdog or WatchdogGenerator()
        self.encoders = encoders or EncoderBank()
        self.state_machine = OperationalStateMachine()
        #: The four instrument DOF (ori_d path of Figure 2), resolved
        #: kinematically — the paper models them as orientation-only.
        self.wrist = WristKinematics()

        self._init_cycles_left = 0
        self._pos_d: Optional[np.ndarray] = None
        self._jpos_d: Optional[np.ndarray] = None
        self._ori_d = np.array([1.0, 0.0, 0.0, 0.0])
        self._last_jpos = np.zeros(3)
        self.bad_packets = 0
        self.cycles = 0

    # -- operator actions -------------------------------------------------------

    def press_start(self, now: float = 0.0) -> None:
        """Physical start button: E-STOP -> INIT (begins homing)."""
        self.state_machine.press_start(now)
        self._init_cycles_left = INIT_CYCLES
        self.watchdog.reset()
        self.pid.reset()

    # -- per-cycle processing -----------------------------------------------------

    def _drain_console(self, now: float) -> tuple[Optional[ItpPacket], int]:
        """Consume all deliverable ITP datagrams; return the last + count."""
        latest: Optional[ItpPacket] = None
        consumed = 0
        while True:
            data = self.process.recvfrom(self.itp_fd, constants.ITP_PACKET_SIZE)
            if data is None:
                break
            try:
                packet = decode_itp(data)
            except (PacketError, ChecksumError):
                self.bad_packets += 1
                continue
            latest = packet
            consumed += 1
        return latest, consumed

    def _read_feedback(self) -> tuple[np.ndarray, RobotState]:
        """Read the USB feedback packet: motor positions + PLC state echo."""
        from repro.hw.usb_packet import FEEDBACK_PACKET_SIZE

        data = self.process.read(self.usb_fd, FEEDBACK_PACKET_SIZE)
        feedback = decode_feedback_packet(data)
        mpos = self.encoders.to_radians(feedback.encoder_counts[:3])
        return mpos, feedback.state

    def tick(self, now: float) -> ControllerOutput:
        """Run one 1 ms control cycle."""
        self.cycles += 1
        notes: List[str] = []

        packet, consumed = self._drain_console(now)
        if packet is not None:
            self.state_machine.set_pedal(packet.pedal_down, now)

        mpos, plc_state_echo = self._read_feedback()
        jpos = self.transmission.joint_positions(mpos)
        self._last_jpos = jpos
        pos = self.arm.forward(jpos)

        state = self.state_machine.state

        if state is RobotState.INIT:
            # Homing handshake: each self-test step needs the PLC to echo
            # the INIT state back; without acknowledgment, homing stalls
            # (this is the dependency the "change robot state in PLC"
            # attack variant breaks — observed as a homing failure).
            if plc_state_echo is RobotState.INIT:
                self._init_cycles_left -= 1
            if self._init_cycles_left <= 0:
                self.state_machine.initialization_done(now)
                state = self.state_machine.state
            # Reference tracks the actual pose during homing/self-test.
            self._pos_d = pos.copy()
            self._jpos_d = jpos.copy()

        if state is RobotState.PEDAL_DOWN:
            if self._pos_d is None:
                self._pos_d = pos.copy()
            if packet is not None and packet.mode == 1:
                # Receive-side validation: the RAVEN software rejects
                # incremental motions beyond the per-packet limit, so a
                # console (or console-path attacker) cannot command an
                # arbitrarily large jump in a single packet.
                self._pos_d = self._pos_d + clamp_increment(packet.dpos)
                try:
                    self._ori_d = quat_normalize(
                        quat_multiply(self._ori_d, packet.dquat)
                    )
                except ValueError:
                    notes.append("degenerate orientation increment dropped")
        elif state is RobotState.PEDAL_UP:
            # Console disengaged: desired pose holds at the current pose.
            self._pos_d = pos.copy()

        pos_d = self._pos_d if self._pos_d is not None else pos.copy()

        # Inverse kinematics: desired end-effector -> joints -> motors.
        try:
            jpos_d = self.arm.inverse(pos_d, reference=jpos)
        except InverseKinematicsError:
            notes.append("IK failure")
            self.state_machine.emergency_stop(now, reason="IK failure")
            jpos_d = jpos.copy()
            self._pos_d = pos.copy()
            state = self.state_machine.state
        jpos_d = self.workspace.clamp(jpos_d)
        self._jpos_d = jpos_d
        mpos_d = self.transmission.motor_positions(jpos_d)

        if state is RobotState.PEDAL_DOWN:
            current_cmd = self.pid.update(mpos_d, mpos)
            dac = np.rint(current_to_dac(current_cmd)).astype(int)
        else:
            self.pid.reset()
            dac = np.zeros(3, dtype=int)

        decision = self.safety.check(dac, jpos_d)
        if not decision.safe:
            notes.extend(decision.reasons)
            # RAVEN behaviour: stop the watchdog, zero the command and
            # drop to E-STOP; the PLC will also see the watchdog freeze.
            self.watchdog.trip()
            dac = np.zeros(3, dtype=int)
            self.state_machine.emergency_stop(now, reason="; ".join(decision.reasons))
            state = self.state_machine.state

        # Instrument (wrist) DOF: orientation targets tracked by the fast
        # kinematic servos; they do not affect the positioning dynamics.
        wrist_targets = self.wrist.targets_from_quaternion(self._ori_d)
        wrist_joints = self.wrist.step(wrist_targets, constants.CONTROL_PERIOD_S)

        wd_level = self.watchdog.tick()
        usb_packet = encode_command_packet(state, wd_level, list(dac) + [0] * 5)
        self.process.write(self.usb_fd, usb_packet)

        return ControllerOutput(
            time=now,
            state=state,
            pos=pos,
            pos_d=pos_d.copy(),
            jpos=jpos,
            jpos_d=jpos_d.copy(),
            mpos=mpos,
            mpos_d=mpos_d,
            dac=dac,
            safety=decision,
            ori_d=self._ori_d.copy(),
            wrist_joints=wrist_joints,
            packets_consumed=consumed,
            notes=notes,
        )

"""Resilient fleet supervisor: detection-as-a-service over many rigs.

The :mod:`repro.fleet` package multiplexes many teleoperated-rig sessions
through one batched detector runtime (:class:`repro.core.\
BatchedNextStateEstimator` lanes behind the guard's batch-sink seam) with
fail-operational guarantees:

- **durable sessions** — per-session guard state checkpoints into a
  versioned, checksummed :class:`SessionStore` (in-memory or sqlite); a
  killed session resumes bit-identically from its last checkpoint;
- **lane quarantine** — a session that throws, stalls, or fails snapshot
  integrity is ejected from the batch (survivor lanes keep their exact
  bytes) and escalated through the NOMINAL/COASTING/STALE/ESTOPPED
  health machine, never crashing the supervisor;
- **bounded ingest** — per-session queues reject frames when full
  (explicit backpressure), and heartbeat watchdogs walk silent sessions
  to a PLC E-STOP decision.

Configuration comes from ``REPRO_FLEET_*`` environment variables via
:class:`FleetConfig`; chaos campaigns inject ``session_kill`` /
``store_corrupt`` / ``slow_consumer`` faults through
:class:`repro.testing.ChaosInjector`.
"""

from repro.fleet.config import FleetConfig
from repro.fleet.session import (
    DecisionRecord,
    FleetSession,
    SessionBoard,
    SessionPlc,
    SessionSpec,
    TelemetryFrame,
)
from repro.fleet.store import (
    InMemorySessionStore,
    RetryingSessionStore,
    SessionSnapshot,
    SessionStore,
    SqliteSessionStore,
    canonical_payload,
    payload_checksum,
)
from repro.fleet.supervisor import FleetSupervisor, TickReport

__all__ = [
    "DecisionRecord",
    "FleetConfig",
    "FleetSession",
    "FleetSupervisor",
    "InMemorySessionStore",
    "RetryingSessionStore",
    "SessionBoard",
    "SessionPlc",
    "SessionSnapshot",
    "SessionSpec",
    "SessionStore",
    "SqliteSessionStore",
    "TelemetryFrame",
    "TickReport",
    "canonical_payload",
    "payload_checksum",
]

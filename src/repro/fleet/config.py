"""Fleet-supervisor tuning, resolved through :mod:`repro.envcfg`.

Every knob has a ``REPRO_FLEET_*`` environment variable (the fleet's
whole env surface, greppable here and documented in the README):

======================================  =======================================
``REPRO_FLEET_QUEUE_DEPTH``             per-session ingest queue bound
``REPRO_FLEET_STALE_TICKS``             ticks without frames before STALE
``REPRO_FLEET_MAX_COAST_TICKS``         coast cap for degraded sessions
``REPRO_FLEET_CHECKPOINT_EVERY``        ticks between session checkpoints
``REPRO_FLEET_STORE_RETRIES``           extra attempts per store operation
``REPRO_FLEET_STORE_BACKOFF_S``         sleep between store retries
``REPRO_FLEET_MAX_SESSIONS``            registration cap per supervisor
======================================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.envcfg import env_float, env_int

ENV_QUEUE_DEPTH = "REPRO_FLEET_QUEUE_DEPTH"
ENV_STALE_TICKS = "REPRO_FLEET_STALE_TICKS"
ENV_MAX_COAST_TICKS = "REPRO_FLEET_MAX_COAST_TICKS"
ENV_CHECKPOINT_EVERY = "REPRO_FLEET_CHECKPOINT_EVERY"
ENV_STORE_RETRIES = "REPRO_FLEET_STORE_RETRIES"
ENV_STORE_BACKOFF_S = "REPRO_FLEET_STORE_BACKOFF_S"
ENV_MAX_SESSIONS = "REPRO_FLEET_MAX_SESSIONS"


@dataclass(frozen=True)
class FleetConfig:
    """Tuning of one :class:`repro.fleet.FleetSupervisor`.

    ``queue_depth`` bounds each session's ingest queue; a full queue
    rejects new frames (explicit backpressure) instead of silently
    dropping old ones.  ``stale_after_ticks``/``max_coast_ticks`` seed
    each session's :class:`repro.core.SupervisorConfig`, so stale
    telemetry walks the existing coast -> STALE -> PLC E-STOP machine.
    ``checkpoint_every`` is the durability cadence: a killed session
    loses at most that many ticks of progress.  ``store_retries`` and
    ``store_backoff_s`` govern the retry wrapper around session-store
    I/O; a session whose checkpoint still fails after the retries is
    quarantined, not silently left non-durable.
    """

    queue_depth: int = 64
    stale_after_ticks: int = 64
    max_coast_ticks: int = 16
    checkpoint_every: int = 32
    store_retries: int = 2
    store_backoff_s: float = 0.01
    max_sessions: int = 1024

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.store_retries < 0:
            raise ValueError("store_retries must be >= 0")

    @classmethod
    def from_env(cls) -> "FleetConfig":
        """A config with any set ``REPRO_FLEET_*`` overrides applied."""
        defaults = cls()

        def pick_int(name: str, default: int) -> int:
            value = env_int(name)
            return default if value is None else value

        backoff = env_float(ENV_STORE_BACKOFF_S)
        return cls(
            queue_depth=pick_int(ENV_QUEUE_DEPTH, defaults.queue_depth),
            stale_after_ticks=pick_int(ENV_STALE_TICKS, defaults.stale_after_ticks),
            max_coast_ticks=pick_int(
                ENV_MAX_COAST_TICKS, defaults.max_coast_ticks
            ),
            checkpoint_every=pick_int(
                ENV_CHECKPOINT_EVERY, defaults.checkpoint_every
            ),
            store_retries=pick_int(ENV_STORE_RETRIES, defaults.store_retries),
            store_backoff_s=(
                defaults.store_backoff_s if backoff is None else backoff
            ),
            max_sessions=pick_int(ENV_MAX_SESSIONS, defaults.max_sessions),
        )

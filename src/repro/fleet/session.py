"""One tenant of the fleet supervisor: a rig session and its guard state.

A :class:`FleetSession` hosts the per-session half of detection as a
service: a scalar :class:`repro.core.GuardSupervisor` (plausibility
screen, coasting, staleness watchdog) attached to a :class:`SessionBoard`
— a minimal virtual USB board whose PLC latches E-STOP decisions for the
remote rig instead of driving motors.  Telemetry arrives as
:class:`TelemetryFrame` objects through a **bounded ingest queue**
(``REPRO_FLEET_QUEUE_DEPTH``); a full queue rejects the frame, which the
caller observes as backpressure, rather than silently shedding the oldest
telemetry.

Every decision the guard makes extends an order-sensitive SHA-256 **hash
chain** (``digest = H(prev_digest || canonical_record)``), so two runs
agree on their entire decision history iff their final digests match —
and the chain resumes from a checkpoint, which is what lets a killed and
restored session prove bit-identical continuation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from hashlib import sha256
from json import dumps
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.control.state_machine import RobotState
from repro.core.detector import AnomalyDetector, FusionRule
from repro.core.dynamic_model import RavenDynamicModel
from repro.core.estimator import NextStateEstimator
from repro.core.mitigation import MitigationStrategy
from repro.core.pipeline import DetectorGuard, GuardSupervisor, SupervisorConfig
from repro.core.thresholds import SafetyThresholds
from repro.fleet.config import FleetConfig
from repro.hw.usb_packet import CommandPacket, decode_command_packet, encode_command_packet

#: Schema version of fleet session checkpoints.  v2 added
#: ``frames_ingested``; v1 payloads still restore (the counter is
#: reconstructed as ``frames_processed``, consistent with the cleared
#: queue a resume starts from).
SESSION_SNAPSHOT_VERSION = 2

#: How many recent decision records a session retains for the
#: quarantine flight dump (bounded — sessions are long-lived).
RECENT_DECISIONS = 64


@dataclass(frozen=True)
class TelemetryFrame:
    """One telemetry sample from a remote rig.

    ``dac`` is the commanded DAC triple the rig's control software
    emitted; ``mpos`` is the accompanying motor-shaft measurement
    (radians), or ``None`` when the frame carried no measurement.
    """

    tick: int
    dac: Tuple[int, int, int]
    pedal_down: bool = True
    mpos: Optional[Tuple[float, float, float]] = None

    def to_packet(self) -> CommandPacket:
        """The equivalent on-wire command packet (canonical encoding)."""
        state = RobotState.PEDAL_DOWN if self.pedal_down else RobotState.PEDAL_UP
        return decode_command_packet(
            encode_command_packet(state, True, list(self.dac))
        )

    def mpos_array(self) -> Optional[np.ndarray]:
        if self.mpos is None:
            return None
        return np.asarray(self.mpos, dtype=float)


class SessionPlc:
    """E-STOP latch for a remote rig (the fleet's PLC stand-in).

    The guard's mitigation chain calls :meth:`trigger_estop` exactly like
    the hardware PLC's; here the latch is the decision the service
    reports back to the rig, not a brake line.
    """

    def __init__(self) -> None:
        self.estop_latched = False
        self.estop_reason: Optional[str] = None

    def trigger_estop(self, reason: str) -> None:
        if self.estop_latched:
            return
        self.estop_latched = True
        self.estop_reason = reason


class SessionBoard:
    """Minimal virtual USB board a guard can attach to.

    Provides exactly the surface the guard touches on the fleet path:
    the ``plc`` (E-STOP escalation) and the ``guard`` attachment slot.
    Measurements never come from this board — they arrive in telemetry
    frames through :meth:`repro.core.GuardSupervisor.process`.
    """

    def __init__(self) -> None:
        self.plc = SessionPlc()
        self.guard = None


@dataclass(frozen=True)
class SessionSpec:
    """Configuration of one fleet session (config, not state).

    Resume rebuilds the session from the *same spec*, then restores the
    checkpointed state into it — mirroring how
    :meth:`repro.core.GuardSupervisor.restore` refuses snapshots taken
    under a different :class:`SupervisorConfig`.
    """

    session_id: str
    thresholds: SafetyThresholds
    strategy: MitigationStrategy = MitigationStrategy.BLOCK
    fusion: FusionRule = FusionRule.ALL
    decision_window: Optional[Tuple[int, int]] = None
    parameter_error: float = 1.03
    integrator: str = "euler"
    supervisor: Optional[SupervisorConfig] = None

    def supervisor_config(self, fleet: FleetConfig) -> SupervisorConfig:
        """The session's supervisor config (fleet defaults unless set)."""
        if self.supervisor is not None:
            return self.supervisor
        return SupervisorConfig(
            max_coast_cycles=fleet.max_coast_ticks,
            staleness_timeout_cycles=fleet.stale_after_ticks,
        )

    def build_supervisor(self, fleet: FleetConfig) -> GuardSupervisor:
        """A pristine supervised guard for this session."""
        model = RavenDynamicModel(
            integrator=self.integrator, parameter_error=self.parameter_error
        )
        guard = DetectorGuard(
            estimator=NextStateEstimator(model),
            detector=AnomalyDetector(
                thresholds=self.thresholds,
                fusion=self.fusion,
                decision_window=self.decision_window,
            ),
            strategy=self.strategy,
        )
        return GuardSupervisor(guard, self.supervisor_config(fleet))


def _chain_digest(prev_hex: str, record: Dict[str, Any]) -> str:
    """One link of the decision hash chain."""
    encoded = dumps(record, sort_keys=True, separators=(",", ":"))
    return sha256((prev_hex + encoded).encode("utf-8")).hexdigest()


@dataclass
class DecisionRecord:
    """One guard decision, as it enters the session's hash chain."""

    tick: int
    dac: Tuple[int, ...]
    pedal_down: bool
    had_mpos: bool
    allowed: bool
    evaluated: bool
    alert: bool
    health: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tick": self.tick,
            "dac": list(self.dac),
            "pedal_down": self.pedal_down,
            "had_mpos": self.had_mpos,
            "allowed": self.allowed,
            "evaluated": self.evaluated,
            "alert": self.alert,
            "health": self.health,
        }


@dataclass
class _PendingDecision:
    """A frame whose verdict arrives from the batched finalize pass.

    ``health`` is the session's health the moment the frame was processed
    — recorded here because by dispatch time a later frame in the same
    drain burst may already have moved the health machine on.
    """

    tick: int
    frame: TelemetryFrame
    health: str


class FleetSession:
    """One registered session: supervised guard + ingest queue + chain."""

    def __init__(self, spec: SessionSpec, fleet: FleetConfig) -> None:
        self.spec = spec
        self.fleet = fleet
        self.supervisor = spec.build_supervisor(fleet)
        self.board = SessionBoard()
        self.supervisor.attach(self.board)
        self.queue: Deque[TelemetryFrame] = deque()
        self.pending: List[_PendingDecision] = []
        self.recent: Deque[Dict[str, Any]] = deque(maxlen=RECENT_DECISIONS)
        # The chain's genesis is the session id, so two sessions with
        # identical decision histories still have distinct digests.
        self.digest = sha256(spec.session_id.encode("utf-8")).hexdigest()
        self.frames_ingested = 0
        self.frames_rejected = 0
        self.frames_processed = 0
        self.decisions = 0
        self.checkpoint_version = 0  # repro: allow[RPR006] store-managed, set by FleetSupervisor.checkpoint/resume
        self.last_checkpoint_tick: Optional[int] = None  # repro: allow[RPR006] store-managed, set by FleetSupervisor.checkpoint/resume
        self.last_frame: Optional[TelemetryFrame] = None
        self.quarantined = False
        self.quarantine_reason: Optional[str] = None
        #: ``slow_consumer`` chaos: ticks before which drain() is a no-op.
        self.stalled_until_tick = -1

    @property
    def session_id(self) -> str:
        return self.spec.session_id

    @property
    def health(self) -> str:
        return self.supervisor.stats.health.value

    # -- ingest (bounded queue, explicit backpressure) ---------------------------

    def offer(self, frame: TelemetryFrame) -> bool:
        """Enqueue one frame; ``False`` (backpressure) when full."""
        if len(self.queue) >= self.fleet.queue_depth:
            self.frames_rejected += 1
            return False
        self.queue.append(frame)
        self.frames_ingested += 1
        return True

    def stalled(self, tick: int) -> bool:
        return tick < self.stalled_until_tick

    # -- decision chain ----------------------------------------------------------

    def record_decision(
        self,
        tick: int,
        frame: TelemetryFrame,
        allowed: bool,
        evaluated: bool,
        alert: bool,
        health: Optional[str] = None,
    ) -> None:
        record = DecisionRecord(
            tick=tick,
            dac=tuple(frame.dac),
            pedal_down=frame.pedal_down,
            had_mpos=frame.mpos is not None,
            allowed=allowed,
            evaluated=evaluated,
            alert=alert,
            health=self.health if health is None else health,
        ).to_dict()
        self.digest = _chain_digest(self.digest, record)
        self.decisions += 1
        self.recent.append(record)

    def fingerprint(self) -> Dict[str, Any]:
        """Comparable identity of this session's entire history."""
        return {
            "digest": self.digest,
            "decisions": self.decisions,
            "frames_processed": self.frames_processed,
            "frames_rejected": self.frames_rejected,
            "health": self.health,
            "estopped": self.board.plc.estop_latched,
            "stats": self.supervisor.stats.summary(),
        }

    # -- durable state -----------------------------------------------------------

    def snapshot_payload(self, tick: int) -> Dict[str, Any]:
        """The checkpoint payload (guard state + fleet-layer counters).

        The caller must have written the session's batched-lane estimator
        state back into the scalar estimator first (see
        ``_SessionPack.writeback``); queued-but-unprocessed frames are
        deliberately *not* checkpointed — on resume the feed replays from
        ``frames_processed``.
        """
        return {
            "version": SESSION_SNAPSHOT_VERSION,
            "session_id": self.session_id,
            "tick": tick,
            "supervisor": self.supervisor.snapshot(),
            "digest": self.digest,
            "decisions": self.decisions,
            "frames_ingested": self.frames_ingested,
            "frames_processed": self.frames_processed,
            "frames_rejected": self.frames_rejected,
            "estop_latched": self.board.plc.estop_latched,
            "estop_reason": self.board.plc.estop_reason,
        }

    def restore_payload(self, payload: Dict[str, Any]) -> None:
        """Resume from a checkpoint payload (inverse of the above)."""
        if payload["version"] not in (1, SESSION_SNAPSHOT_VERSION):
            raise ValueError(
                f"session snapshot version {payload['version']} != "
                f"supported {SESSION_SNAPSHOT_VERSION}"
            )
        if payload["session_id"] != self.session_id:
            raise ValueError(
                f"snapshot belongs to {payload['session_id']!r}, "
                f"not {self.session_id!r}"
            )
        self.supervisor.restore(payload["supervisor"])
        self.digest = payload["digest"]
        self.decisions = payload["decisions"]
        # v1 checkpoints predate the ingest counter; a resume starts from
        # an empty queue, so every ingested frame was a processed one.
        self.frames_ingested = payload.get(
            "frames_ingested", payload["frames_processed"]
        )
        self.frames_processed = payload["frames_processed"]
        self.frames_rejected = payload["frames_rejected"]
        self.board.plc.estop_latched = payload["estop_latched"]
        self.board.plc.estop_reason = payload["estop_reason"]
        self.queue.clear()
        self.pending.clear()
        self.recent.clear()
        # Transient per-run state restarts clean: nothing below survives
        # the process that wrote the checkpoint.
        self.last_frame = None
        self.quarantined = False
        self.quarantine_reason = None
        self.stalled_until_tick = -1

"""The fleet supervisor: fail-operational multiplexing of many sessions.

:class:`FleetSupervisor` drives N registered sessions through one
**batched lane pack**: each session's guard keeps its own scalar
detector, statistics and supervisor state machine, but the numeric core
(estimator sync/coast, one-step model prediction) runs once per tick
through a shared :class:`repro.core.BatchedNextStateEstimator` — the same
batch-sink seam :class:`repro.sim.batch.BatchedSurgicalRig` uses, so a
lane's bytes are provably independent of who else is packed with it.

Fail-operational guarantees:

- **lane fault isolation** — a session whose evaluation throws, whose
  checkpoint cannot be persisted, or whose stored state fails integrity
  is *quarantined*: its lane is ejected from the pack
  (:meth:`~repro.core.BatchedNextStateEstimator.remove_lanes` — the
  survivors' rows keep their exact bytes) and its guard is escalated
  through the existing STALE -> PLC E-STOP machine; the supervisor and
  every other session keep running;
- **durable sessions** — guard state checkpoints into a
  :class:`repro.fleet.SessionStore` every ``checkpoint_every`` ticks; a
  killed session resumes from its newest verifiable snapshot and, fed the
  same frames, continues bit-identically (hash-chain digests match an
  uninterrupted run);
- **backpressure and staleness** — bounded ingest queues reject frames
  when full; sessions that stop receiving (or stop draining —
  ``slow_consumer`` chaos) walk the supervisor's coast/STALE/E-STOP
  path instead of stalling the fleet.

Chaos hooks (``session_kill`` / ``store_corrupt`` / ``slow_consumer``
faults from :class:`repro.testing.ChaosInjector`) are consulted at the
top of every tick, keyed on session id and tick, so fault campaigns are
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.control.state_machine import RobotState
from repro.core.estimator import BatchedNextStateEstimator
from repro.core.pipeline import DetectorGuard
from repro.errors import FleetError, SessionStoreError, SnapshotIntegrityError
from repro.fleet.config import FleetConfig
from repro.fleet.session import FleetSession, SessionSpec, TelemetryFrame, _PendingDecision
from repro.fleet.store import (
    InMemorySessionStore,
    RetryingSessionStore,
    SessionSnapshot,
    SessionStore,
)
from repro.obs.export import write_jsonl
from repro.obs.runtime import get_runtime


@dataclass
class _FleetCapture:
    """One deferred guard evaluation (one frame on one lane)."""

    lane: int
    guard: DetectorGuard
    packet: Any
    mpos: Optional[np.ndarray]


class _SessionPack:
    """Batch sink multiplexing the sessions' estimators (one lane each).

    The fleet counterpart of ``repro.sim.batch._BatchGuardCoordinator``:
    identical masked sync/coast/estimate rounds against a
    :class:`BatchedNextStateEstimator`, minus the DAC latch boards (the
    fleet reports decisions instead of driving motors).  Per-lane scalar
    work (detector evaluation, mitigation chain) is isolated: a lane that
    throws is reported as faulted, never allowed to unwind the pack.
    """

    def __init__(self, guards: List[DetectorGuard]) -> None:
        from repro.dynamics.batch import require_homogeneous

        require_homogeneous(
            [g.estimator.model.integrator_name for g in guards], "model integrator"
        )
        require_homogeneous([g.estimator.dt for g in guards], "estimator dt")
        require_homogeneous(
            [g.estimator.alpha for g in guards], "velocity_filter_alpha"
        )
        self.guards = list(guards)
        # Built pristine from the lanes' models, then loaded lane by lane
        # from the scalar estimators' snapshots — this is also the resume
        # path, where estimators already hold checkpointed state (so
        # ``from_estimators``'s pristine-only constructor cannot be used).
        self.estimator = BatchedNextStateEstimator(
            [g.estimator.model for g in guards],
            dt=guards[0].estimator.dt,
            velocity_filter_alpha=guards[0].estimator.alpha,
        )
        for lane, guard in enumerate(guards):
            self.estimator.load_lane_state(lane, guard.estimator.snapshot())
        self._lane_of = {id(g): i for i, g in enumerate(guards)}
        self._captures: List[List[_FleetCapture]] = [[] for _ in guards]
        for guard in guards:
            guard._batch_sink = self

    @property
    def num_lanes(self) -> int:
        return len(self.guards)

    def lane_of(self, guard: DetectorGuard) -> int:
        return self._lane_of[id(guard)]

    def pending_captures(self, lane: int) -> int:
        return len(self._captures[lane])

    def capture(self, guard: DetectorGuard, packet, mpos) -> bool:
        """Record one packet for deferred batched evaluation."""
        lane = self._lane_of[id(guard)]
        self._captures[lane].append(
            _FleetCapture(lane=lane, guard=guard, packet=packet, mpos=mpos)
        )
        return True

    def finalize(
        self,
    ) -> Tuple[List[Tuple[int, bool, bool, bool]], List[Tuple[int, BaseException]]]:
        """Run all deferred evaluations, batched; report per-lane verdicts.

        Returns ``(decisions, faults)``: decisions are
        ``(lane, allowed, evaluated, alert)`` in per-lane FIFO order;
        faults are ``(lane, exception)`` for lanes whose scalar evaluation
        raised (their remaining captures are dropped — the session is
        about to be quarantined).
        """
        num = self.num_lanes
        decisions: List[Tuple[int, bool, bool, bool]] = []
        faults: List[Tuple[int, BaseException]] = []
        dead = np.zeros(num, dtype=bool)
        while any(self._captures):
            self.estimator.model.refresh_parameters()
            round_caps: List[Optional[_FleetCapture]] = [
                caps.pop(0) if caps else None for caps in self._captures
            ]
            sync_mask = np.zeros(num, dtype=bool)
            coast_mask = np.zeros(num, dtype=bool)
            mpos_rows = np.zeros((num, 3))
            for cap in round_caps:
                if cap is None or dead[cap.lane]:
                    continue
                if cap.mpos is not None:
                    sync_mask[cap.lane] = True
                    mpos_rows[cap.lane] = cap.mpos
                else:
                    coast_mask[cap.lane] = True
            if sync_mask.any():
                self.estimator.sync(mpos_rows, sync_mask)
            if coast_mask.any():
                self.estimator.coast(coast_mask)

            synced = self.estimator.synced
            eval_mask = np.zeros(num, dtype=bool)
            dac_rows = np.zeros((num, 3))
            for cap in round_caps:
                if cap is None or dead[cap.lane]:
                    continue
                if cap.packet.state is RobotState.PEDAL_DOWN and synced[cap.lane]:
                    eval_mask[cap.lane] = True
                    dac_rows[cap.lane] = np.asarray(
                        cap.packet.dac_values[:3], dtype=float
                    )
            if eval_mask.any():
                batch_estimate = self.estimator.estimate(dac_rows, eval_mask)
            for cap in round_caps:
                if cap is None or dead[cap.lane]:
                    continue
                if not eval_mask[cap.lane]:
                    # Pedal up / not yet synced: allowed, not evaluated.
                    decisions.append((cap.lane, True, False, False))
                    continue
                try:
                    estimate = batch_estimate.lane(cap.lane)
                    result = cap.guard.detector.evaluate(estimate)
                    allowed = cap.guard._finish_evaluation(
                        cap.packet, estimate, result
                    )
                except Exception as exc:  # noqa: BLE001 — lane isolation
                    faults.append((cap.lane, exc))
                    dead[cap.lane] = True
                    self._captures[cap.lane].clear()
                    continue
                decisions.append((cap.lane, allowed, True, result.alert))
        return decisions, faults

    def writeback(self, lane: int) -> None:
        """Copy a lane's batched estimator state into its scalar twin.

        Called before checkpointing (the snapshot serializes the scalar
        estimator) and before rebuilding the pack.
        """
        self.guards[lane].estimator.restore(self.estimator.lane_state(lane))

    def remove_lanes(self, lanes: List[int]) -> None:
        """Eject quarantined lanes; survivors' rows keep their bytes."""
        removed = set(lanes)
        for lane in lanes:
            guard = self.guards[lane]
            self.writeback(lane)  # preserve final state for forensics
            guard._batch_sink = None
        self.estimator.remove_lanes(lanes)
        self.guards = [g for i, g in enumerate(self.guards) if i not in removed]
        self._captures = [
            caps for i, caps in enumerate(self._captures) if i not in removed
        ]
        self._lane_of = {id(g): i for i, g in enumerate(self.guards)}

    def detach(self) -> None:
        for lane, guard in enumerate(self.guards):
            self.writeback(lane)
            guard._batch_sink = None


@dataclass
class TickReport:
    """What one :meth:`FleetSupervisor.tick` did (driver feedback)."""

    tick: int
    frames_processed: int = 0
    quarantined: List[Tuple[str, str]] = field(default_factory=list)
    killed: List[Tuple[str, int]] = field(default_factory=list)
    checkpointed: List[str] = field(default_factory=list)


class FleetSupervisor:
    """Multiplexes N rig sessions over one batched detector runtime."""

    def __init__(
        self,
        store: Optional[SessionStore] = None,
        config: Optional[FleetConfig] = None,
        injector=None,
    ) -> None:
        self.config = config or FleetConfig.from_env()
        backend = store if store is not None else InMemorySessionStore()
        self.store: SessionStore = RetryingSessionStore(
            backend,
            retries=self.config.store_retries,
            backoff_s=self.config.store_backoff_s,
        )
        self.injector = injector
        self.sessions: Dict[str, FleetSession] = {}
        self._order: List[str] = []  # registration order (determinism)
        self._pack: Optional[_SessionPack] = None
        self.tick_count = 0
        self.sessions_killed = 0
        self.stores_corrupted = 0
        self._obs = get_runtime()
        if self._obs.enabled:
            registry = self._obs.registry
            self._g_active = registry.gauge(
                "repro_fleet_active_sessions", "registered, non-quarantined sessions"
            )
            self._g_quarantined = registry.gauge(
                "repro_fleet_quarantined_sessions", "sessions ejected from the pack"
            )
            self._c_frames = registry.counter(
                "repro_fleet_frames_total", "telemetry frames processed"
            )
            self._c_rejected = registry.counter(
                "repro_fleet_backpressure_total", "frames rejected by full queues"
            )
        else:
            self._g_active = None
            self._g_quarantined = None
            self._c_frames = None
            self._c_rejected = None
        self._tenant_counters: Dict[str, Any] = {}

    # -- roster ------------------------------------------------------------------

    @property
    def active(self) -> List[FleetSession]:
        """Non-quarantined sessions, in registration order."""
        return [
            self.sessions[sid]
            for sid in self._order
            if not self.sessions[sid].quarantined
        ]

    def register(self, spec: SessionSpec) -> FleetSession:
        """Add a session to the fleet (rebuilds the lane pack)."""
        if spec.session_id in self.sessions:
            raise FleetError(f"session {spec.session_id!r} already registered")
        if len(self.sessions) >= self.config.max_sessions:
            raise FleetError(
                f"fleet is full ({self.config.max_sessions} sessions)"
            )
        session = FleetSession(spec, self.config)
        self.sessions[spec.session_id] = session
        self._order.append(spec.session_id)
        self._rebuild_pack()
        self._update_gauges()
        return session

    def resume(self, spec: SessionSpec) -> FleetSession:
        """Register a session and restore it from its stored checkpoint.

        Loads the newest *verifiable* snapshot (older versions are the
        fallback when the newest is corrupt).  Raises
        :class:`SnapshotIntegrityError` when snapshots exist but none
        verifies, and :class:`FleetError` when the store holds nothing.
        """
        snapshot = self.store.load(spec.session_id)
        if snapshot is None:
            raise FleetError(
                f"session {spec.session_id!r} has no stored checkpoint"
            )
        session = self.register(spec)
        try:
            session.restore_payload(snapshot.payload)
            session.checkpoint_version = snapshot.version
            session.last_checkpoint_tick = snapshot.payload.get("tick")
        except Exception:
            self._quarantine([spec.session_id], "restore failed")
            raise
        self._rebuild_pack()  # reload the lane from the restored state
        return session

    def _rebuild_pack(self) -> None:
        """Rebuild the batched pack over the active sessions.

        Live lane state is written back into the scalar estimators first,
        so re-packing is state-preserving (the snapshot round-trip is
        bit-exact; see ``tests/test_guard_snapshot.py``).
        """
        if self._pack is not None:
            self._pack.detach()
            self._pack = None
        guards = [s.supervisor.guard for s in self.active]
        if guards:
            self._pack = _SessionPack(guards)

    # -- ingest ------------------------------------------------------------------

    def ingest(self, session_id: str, frame: TelemetryFrame) -> bool:
        """Offer one telemetry frame; ``False`` signals backpressure
        (or a quarantined session, which no longer accepts frames)."""
        session = self.sessions.get(session_id)
        if session is None:
            raise FleetError(f"unknown session {session_id!r}")
        if session.quarantined:
            return False
        accepted = session.offer(frame)
        if not accepted and self._c_rejected is not None:
            self._c_rejected.inc()
        return accepted

    # -- the tick ----------------------------------------------------------------

    def tick(self, tick: Optional[int] = None) -> TickReport:
        """Advance the fleet one tick: chaos, watchdogs, drain, decide,
        quarantine, checkpoint."""
        if tick is None:
            tick = self.tick_count
        self.tick_count = tick + 1
        report = TickReport(tick=tick)

        self._apply_chaos(tick, report)

        # Watchdogs + drain (registration order, deterministic).
        for session in self.active:
            session.supervisor.tick_cycle(tick)
            if session.stalled(tick):
                continue
            while session.queue:
                frame = session.queue.popleft()
                self._process_frame(session, frame)
                report.frames_processed += 1

        # Batched evaluation + per-lane verdict dispatch.
        faulted: List[Tuple[str, str]] = []
        if self._pack is not None:
            decisions, faults = self._pack.finalize()
            lanes = self.active
            for lane, allowed, evaluated, alert in decisions:
                session = lanes[lane]
                pending = session.pending.pop(0)
                session.record_decision(
                    pending.tick,
                    pending.frame,
                    allowed,
                    evaluated,
                    alert,
                    health=pending.health,
                )
            for lane, exc in faults:
                session = lanes[lane]
                session.pending.clear()
                faulted.append(
                    (
                        session.session_id,
                        f"evaluation raised {type(exc).__name__}: {exc}",
                    )
                )
        for sid, reason in faulted:
            self._quarantine([sid], reason, tick=tick)
            report.quarantined.append((sid, reason))

        self._checkpoint_due(tick, report)
        self._update_gauges()
        return report

    def _process_frame(self, session: FleetSession, frame: TelemetryFrame) -> None:
        """Run one frame through the session's supervisor.

        Decisions that defer into the pack are recorded after finalize;
        immediate verdicts (E-STOPPED fast path, coast-cap escalation)
        are recorded on the spot.
        """
        session.last_frame = frame
        lane = (
            self._pack.lane_of(session.supervisor.guard)
            if self._pack is not None
            else None
        )
        before = self._pack.pending_captures(lane) if lane is not None else 0
        allowed = session.supervisor.process(frame.to_packet(), frame.mpos_array())
        session.frames_processed += 1
        if self._c_frames is not None:
            self._c_frames.inc()
            self._tenant_counter(session.session_id).inc()
        # Decisions are recorded against the *frame's* tick, not the fleet
        # tick, so a resumed session replaying old frames at later fleet
        # ticks still reproduces the uninterrupted run's exact chain.
        if lane is not None and self._pack.pending_captures(lane) > before:
            session.pending.append(
                _PendingDecision(
                    tick=frame.tick, frame=frame, health=session.health
                )
            )
        else:
            session.record_decision(
                frame.tick, frame, allowed, evaluated=False, alert=False
            )

    # -- chaos -------------------------------------------------------------------

    def _apply_chaos(self, tick: int, report: TickReport) -> None:
        if self.injector is None or not self.injector.wants_fleet_faults:
            return
        for session in list(self.active):
            spec = self.injector.fleet_fault(session.session_id, tick)
            if spec is None:
                continue
            if spec.kind == "slow_consumer":
                session.stalled_until_tick = tick + max(1, int(spec.hang_s))
                self._obs.log_event(
                    "fleet_slow_consumer",
                    session=session.session_id,
                    tick=tick,
                    until=session.stalled_until_tick,
                )
            elif spec.kind == "store_corrupt":
                if self.store.corrupt_latest(session.session_id):
                    self.stores_corrupted += 1
                    self._obs.log_event(
                        "fleet_store_corrupt",
                        session=session.session_id,
                        tick=tick,
                    )
            elif spec.kind == "session_kill":
                self._kill_and_resume(session, tick, report)

    def _kill_and_resume(
        self, session: FleetSession, tick: int, report: TickReport
    ) -> None:
        """``session_kill`` chaos: drop the runtime, resume from the store.

        Everything since the last checkpoint is lost — including queued
        frames — exactly like a killed worker process.  The session either
        resumes from its newest verifiable snapshot (the driver replays
        frames from ``frames_processed``) or, with no usable checkpoint,
        is quarantined.
        """
        sid = session.session_id
        self.sessions_killed += 1
        self._obs.log_event("fleet_session_kill", session=sid, tick=tick)
        spec = session.spec
        # Drop the in-memory runtime.
        self._quarantine([sid], reason=None, tick=None)
        del self.sessions[sid]
        self._order.remove(sid)
        try:
            resumed = self.resume(spec)
        except (FleetError, SessionStoreError) as exc:
            # No (usable) checkpoint: the session is gone; register a
            # quarantined tombstone so its loss is visible, not silent.
            tombstone = FleetSession(spec, self.config)
            tombstone.quarantined = True
            tombstone.quarantine_reason = f"killed, not resumable: {exc}"
            tombstone.supervisor._escalate_stale(
                f"fleet: session killed and not resumable ({exc})"
            )
            self.sessions[sid] = tombstone
            self._order.append(sid)
            report.quarantined.append((sid, tombstone.quarantine_reason))
            return
        report.killed.append((sid, resumed.frames_processed))

    # -- quarantine --------------------------------------------------------------

    def quarantine(self, session_id: str, reason: str) -> None:
        """Eject one session from the pack and escalate its guard."""
        self._quarantine([session_id], reason, tick=self.tick_count)

    def _quarantine(
        self,
        session_ids: List[str],
        reason: Optional[str],
        tick: Optional[int] = None,
    ) -> None:
        """Remove lanes from the pack; survivors are untouched.

        ``reason=None`` means a silent ejection (session_kill teardown);
        otherwise the session's own guard walks STALE -> E-STOP and the
        event is logged + flight-dumped.
        """
        active = self.active
        lanes = [
            i for i, s in enumerate(active) if s.session_id in set(session_ids)
        ]
        if self._pack is not None and lanes:
            if len(lanes) == self._pack.num_lanes:
                self._pack.detach()
                self._pack = None
            else:
                self._pack.remove_lanes(lanes)
        for sid in session_ids:
            session = self.sessions[sid]
            session.quarantined = True
            if reason is None:
                continue
            session.quarantine_reason = reason
            session.supervisor._escalate_stale(f"fleet quarantine: {reason}")
            self._obs.log_event(
                "fleet_quarantine", session=sid, tick=tick, reason=reason
            )
            self._dump_quarantine(session, tick if tick is not None else -1, reason)
        self._update_gauges()

    def _dump_quarantine(
        self, session: FleetSession, tick: int, reason: str
    ) -> None:
        """Flight-recorder dump of the session's recent decisions."""
        path = self._obs.flight_dump_path(
            label=f"fleet-{session.session_id}",
            seed=0,
            cycle=tick,
            reason="quarantine",
        )
        if path is None:
            return
        records: List[dict] = [
            {
                "session": session.session_id,
                "tick": tick,
                "reason": reason,
                "health": session.health,
                "digest": session.digest,
            }
        ]
        records.extend(session.recent)
        write_jsonl(path, records)

    # -- checkpoints -------------------------------------------------------------

    def _checkpoint_due(self, tick: int, report: TickReport) -> None:
        for session in self.active:
            last = session.last_checkpoint_tick
            if last is not None and tick - last < self.config.checkpoint_every:
                continue
            try:
                self.checkpoint(session.session_id, tick)
            except SessionStoreError as exc:
                reason = f"checkpoint failed: {exc}"
                self._quarantine([session.session_id], reason, tick=tick)
                report.quarantined.append((session.session_id, reason))
            else:
                report.checkpointed.append(session.session_id)

    def drain(self, tick: Optional[int] = None) -> List[str]:
        """Checkpoint every live session, now (clean-shutdown flush).

        Cadence-based checkpointing (:meth:`_checkpoint_due`) can leave up
        to ``checkpoint_every`` ticks of decisions unpersisted, so a clean
        SIGTERM that only relied on it would still lose frames.  Shutdown
        paths (service workers, campaign teardown) call this to flush every
        active session at ``tick`` (default: the last completed tick).

        Sessions already checkpointed at that exact tick are skipped (their
        stored state is current); a session whose store write fails is
        quarantined — consistent with the cadence path — and the remaining
        sessions still drain.  Returns the drained session ids in
        registration order.
        """
        if tick is None:
            tick = max(0, self.tick_count - 1)
        drained: List[str] = []
        for session in self.active:
            if session.last_checkpoint_tick == tick:
                drained.append(session.session_id)
                continue
            try:
                self.checkpoint(session.session_id, tick)
            except SessionStoreError as exc:
                self._quarantine(
                    [session.session_id], f"drain checkpoint failed: {exc}",
                    tick=tick,
                )
            else:
                drained.append(session.session_id)
        self._obs.log_event("fleet_drain", tick=tick, sessions=drained)
        return drained

    def checkpoint(self, session_id: str, tick: int) -> SessionSnapshot:
        """Write one session's current state to the store, now."""
        session = self.sessions[session_id]
        if self._pack is not None and not session.quarantined:
            self._pack.writeback(self._pack.lane_of(session.supervisor.guard))
        session.checkpoint_version += 1
        snapshot = SessionSnapshot.create(
            session_id=session_id,
            version=session.checkpoint_version,
            payload=session.snapshot_payload(tick),
        )
        self.store.save(snapshot)
        session.last_checkpoint_tick = tick
        return snapshot

    # -- reporting ---------------------------------------------------------------

    def fingerprints(self) -> Dict[str, Dict[str, Any]]:
        """Per-session identity of everything that happened (sorted)."""
        return {
            sid: self.sessions[sid].fingerprint() for sid in sorted(self._order)
        }

    def _tenant_counter(self, session_id: str):
        counter = self._tenant_counters.get(session_id)
        if counter is None:
            slug = "".join(
                ch if (ch.isalnum() or ch == "_") else "_" for ch in session_id
            )
            counter = self._obs.registry.counter(
                f"repro_fleet_frames_total_{slug}",
                f"frames processed for session {session_id}",
            )
            self._tenant_counters[session_id] = counter
        return counter

    def _update_gauges(self) -> None:
        if self._g_active is None:
            return
        quarantined = sum(1 for s in self.sessions.values() if s.quarantined)
        self._g_active.set(len(self.sessions) - quarantined)
        self._g_quarantined.set(quarantined)

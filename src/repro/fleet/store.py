"""Durable, versioned, checksummed session-state stores.

A :class:`SessionSnapshot` wraps one session's guard-state payload (see
:meth:`repro.core.GuardSupervisor.snapshot`) with a monotonically
increasing version and a SHA-256 checksum over the canonical JSON bytes.
Stores keep every version they are given; :meth:`SessionStore.load`
returns the newest snapshot that *verifies*, walking back through older
versions when the newest is corrupt — a torn or bit-flipped write costs
at most one checkpoint interval of progress, never the session.

Two backends share the interface: :class:`InMemorySessionStore` (tests,
single-process fleets) and :class:`SqliteSessionStore` (crash-durable
file-backed storage via the stdlib ``sqlite3``).  Both serialize payloads
to canonical JSON at ``save`` time, so what comes back is exactly what a
file round-trip would produce — the in-memory store cannot accidentally
share mutable state with the session.

:class:`RetryingSessionStore` wraps any backend with the bounded
retry/backoff policy from :class:`repro.fleet.FleetConfig`
(``REPRO_FLEET_STORE_RETRIES`` / ``REPRO_FLEET_STORE_BACKOFF_S``),
turning transient I/O errors into :class:`repro.errors.SessionStoreError`
only after the policy is exhausted.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import SessionStoreError, SnapshotIntegrityError


def canonical_payload(payload: Dict[str, Any]) -> str:
    """The canonical JSON encoding checksums are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_checksum(encoded: str) -> str:
    """SHA-256 hex digest of a canonically encoded payload."""
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SessionSnapshot:
    """One versioned, checksummed session checkpoint."""

    session_id: str
    version: int
    payload: Dict[str, Any]
    checksum: str

    @classmethod
    def create(
        cls, session_id: str, version: int, payload: Dict[str, Any]
    ) -> "SessionSnapshot":
        """Build a snapshot, computing the checksum from the payload."""
        return cls(
            session_id=session_id,
            version=version,
            payload=payload,
            checksum=payload_checksum(canonical_payload(payload)),
        )

    def verify(self) -> None:
        """Raise :class:`SnapshotIntegrityError` unless checksum matches."""
        actual = payload_checksum(canonical_payload(self.payload))
        if actual != self.checksum:
            raise SnapshotIntegrityError(
                f"snapshot {self.session_id} v{self.version}: checksum "
                f"mismatch (stored {self.checksum[:12]}..., "
                f"payload {actual[:12]}...)"
            )


class SessionStore:
    """Interface shared by every session-store backend."""

    def save(self, snapshot: SessionSnapshot) -> None:
        """Persist one snapshot (a version is written at most once)."""
        raise NotImplementedError

    def load(self, session_id: str) -> Optional[SessionSnapshot]:
        """The newest snapshot of ``session_id`` that verifies.

        Falls back to older versions when newer ones fail their checksum.
        Returns ``None`` when the session has no stored snapshots at all;
        raises :class:`SnapshotIntegrityError` when snapshots exist but
        *none* verifies (the session cannot be trusted to resume).
        """
        versions = self.versions(session_id)
        if not versions:
            return None
        for version in sorted(versions, reverse=True):
            snapshot = self.load_version(session_id, version)
            try:
                snapshot.verify()
            except SnapshotIntegrityError:
                continue
            return snapshot
        raise SnapshotIntegrityError(
            f"session {session_id!r}: all {len(versions)} stored "
            "snapshot(s) failed checksum verification"
        )

    def load_version(self, session_id: str, version: int) -> SessionSnapshot:
        """One exact stored version (unverified)."""
        raise NotImplementedError

    def versions(self, session_id: str) -> List[int]:
        """All stored versions of ``session_id``, ascending."""
        raise NotImplementedError

    def session_ids(self) -> List[str]:
        """Every session with at least one stored snapshot, sorted."""
        raise NotImplementedError

    def delete(self, session_id: str) -> None:
        """Drop every snapshot of ``session_id``."""
        raise NotImplementedError

    def corrupt_latest(self, session_id: str) -> bool:
        """Chaos hook: flip one byte in the newest stored payload.

        Returns whether anything was corrupted.  Used by the
        ``store_corrupt`` fleet fault to prove the fallback path.
        """
        raise NotImplementedError

    @staticmethod
    def _flipped(encoded: str) -> str:
        """The encoded payload with one character corrupted."""
        middle = len(encoded) // 2
        return encoded[:middle] + ("X" if encoded[middle] != "X" else "Y") + (
            encoded[middle + 1 :]
        )


class InMemorySessionStore(SessionStore):
    """Dict-backed store; payloads round-trip through canonical JSON."""

    def __init__(self) -> None:
        self._rows: Dict[str, Dict[int, tuple]] = {}

    def save(self, snapshot: SessionSnapshot) -> None:
        rows = self._rows.setdefault(snapshot.session_id, {})
        if snapshot.version in rows:
            raise SessionStoreError(
                f"session {snapshot.session_id!r} already has "
                f"version {snapshot.version}"
            )
        rows[snapshot.version] = (
            canonical_payload(snapshot.payload),
            snapshot.checksum,
        )

    def load_version(self, session_id: str, version: int) -> SessionSnapshot:
        encoded, checksum = self._rows[session_id][version]
        return SessionSnapshot(
            session_id=session_id,
            version=version,
            payload=json.loads(encoded),
            checksum=checksum,
        )

    def versions(self, session_id: str) -> List[int]:
        return sorted(self._rows.get(session_id, {}))

    def session_ids(self) -> List[str]:
        return sorted(sid for sid, rows in self._rows.items() if rows)

    def delete(self, session_id: str) -> None:
        self._rows.pop(session_id, None)

    def corrupt_latest(self, session_id: str) -> bool:
        rows = self._rows.get(session_id)
        if not rows:
            return False
        version = max(rows)
        encoded, checksum = rows[version]
        rows[version] = (self._flipped(encoded), checksum)
        return True


class SqliteSessionStore(SessionStore):
    """File-backed store on the stdlib ``sqlite3`` (crash durable)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as conn:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS snapshots ("
                " session_id TEXT NOT NULL,"
                " version INTEGER NOT NULL,"
                " payload TEXT NOT NULL,"
                " checksum TEXT NOT NULL,"
                " PRIMARY KEY (session_id, version))"
            )

    def _connect(self) -> sqlite3.Connection:
        # A fresh connection per operation: the store is used across
        # fork boundaries (crash-recovery tests), where a shared
        # connection object would be unsafe.
        return sqlite3.connect(self.path)

    def save(self, snapshot: SessionSnapshot) -> None:
        try:
            with self._connect() as conn:
                conn.execute(
                    "INSERT INTO snapshots VALUES (?, ?, ?, ?)",
                    (
                        snapshot.session_id,
                        snapshot.version,
                        canonical_payload(snapshot.payload),
                        snapshot.checksum,
                    ),
                )
        except sqlite3.IntegrityError:
            raise SessionStoreError(
                f"session {snapshot.session_id!r} already has "
                f"version {snapshot.version}"
            ) from None

    def load_version(self, session_id: str, version: int) -> SessionSnapshot:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT payload, checksum FROM snapshots"
                " WHERE session_id = ? AND version = ?",
                (session_id, version),
            ).fetchone()
        if row is None:
            raise SessionStoreError(
                f"session {session_id!r} has no version {version}"
            )
        return SessionSnapshot(
            session_id=session_id,
            version=version,
            payload=json.loads(row[0]),
            checksum=row[1],
        )

    def versions(self, session_id: str) -> List[int]:
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT version FROM snapshots WHERE session_id = ?"
                " ORDER BY version",
                (session_id,),
            ).fetchall()
        return [row[0] for row in rows]

    def session_ids(self) -> List[str]:
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT DISTINCT session_id FROM snapshots ORDER BY session_id"
            ).fetchall()
        return [row[0] for row in rows]

    def delete(self, session_id: str) -> None:
        with self._connect() as conn:
            conn.execute(
                "DELETE FROM snapshots WHERE session_id = ?", (session_id,)
            )

    def corrupt_latest(self, session_id: str) -> bool:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT version, payload FROM snapshots"
                " WHERE session_id = ? ORDER BY version DESC LIMIT 1",
                (session_id,),
            ).fetchone()
            if row is None:
                return False
            conn.execute(
                "UPDATE snapshots SET payload = ?"
                " WHERE session_id = ? AND version = ?",
                (self._flipped(row[1]), session_id, row[0]),
            )
        return True


class RetryingSessionStore(SessionStore):
    """Bounded retry/backoff around a backend's I/O.

    Transient failures (``sqlite3.OperationalError`` — locked database,
    interrupted write — and ``OSError``) are retried up to ``retries``
    extra times with ``backoff_s`` sleeps between attempts, then surfaced
    as :class:`SessionStoreError`.  Integrity failures are *not* retried:
    a bad checksum will not get better by asking again.
    """

    _TRANSIENT = (sqlite3.OperationalError, OSError)

    def __init__(
        self, store: SessionStore, retries: int = 2, backoff_s: float = 0.01
    ) -> None:
        self.store = store
        self.retries = retries
        self.backoff_s = backoff_s

    def _attempt(self, operation, *args):
        for attempt in range(self.retries + 1):
            try:
                return operation(*args)
            except self._TRANSIENT as exc:
                if attempt >= self.retries:
                    raise SessionStoreError(
                        f"store operation failed after {attempt + 1} "
                        f"attempt(s): {type(exc).__name__}: {exc}"
                    ) from exc
                time.sleep(self.backoff_s)

    def save(self, snapshot: SessionSnapshot) -> None:
        self._attempt(self.store.save, snapshot)

    def load(self, session_id: str) -> Optional[SessionSnapshot]:
        return self._attempt(self.store.load, session_id)

    def load_version(self, session_id: str, version: int) -> SessionSnapshot:
        return self._attempt(self.store.load_version, session_id, version)

    def versions(self, session_id: str) -> List[int]:
        return self._attempt(self.store.versions, session_id)

    def session_ids(self) -> List[str]:
        return self._attempt(self.store.session_ids)

    def delete(self, session_id: str) -> None:
        self._attempt(self.store.delete, session_id)

    def corrupt_latest(self, session_id: str) -> bool:
        return self._attempt(self.store.corrupt_latest, session_id)

"""Per-line lint suppressions: ``# repro: allow[RPR001]``.

A finding is suppressed when the physical line it is reported on carries
an allow comment naming its rule id (or ``*``).  Multiple ids separate
with commas: ``# repro: allow[RPR002, RPR003]``.  Trailing prose after
the bracket is encouraged — a suppression without a reason is a smell.

Suppressions are deliberately line-scoped (no file- or block-level form):
a waiver should be exactly as wide as the violation it waives.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List

#: Matches the allow marker anywhere in a line's trailing comment.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s]+)\]")

#: Wildcard id suppressing every rule on the line.
ALLOW_ALL = "*"


def parse_suppressions(lines: List[str]) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule ids allowed on that line."""
    allowed: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        ids = frozenset(
            part.strip().upper()
            for part in match.group(1).split(",")
            if part.strip()
        )
        if ids:
            allowed[lineno] = ids
    return allowed


def is_suppressed(
    rule_id: str, line: int, suppressions: Dict[int, FrozenSet[str]]
) -> bool:
    """Whether ``rule_id`` is waived on ``line``."""
    ids = suppressions.get(line)
    if ids is None:
        return False
    return ALLOW_ALL in ids or rule_id.upper() in ids

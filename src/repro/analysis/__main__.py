"""Command-line entry point: ``python -m repro.analysis``.

Exit codes: 0 when every finding is baselined or suppressed, 1 when new
findings (or parse errors) exist and ``--check`` is set, 2 on usage or
baseline-file errors.  Without ``--check`` the run always exits 0 so the
report can be browsed without failing a shell pipeline.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.analysis.baseline import (
    BaselineError,
    load_baseline,
    partition,
    save_baseline,
)
from repro.analysis.engine import AnalysisEngine
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import ALL_PROJECT_RULES, ALL_RULES
from repro.analysis.sarif import render_sarif

DEFAULT_BASELINE = "analysis_baseline.json"
DEFAULT_CACHE_DIR = ".cache/analysis"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Domain-invariant static analysis for the repro tree: guard "
            "bypass/TOCTOU (RPR001), determinism (RPR002), magic safety "
            "numbers (RPR003), pool picklability (RPR004), and the "
            "whole-program families: safety-path dominance (RPR005), "
            "lifecycle completeness (RPR006), scalar/batched parity "
            "(RPR007), quarantine discipline (RPR008)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when non-baselined findings exist",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of text",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        help="additionally write the gating findings as SARIF 2.1.0",
    )
    parser.add_argument(
        "--diff",
        metavar="REV_OR_PATH",
        action="append",
        help=(
            "restrict reported findings to changed files and their "
            "reverse dependencies; each value is a changed file path or "
            "a git revision to diff the worktree against (repeatable)"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file to match against (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--baseline-update",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=(
            "per-file summary cache directory "
            f"(default: {DEFAULT_CACHE_DIR})"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="parse everything fresh; do not read or write the cache",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _list_rules() -> str:
    return "\n".join(
        f"{rule.rule_id}  {rule.summary}"
        for rule in list(ALL_RULES) + list(ALL_PROJECT_RULES)
    )


def _git_changed_files(rev: str) -> Optional[List[str]]:
    """Paths changed against ``rev`` per git, or None when git fails."""
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", rev, "--", "*.py"],
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError:
        return None
    if proc.returncode != 0:
        return None
    return [line for line in proc.stdout.splitlines() if line.strip()]


def _resolve_diff_spec(specs: List[str]) -> Optional[List[str]]:
    """Changed files named by ``--diff`` values (paths or git revisions)."""
    changed: List[str] = []
    for spec in specs:
        if Path(spec).exists():
            changed.append(spec)
            continue
        from_git = _git_changed_files(spec)
        if from_git is None:
            print(
                f"error: --diff {spec!r} is neither a file nor a "
                "resolvable git revision",
                file=sys.stderr,
            )
            return None
        changed.extend(from_git)
    return changed


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(
            f"error: no such path(s): {', '.join(missing)}", file=sys.stderr
        )
        return 2

    diff: Optional[List[str]] = None
    if args.diff:
        diff = _resolve_diff_spec(args.diff)
        if diff is None:
            return 2

    cache_dir: Optional[Union[str, Path]] = (
        None if args.no_cache else args.cache_dir
    )
    engine = AnalysisEngine(cache_dir=cache_dir)
    result = engine.analyze_paths(args.paths, diff=diff)

    if args.baseline_update:
        save_baseline(args.baseline, result.findings)
        print(
            f"baseline {args.baseline} updated with "
            f"{len(result.findings)} finding(s)"
        )
        # Parse errors are never baselined; surface them even here.
        for finding in result.parse_errors:
            print(finding.format(), file=sys.stderr)
        return 1 if result.parse_errors else 0

    try:
        baseline = load_baseline(args.baseline)
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    new, grandfathered = partition(result.findings, baseline)
    # Parse errors always gate: nothing in the file was checked.
    new = sorted(new + result.parse_errors, key=lambda f: f.sort_key)

    if args.sarif:
        Path(args.sarif).write_text(render_sarif(new), encoding="utf-8")

    if args.json:
        print(render_json(result, new, grandfathered))
    else:
        print(render_text(result, new, grandfathered))

    if args.check and new:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

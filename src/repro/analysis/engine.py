"""The lint engine: collect files, parse or reuse summaries, run rules.

The engine never imports analyzed code — everything is derived from the
AST and the package structure on disk, so it can lint a broken tree and
runs identically on both CI interpreters (see :mod:`repro.analysis.compat`
for the version gating).

Since the whole-program layer landed, a run has two phases:

1. **Per file** — read, hash, and either reuse the cached summary +
   local findings (content sha and config fingerprint both match) or
   parse, run the local rules (RPR001–RPR004), and distill a summary.
2. **Project** — stitch all summaries into a
   :class:`~repro.analysis.graph.project.ProjectGraph` and run the
   interprocedural rules (RPR005–RPR008) over it.  Project findings are
   recomputed every run (they depend on *other* files), which is the
   cheap part; parsing is what the cache avoids.

``diff`` narrows *reporting* to a set of changed files plus everything
that transitively imports them — the analysis itself still sees the
whole tree, so interprocedural findings stay exact.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Union

from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.graph.cache import (
    CacheEntry,
    SummaryCache,
    config_fingerprint,
    content_sha,
)
from repro.analysis.graph.project import ProjectGraph
from repro.analysis.graph.summary import build_summary
from repro.analysis.rules import project_rules_for, rules_for
from repro.analysis.rules.base import ProjectRule, Rule
from repro.analysis.source import (
    ModuleSource,
    collect_py_files,
    display_path_for,
)
from repro.analysis.suppress import is_suppressed

logger = logging.getLogger(__name__)

#: Pseudo-rule id for files the engine could not parse.  Deliberately not
#: suppressible or baselineable: a syntax error means nothing else in the
#: file was checked.
PARSE_ERROR_RULE = "RPR000"


@dataclass
class AnalysisResult:
    """Outcome of one engine run."""

    #: Active findings (suppressions applied), sorted by location.
    findings: List[Finding] = field(default_factory=list)
    #: Findings waived by an inline ``# repro: allow[...]`` comment.
    suppressed: List[Finding] = field(default_factory=list)
    #: Unparseable files (``RPR000``), always active.
    parse_errors: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    #: Display paths parsed this run (everything else came from cache).
    parsed: List[str] = field(default_factory=list)
    #: Files whose summary + local findings were served from cache.
    from_cache: int = 0
    #: Modules findings were narrowed to (``--diff``); None = full tree.
    scope: Optional[List[str]] = None

    @property
    def active(self) -> List[Finding]:
        """Everything that should gate: parse errors + live findings."""
        return sorted(
            self.parse_errors + self.findings, key=lambda f: f.sort_key
        )

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts


class AnalysisEngine:
    """Run the configured rules over a set of paths."""

    def __init__(
        self,
        config: Optional[AnalysisConfig] = None,
        rules: Optional[Sequence[Rule]] = None,
        project_rules: Optional[Sequence[ProjectRule]] = None,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.config = config if config is not None else DEFAULT_CONFIG
        self.rules: List[Rule] = (
            list(rules) if rules is not None else rules_for(self.config)
        )
        self.project_rules: List[ProjectRule] = (
            list(project_rules)
            if project_rules is not None
            else project_rules_for(self.config)
        )
        self.cache = SummaryCache(
            Path(cache_dir) if cache_dir is not None else None
        )
        self._fingerprint = config_fingerprint(self.config)

    def analyze_paths(
        self,
        paths: Sequence[Union[str, Path]],
        display_root: Optional[Union[str, Path]] = None,
        diff: Optional[Sequence[Union[str, Path]]] = None,
    ) -> AnalysisResult:
        """Analyze every ``.py`` file under ``paths``.

        ``display_root`` relativizes reported paths (defaults to the
        current working directory when it contains the files).  ``diff``
        names changed files: reported findings are then restricted to
        those files' modules plus their transitive reverse importers.
        """
        root = Path(display_root) if display_root is not None else Path.cwd()
        result = AnalysisResult()
        summaries: Dict[str, Dict[str, Any]] = {}
        for file_path in collect_py_files([Path(p) for p in paths]):
            self._analyze_file(file_path, root, result, summaries)
        graph = ProjectGraph(summaries)
        self._run_project_rules(graph, result)
        if diff is not None:
            self._narrow_to_diff(graph, result, diff, root)
        result.findings.sort(key=lambda f: f.sort_key)
        result.suppressed.sort(key=lambda f: f.sort_key)
        return result

    # -- phase 1: per file ------------------------------------------------------

    def _analyze_file(
        self,
        path: Path,
        root: Path,
        result: AnalysisResult,
        summaries: Dict[str, Dict[str, Any]],
    ) -> None:
        display = display_path_for(path, root)
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            logger.warning("skipping unreadable file %s (%s)", path, exc)
            return
        result.files_scanned += 1
        sha = content_sha(text)
        cached = self.cache.load(display, sha, self._fingerprint)
        if cached is not None:
            summaries[cached.summary["module"]] = cached.summary
            result.findings.extend(cached.findings)
            result.suppressed.extend(cached.suppressed)
            result.from_cache += 1
            return
        try:
            module = ModuleSource.from_source(path, text, display_root=root)
        except SyntaxError as exc:
            result.parse_errors.append(
                Finding(
                    rule_id=PARSE_ERROR_RULE,
                    path=display,
                    module=display,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                    source=(exc.text or "").strip(),
                )
            )
            return
        result.parsed.append(display)
        entry = CacheEntry(summary=build_summary(module, self.config))
        self.analyze_module(module, result, entry)
        summaries[module.module] = entry.summary
        self.cache.store(display, sha, self._fingerprint, entry)

    def analyze_module(
        self,
        module: ModuleSource,
        result: AnalysisResult,
        entry: Optional[CacheEntry] = None,
    ) -> None:
        """Run every local rule over one parsed module."""
        for rule in self.rules:
            for finding in rule.check(module, self.config):
                if is_suppressed(
                    finding.rule_id, finding.line, module.suppressions
                ):
                    result.suppressed.append(finding)
                    if entry is not None:
                        entry.suppressed.append(finding)
                else:
                    result.findings.append(finding)
                    if entry is not None:
                        entry.findings.append(finding)

    # -- phase 2: whole program -------------------------------------------------

    def _run_project_rules(
        self, graph: ProjectGraph, result: AnalysisResult
    ) -> None:
        for rule in self.project_rules:
            for finding in rule.check_project(graph, self.config):
                suppressions = graph.suppressions_for(finding.module)
                if is_suppressed(finding.rule_id, finding.line, suppressions):
                    result.suppressed.append(finding)
                else:
                    result.findings.append(finding)

    def _narrow_to_diff(
        self,
        graph: ProjectGraph,
        result: AnalysisResult,
        diff: Sequence[Union[str, Path]],
        root: Path,
    ) -> None:
        path_to_module = {
            summ["path"]: mod for mod, summ in graph.summaries.items()
        }
        changed: Set[str] = set()
        changed_paths: Set[str] = set()
        for raw in diff:
            display = display_path_for(Path(raw), root)
            changed_paths.add(display)
            module = path_to_module.get(display)
            if module is not None:
                changed.add(module)
        scope = graph.importers_of(changed)
        scope_paths = {
            summ["path"]
            for mod, summ in graph.summaries.items()
            if mod in scope
        } | changed_paths
        result.scope = sorted(scope)
        result.findings = [
            f for f in result.findings if f.module in scope
        ]
        result.suppressed = [
            f for f in result.suppressed if f.module in scope
        ]
        result.parse_errors = [
            f for f in result.parse_errors if f.path in scope_paths
        ]

"""The lint engine: collect files, parse, run rules, apply suppressions.

The engine never imports analyzed code — everything is derived from the
AST and the package structure on disk, so it can lint a broken tree and
runs identically on both CI interpreters (see :mod:`repro.analysis.compat`
for the version gating).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.rules import rules_for
from repro.analysis.rules.base import Rule
from repro.analysis.source import ModuleSource, collect_py_files
from repro.analysis.suppress import is_suppressed

logger = logging.getLogger(__name__)

#: Pseudo-rule id for files the engine could not parse.  Deliberately not
#: suppressible or baselineable: a syntax error means nothing else in the
#: file was checked.
PARSE_ERROR_RULE = "RPR000"


@dataclass
class AnalysisResult:
    """Outcome of one engine run."""

    #: Active findings (suppressions applied), sorted by location.
    findings: List[Finding] = field(default_factory=list)
    #: Findings waived by an inline ``# repro: allow[...]`` comment.
    suppressed: List[Finding] = field(default_factory=list)
    #: Unparseable files (``RPR000``), always active.
    parse_errors: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def active(self) -> List[Finding]:
        """Everything that should gate: parse errors + live findings."""
        return sorted(
            self.parse_errors + self.findings, key=lambda f: f.sort_key
        )

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts


class AnalysisEngine:
    """Run the configured rules over a set of paths."""

    def __init__(
        self,
        config: Optional[AnalysisConfig] = None,
        rules: Optional[Sequence[Rule]] = None,
    ) -> None:
        self.config = config if config is not None else DEFAULT_CONFIG
        self.rules: List[Rule] = (
            list(rules) if rules is not None else rules_for(self.config)
        )

    def analyze_paths(
        self,
        paths: Sequence[Union[str, Path]],
        display_root: Optional[Union[str, Path]] = None,
    ) -> AnalysisResult:
        """Analyze every ``.py`` file under ``paths``.

        ``display_root`` relativizes reported paths (defaults to the
        current working directory when it contains the files).
        """
        root = Path(display_root) if display_root is not None else Path.cwd()
        result = AnalysisResult()
        for file_path in collect_py_files([Path(p) for p in paths]):
            module = self._load(file_path, root, result)
            if module is None:
                continue
            result.files_scanned += 1
            self.analyze_module(module, result)
        result.findings.sort(key=lambda f: f.sort_key)
        result.suppressed.sort(key=lambda f: f.sort_key)
        return result

    def analyze_module(
        self, module: ModuleSource, result: AnalysisResult
    ) -> None:
        """Run every rule over one parsed module."""
        for rule in self.rules:
            for finding in rule.check(module, self.config):
                if is_suppressed(
                    finding.rule_id, finding.line, module.suppressions
                ):
                    result.suppressed.append(finding)
                else:
                    result.findings.append(finding)

    def _load(
        self, path: Path, root: Path, result: AnalysisResult
    ) -> Optional[ModuleSource]:
        try:
            return ModuleSource.load(path, display_root=root)
        except SyntaxError as exc:
            display = self._display(path, root)
            result.parse_errors.append(
                Finding(
                    rule_id=PARSE_ERROR_RULE,
                    path=display,
                    module=display,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                    source=(exc.text or "").strip(),
                )
            )
            result.files_scanned += 1
            return None
        except (OSError, UnicodeDecodeError) as exc:
            logger.warning("skipping unreadable file %s (%s)", path, exc)
            return None

    @staticmethod
    def _display(path: Path, root: Path) -> str:
        try:
            return str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            return str(path)

"""Whole-program layer of the lint engine.

Everything here is derived from per-file :mod:`ast` trees — the engine
still never imports analyzed code.  The pipeline is:

``summary``
    Distills one parsed module into a JSON-serializable
    :class:`ModuleSummary`: import aliases, per-function call chains and
    exception handlers, per-class ``__init__`` attributes and attribute
    types, and the within-function gate/sink dominance facts.
``cfg``
    Statement-granularity control-flow graphs with dominator sets,
    consumed while the AST is in hand (dominance facts are baked into
    the summary so cached passes never re-parse).
``project``
    Stitches all summaries into a project graph: symbol table, class
    hierarchy, best-effort call-edge resolution through annotations and
    constructor assignments, and the reverse import map ``--diff`` uses.
``cache``
    Content-sha keyed persistence of summaries + per-file findings, so a
    warm full-tree pass skips parsing entirely.
"""

from __future__ import annotations

from repro.analysis.graph.cache import SummaryCache
from repro.analysis.graph.cfg import ControlFlowGraph
from repro.analysis.graph.project import ProjectGraph
from repro.analysis.graph.summary import build_summary

__all__ = [
    "ControlFlowGraph",
    "ProjectGraph",
    "SummaryCache",
    "build_summary",
]

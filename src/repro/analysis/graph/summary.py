"""Per-module summaries: the JSON-serializable slice the project graph needs.

A summary distills one parsed file into plain dicts/lists/strings so it
can round-trip through the on-disk cache: import targets and aliases,
per-function call chains / exception handlers / self-attribute reads,
per-class ``__init__`` attributes, annotations and class constants, and
the within-function gate→sink dominance verdicts (computed here, while
the AST and its :class:`~repro.analysis.graph.cfg.ControlFlowGraph` are
in hand, so cached passes never re-parse).

Everything positional carries ``line``/``col``/``source`` so project
rules can anchor findings without re-reading the file.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.analysis.compat import TRY_STATEMENTS, flatten_statements
from repro.analysis.config import AnalysisConfig
from repro.analysis.graph.cfg import CallSite, ControlFlowGraph
from repro.analysis.rules.base import ImportMap
from repro.analysis.source import ModuleSource

#: Bump when the summary layout changes; part of the cache fingerprint.
SUMMARY_SCHEMA = 1

#: Chain segment markers for links that are not plain attribute access.
CALL_MARK = "()"
INDEX_MARK = "[]"

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def expr_chain(node: ast.expr) -> Optional[List[str]]:
    """Access chain of ``node`` with call/index markers, or ``None``.

    ``self.lanes[i].guard.evaluate`` → ``["self", "lanes", "[]",
    "guard", "evaluate"]``; ``store().save`` → ``["store", "()",
    "save"]``.  Chains not rooted in a bare name (literals, comprehension
    results) yield ``None``.
    """
    parts: List[str] = []
    current: ast.expr = node
    while True:
        if isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Subscript):
            parts.append(INDEX_MARK)
            current = current.value
        elif isinstance(current, ast.Call):
            parts.append(CALL_MARK)
            current = current.func
        elif isinstance(current, ast.Name):
            parts.append(current.id)
            parts.reverse()
            return parts
        else:
            return None


def _unparse(node: Optional[ast.expr]) -> Optional[str]:
    if node is None:
        return None
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed synthetic nodes
        return None


def _self_reads(fn: ast.AST) -> List[str]:
    """Names of every ``self.X`` access anywhere under ``fn``."""
    reads = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            reads.add(node.attr)
    return sorted(reads)


def _identifier_strings(fn: ast.AST) -> List[str]:
    """Identifier-shaped string literals under ``fn`` (payload keys)."""
    strings = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value.isidentifier():
                strings.add(node.value)
    return sorted(strings)


def _handler_types(handler: ast.ExceptHandler) -> Tuple[bool, List[str]]:
    """(bare?, chain-joined type names) for one ``except`` clause."""
    if handler.type is None:
        return True, []
    exprs: List[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        exprs = list(handler.type.elts)
    else:
        exprs = [handler.type]
    names: List[str] = []
    for expr in exprs:
        chain = expr_chain(expr)
        if chain:
            names.append(".".join(chain))
    return False, names


def _frame_calls(stmts: List[ast.stmt]) -> List[List[str]]:
    """Call chains in ``stmts`` and nested blocks, this frame only."""
    chains: List[List[str]] = []
    for stmt in flatten_statements(stmts):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for child in ast.iter_child_nodes(stmt):
            if not isinstance(child, ast.expr):
                continue
            for node in ast.walk(child):
                if isinstance(node, ast.Call):
                    chain = expr_chain(node.func)
                    if chain:
                        chains.append(chain)
    return chains


def _handlers(
    fn: FunctionNode, module: ModuleSource
) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for stmt in flatten_statements(fn.body):
        if not isinstance(stmt, TRY_STATEMENTS):
            continue
        for handler in stmt.handlers:  # type: ignore[attr-defined]
            bare, types = _handler_types(handler)
            has_raise = any(
                isinstance(inner, ast.Raise)
                for inner in flatten_statements(handler.body)
            )
            out.append(
                {
                    "bare": bare,
                    "types": types,
                    "line": handler.lineno,
                    "col": handler.col_offset,
                    "source": module.line_text(handler.lineno),
                    "has_raise": has_raise,
                    "chains": _frame_calls(handler.body),
                }
            )
    return out


def _function_summary(
    fn: FunctionNode,
    cls: Optional[str],
    module: ModuleSource,
    config: AnalysisConfig,
) -> Dict[str, Any]:
    cfg = ControlFlowGraph.build(fn)
    calls: List[Dict[str, Any]] = []
    gate_sites: List[CallSite] = []
    sinks: List[Tuple[Dict[str, Any], CallSite]] = []
    guard_call = False
    for call in cfg.calls():
        chain = expr_chain(call.func)
        if not chain:
            continue
        site = cfg.call_site(call)
        entry = {
            "chain": chain,
            "line": call.lineno,
            "col": call.col_offset,
            "source": module.line_text(call.lineno),
        }
        calls.append(entry)
        if site is None:  # pragma: no cover - every cfg call has a site
            continue
        if any(seg in config.guard_call_names for seg in chain):
            guard_call = True
            gate_sites.append(site)
        if chain[-1] in config.dac_sink_attrs:
            sinks.append((entry, site))
    sink_calls: List[Dict[str, Any]] = []
    for entry, site in sinks:
        dominated = any(cfg.dominates(gate, site) for gate in gate_sites)
        sink_calls.append(
            {
                "attr": entry["chain"][-1],
                "line": entry["line"],
                "col": entry["col"],
                "source": entry["source"],
                "dominated": dominated,
            }
        )
    params: Dict[str, Optional[str]] = {}
    arg_nodes = (
        list(fn.args.posonlyargs)
        + list(fn.args.args)
        + list(fn.args.kwonlyargs)
    )
    for arg in arg_nodes:
        params[arg.arg] = _unparse(arg.annotation)
    return {
        "cls": cls,
        "line": fn.lineno,
        "params": params,
        "returns": _unparse(fn.returns),
        "calls": calls,
        "reads": _self_reads(fn),
        "strings": _identifier_strings(fn),
        "handlers": _handlers(fn, module),
        "guard_call": guard_call,
        "sink_calls": sink_calls,
    }


def _is_derived(value: Optional[ast.expr], params: List[str]) -> bool:
    """Whether an ``__init__`` assignment derives from config/other state.

    Attributes copied or computed from constructor parameters (or other
    ``self`` attributes) are configuration, not mutable runtime state —
    the lifecycle rule does not require them in ``snapshot``/``reset``.
    Literal initializers (counters, empty buffers, ``None`` slots) are
    the mutable state the rule tracks.
    """
    if value is None:
        return True
    for node in ast.walk(value):
        if isinstance(node, ast.Name) and node.id in params:
            return True
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return True
    return False


def _constant_text(value: Optional[ast.expr]) -> Optional[str]:
    """Canonical text of a literal class constant (``None`` if dynamic)."""
    if value is None:
        return None
    try:
        return repr(ast.literal_eval(value))
    except (ValueError, SyntaxError):
        return None


def _init_attrs(
    init: FunctionNode, module: ModuleSource
) -> Tuple[List[Dict[str, Any]], Dict[str, str]]:
    params = [a.arg for a in init.args.args if a.arg != "self"]
    params += [a.arg for a in init.args.posonlyargs]
    params += [a.arg for a in init.args.kwonlyargs]
    param_types = {
        a.arg: _unparse(a.annotation)
        for a in init.args.args + init.args.kwonlyargs
        if a.annotation is not None
    }
    attrs: List[Dict[str, Any]] = []
    attr_types: Dict[str, str] = {}
    seen = set()

    def record(target: ast.expr, value: Optional[ast.expr], ann: Optional[ast.expr]) -> None:
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return
        name = target.attr
        if name not in seen:
            seen.add(name)
            attrs.append(
                {
                    "name": name,
                    "line": target.lineno,
                    "col": target.col_offset,
                    "source": module.line_text(target.lineno),
                    "derived": _is_derived(value, params),
                }
            )
        if name not in attr_types:
            ann_text = _unparse(ann)
            if ann_text:
                attr_types[name] = ann_text
            elif isinstance(value, ast.Call):
                chain = expr_chain(value.func)
                if chain and INDEX_MARK not in chain and CALL_MARK not in chain:
                    attr_types[name] = ".".join(chain)
            elif isinstance(value, ast.Name) and value.id in param_types:
                ann_text = param_types[value.id]
                if ann_text:
                    attr_types[name] = ann_text

    for stmt in flatten_statements(init.body):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                record(target, stmt.value, None)
        elif isinstance(stmt, ast.AnnAssign):
            record(stmt.target, stmt.value, stmt.annotation)
        elif isinstance(stmt, ast.AugAssign):
            record(stmt.target, stmt.value, None)
    return attrs, attr_types


def _class_summary(
    node: ast.ClassDef, module: ModuleSource, config: AnalysisConfig
) -> Dict[str, Any]:
    bases: List[str] = []
    for base in node.bases:
        chain = expr_chain(base)
        if chain:
            bases.append(".".join(chain))
    methods: Dict[str, int] = {}
    constants: Dict[str, str] = {}
    init: Optional[FunctionNode] = None
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[item.name] = item.lineno
            if item.name == "__init__":
                init = item
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id.isupper():
                    text = _constant_text(item.value)
                    if text is not None:
                        constants[target.id] = text
        elif isinstance(item, ast.AnnAssign):
            if isinstance(item.target, ast.Name) and item.target.id.isupper():
                text = _constant_text(item.value)
                if text is not None:
                    constants[item.target.id] = text
    attrs: List[Dict[str, Any]] = []
    attr_types: Dict[str, str] = {}
    if init is not None:
        attrs, attr_types = _init_attrs(init, module)
    return {
        "line": node.lineno,
        "col": node.col_offset,
        "source": module.line_text(node.lineno),
        "bases": bases,
        "methods": methods,
        "constants": constants,
        "attrs": attrs,
        "attr_types": attr_types,
    }


def _collect_imports(module: ModuleSource) -> List[str]:
    """Dotted module targets this file imports (for the reverse-dep map).

    ``from pkg import name`` contributes both ``pkg`` and ``pkg.name``
    (the engine cannot tell a submodule from an attribute without
    importing, so the project graph matches against known modules).
    """
    package = module.module.rsplit(".", 1)[0] if "." in module.module else ""
    targets = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                targets.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                prefix_parts = package.split(".") if package else []
                cut = node.level - 1
                if cut:
                    prefix_parts = (
                        prefix_parts[:-cut] if cut <= len(prefix_parts) else []
                    )
                prefix = ".".join(prefix_parts)
                base = f"{prefix}.{base}".strip(".") if base else prefix
            if base:
                targets.add(base)
            for alias in node.names:
                if alias.name != "*" and base:
                    targets.add(f"{base}.{alias.name}")
    return sorted(targets)


def build_summary(module: ModuleSource, config: AnalysisConfig) -> Dict[str, Any]:
    """Distill ``module`` into the cacheable whole-program slice."""
    imap = ImportMap(module)
    functions: Dict[str, Any] = {}
    classes: Dict[str, Any] = {}
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = _function_summary(node, None, module, config)
        elif isinstance(node, ast.ClassDef):
            classes[node.name] = _class_summary(node, module, config)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{node.name}.{item.name}"
                    functions[qualname] = _function_summary(
                        item, node.name, module, config
                    )
    return {
        "schema": SUMMARY_SCHEMA,
        "module": module.module,
        "path": PurePath(module.display_path).as_posix(),
        "imports": _collect_imports(module),
        "aliases": dict(sorted(imap.aliases.items())),
        "suppressions": {
            str(line): sorted(rules)
            for line, rules in sorted(module.suppressions.items())
        },
        "functions": functions,
        "classes": classes,
    }

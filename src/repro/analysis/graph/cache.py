"""Content-keyed persistence of per-file summaries and local findings.

One JSON file per analyzed source file, named by a hash of its display
path.  An entry is valid only when both the source sha **and** the
config/schema fingerprint match — editing the file, changing the
analysis configuration, or bumping the summary schema all invalidate it.

Only *local* (single-file) rule findings are cached; project-rule
findings depend on other files and are recomputed from summaries each
run, which is the cheap part.  Cache I/O errors are swallowed: a broken
or unwritable cache degrades to a cold pass, never a failed one.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.graph.summary import SUMMARY_SCHEMA


def config_fingerprint(config: AnalysisConfig) -> str:
    """Hash of everything that invalidates cached analysis output."""
    payload = f"{config!r}|schema={SUMMARY_SCHEMA}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def content_sha(text: str) -> str:
    """Identity of one source file's content."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class CacheEntry:
    """One file's cached analysis output."""

    summary: Dict[str, Any]
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)


class SummaryCache:
    """Directory of per-file cache entries (``root=None`` disables)."""

    def __init__(self, root: Optional[Path]) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def _entry_path(self, display_path: str) -> Path:
        assert self.root is not None
        digest = hashlib.sha256(display_path.encode("utf-8")).hexdigest()[:24]
        return self.root / f"{digest}.json"

    def load(
        self, display_path: str, sha: str, fingerprint: str
    ) -> Optional[CacheEntry]:
        """Cached entry for ``display_path`` if content+config match."""
        if self.root is None:
            return None
        try:
            raw = self._entry_path(display_path).read_text(encoding="utf-8")
            data = json.loads(raw)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if data.get("sha") != sha or data.get("fingerprint") != fingerprint:
            self.misses += 1
            return None
        try:
            entry = CacheEntry(
                summary=data["summary"],
                findings=[Finding.from_dict(f) for f in data["findings"]],
                suppressed=[
                    Finding.from_dict(f) for f in data["suppressed"]
                ],
            )
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(
        self,
        display_path: str,
        sha: str,
        fingerprint: str,
        entry: CacheEntry,
    ) -> None:
        """Persist ``entry`` atomically; failures degrade to no cache."""
        if self.root is None:
            return
        payload = {
            "sha": sha,
            "fingerprint": fingerprint,
            "summary": entry.summary,
            "findings": [f.to_dict() for f in entry.findings],
            "suppressed": [f.to_dict() for f in entry.suppressed],
        }
        target = self._entry_path(display_path)
        tmp = target.with_suffix(f".tmp{os.getpid()}")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, target)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

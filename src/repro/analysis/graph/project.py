"""Project graph: all module summaries stitched into one symbol space.

Resolution here is deliberately *best-effort and conservative*: a call
chain resolves to a callee only when the static evidence (import
aliases, ``self`` attribute types from ``__init__``, parameter/return
annotations, container element types) pins it down.  Unresolvable chains
contribute no call edges, so interprocedural rules err toward silence on
dynamic code rather than noise — the same bias the CFG layer uses.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.graph.summary import CALL_MARK, INDEX_MARK

#: Wrapper annotations peeled before class lookup.
_WRAPPERS = (
    "Optional[",
    "typing.Optional[",
    "Final[",
    "typing.Final[",
    "ClassVar[",
    "typing.ClassVar[",
)

#: Generic containers whose element type ``[]`` navigation extracts.
_VALUE_CONTAINERS = {
    "Dict",
    "Mapping",
    "MutableMapping",
    "DefaultDict",
    "OrderedDict",
}
_ITEM_CONTAINERS = {
    "List",
    "Sequence",
    "MutableSequence",
    "Set",
    "FrozenSet",
    "Iterable",
    "Iterator",
    "Deque",
    "Tuple",
}


def strip_wrappers(text: str) -> str:
    """Peel quotes and Optional/Final/ClassVar wrappers off ``text``."""
    t = text.strip().strip("\"'").strip()
    changed = True
    while changed:
        changed = False
        for prefix in _WRAPPERS:
            if t.startswith(prefix) and t.endswith("]"):
                t = t[len(prefix) : -1].strip().strip("\"'").strip()
                changed = True
                break
    return t


def _split_top(text: str) -> List[str]:
    """Split on commas at bracket depth zero."""
    parts: List[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current)
    return parts


def element_type(text: str) -> Optional[str]:
    """Element annotation a ``[]`` subscript navigates into, if known.

    ``Dict[int, Lane]`` → ``Lane`` (the value side); ``List[Lane]`` →
    ``Lane``.  Anything else — plain classes, unions, unparameterized
    containers — is ``None``.
    """
    t = strip_wrappers(text)
    if "[" not in t or not t.endswith("]"):
        return None
    idx = t.index("[")
    outer = t[:idx].split(".")[-1]
    parts = _split_top(t[idx + 1 : -1])
    if not parts:
        return None
    if outer in _VALUE_CONTAINERS:
        return parts[-1].strip()
    if outer in _ITEM_CONTAINERS:
        return parts[0].strip()
    return None


#: Resolution states: ("class", qualified) treats class and instance the
#: same; ("text", annotation, module) defers parsing until a navigation
#: step needs it; ("module", dotted) walks packages; ("func", key) is a
#: resolved callable.
_State = Tuple[str, str, str]


class ProjectGraph:
    """Symbol table + call/import resolution over all module summaries."""

    def __init__(self, summaries: Dict[str, Dict[str, Any]]) -> None:
        self.summaries: Dict[str, Dict[str, Any]] = dict(summaries)
        self.modules: Set[str] = set(self.summaries)
        self.classes: Dict[str, Dict[str, Any]] = {}
        self.class_module: Dict[str, str] = {}
        self.simple_classes: Dict[str, List[str]] = {}
        self.functions: Dict[str, Dict[str, Any]] = {}
        self.function_module: Dict[str, str] = {}
        for mod in sorted(self.summaries):
            summ = self.summaries[mod]
            for cname in summ["classes"]:
                qualified = f"{mod}.{cname}"
                self.classes[qualified] = summ["classes"][cname]
                self.class_module[qualified] = mod
                self.simple_classes.setdefault(cname, []).append(qualified)
            for fname in summ["functions"]:
                key = f"{mod}.{fname}"
                self.functions[key] = summ["functions"][fname]
                self.function_module[key] = mod
        self._ancestor_cache: Dict[str, List[str]] = {}
        self._reverse_imports: Optional[Dict[str, Set[str]]] = None

    # -- basic lookups ----------------------------------------------------------

    def aliases(self, module: str) -> Dict[str, str]:
        summ = self.summaries.get(module)
        return summ["aliases"] if summ else {}

    def path_for(self, module: str) -> Optional[str]:
        summ = self.summaries.get(module)
        return summ["path"] if summ else None

    def suppressions_for(self, module: str) -> Dict[int, Set[str]]:
        summ = self.summaries.get(module)
        if not summ:
            return {}
        return {
            int(line): set(rules)
            for line, rules in summ["suppressions"].items()
        }

    # -- class hierarchy --------------------------------------------------------

    def resolve_type(self, module: str, text: Optional[str]) -> Optional[str]:
        """Qualified class named by annotation ``text`` in ``module``."""
        if not text:
            return None
        t = strip_wrappers(text)
        if not t or "[" in t:
            return None
        return self._lookup_class(module, t)

    def _lookup_class(self, module: str, name: str) -> Optional[str]:
        aliases = self.aliases(module)
        if "." in name:
            root, rest = name.split(".", 1)
            target = aliases.get(root)
            candidate = f"{target}.{rest}" if target else name
        else:
            if f"{module}.{name}" in self.classes:
                return f"{module}.{name}"
            candidate = aliases.get(name, "")
            if not candidate:
                return None
        return candidate if candidate in self.classes else None

    def ancestors(self, qualified: str) -> List[str]:
        """``qualified`` followed by its statically known bases, BFS."""
        cached = self._ancestor_cache.get(qualified)
        if cached is not None:
            return cached
        out: List[str] = []
        seen: Set[str] = set()
        queue = [qualified]
        while queue:
            q = queue.pop(0)
            if q in seen or q not in self.classes:
                continue
            seen.add(q)
            out.append(q)
            mod = self.class_module[q]
            for base in self.classes[q]["bases"]:
                resolved = self.resolve_type(mod, base)
                if resolved:
                    queue.append(resolved)
        self._ancestor_cache[qualified] = out
        return out

    def method_key(self, qualified: str, name: str) -> Optional[str]:
        """Function key implementing ``name`` on ``qualified`` (via MRO)."""
        for q in self.ancestors(qualified):
            mod = self.class_module[q]
            cls = q[len(mod) + 1 :]
            key = f"{mod}.{cls}.{name}"
            if key in self.functions:
                return key
        return None

    def all_method_names(self, qualified: str) -> Set[str]:
        """Every method name on ``qualified`` including inherited ones."""
        names: Set[str] = set()
        for q in self.ancestors(qualified):
            names.update(self.classes[q]["methods"])
        return names

    def attr_type_text(self, qualified: str, attr: str) -> Optional[str]:
        """Annotation/constructor text of ``self.attr`` (via MRO)."""
        for q in self.ancestors(qualified):
            text = self.classes[q]["attr_types"].get(attr)
            if text:
                return text
        return None

    # -- call resolution --------------------------------------------------------

    def resolve_call(
        self, module: str, fn_qualname: str, chain: Sequence[str]
    ) -> Optional[str]:
        """Function key a call chain invokes, when statically resolvable.

        ``fn_qualname`` is the caller (``"func"`` or ``"Cls.method"``) —
        it supplies ``self`` and parameter types.  Returns ``None`` for
        anything the summaries cannot pin down.
        """
        fn = self.functions.get(f"{module}.{fn_qualname}")
        if fn is None or not chain:
            return None
        state = self._initial_state(module, fn, chain[0])
        if state is None:
            return None
        for seg in chain[1:]:
            state = self._advance(state, seg)
            if state is None:
                return None
        return self._apply_call(state)

    def _initial_state(
        self, module: str, fn: Dict[str, Any], head: str
    ) -> Optional[_State]:
        if head == "self" and fn.get("cls"):
            return ("class", f"{module}.{fn['cls']}", module)
        params = fn.get("params", {})
        if head in params:
            ann = params[head]
            return ("text", ann, module) if ann else None
        if f"{module}.{head}" in self.classes:
            return ("class", f"{module}.{head}", module)
        if f"{module}.{head}" in self.functions:
            return ("func", f"{module}.{head}", module)
        target = self.aliases(module).get(head)
        if target is None:
            return None
        if target in self.classes:
            return ("class", target, self.class_module[target])
        if target in self.functions:
            return ("func", target, self.function_module[target])
        return ("module", target, module)

    def _advance(self, state: _State, seg: str) -> Optional[_State]:
        kind, ref, mod = state
        if seg == CALL_MARK:
            if kind == "class":
                return state  # constructing → an instance of the class
            if kind == "func":
                returns = self.functions[ref].get("returns")
                return ("text", returns, mod) if returns else None
            return None
        if seg == INDEX_MARK:
            if kind == "text":
                elem = element_type(ref)
                return ("text", elem, mod) if elem else None
            return None
        # plain attribute navigation
        if kind == "text":
            resolved = self.resolve_type(mod, ref)
            if resolved is None:
                return None
            state = ("class", resolved, self.class_module[resolved])
            kind, ref, mod = state
        if kind == "class":
            method = self.method_key(ref, seg)
            if method:
                return ("func", method, self.function_module[method])
            attr_text = self.attr_type_text(ref, seg)
            if attr_text:
                return ("text", attr_text, self.class_module[ref])
            return None
        if kind == "module":
            dotted = f"{ref}.{seg}"
            if dotted in self.classes:
                return ("class", dotted, self.class_module[dotted])
            if dotted in self.functions:
                return ("func", dotted, self.function_module[dotted])
            if dotted in self.modules:
                return ("module", dotted, mod)
            return None
        return None

    def _apply_call(self, state: _State) -> Optional[str]:
        kind, ref, mod = state
        if kind == "func":
            return ref
        if kind == "text":
            resolved = self.resolve_type(mod, ref)
            if resolved is None:
                return None
            state = ("class", resolved, self.class_module[resolved])
            kind, ref, mod = state
        if kind == "class":
            return self.method_key(ref, "__call__") or self.method_key(
                ref, "__init__"
            )
        return None

    # -- reverse imports (--diff scope) -----------------------------------------

    def _reverse_import_map(self) -> Dict[str, Set[str]]:
        if self._reverse_imports is None:
            reverse: Dict[str, Set[str]] = {m: set() for m in self.modules}
            for mod in self.modules:
                for target in self.summaries[mod].get("imports", []):
                    if target in self.modules and target != mod:
                        reverse[target].add(mod)
            self._reverse_imports = reverse
        return self._reverse_imports

    def importers_of(self, seeds: Set[str]) -> Set[str]:
        """``seeds`` plus every module transitively importing one of them."""
        reverse = self._reverse_import_map()
        out = {m for m in seeds if m in self.modules}
        queue = list(out)
        while queue:
            mod = queue.pop()
            for importer in reverse.get(mod, ()):
                if importer not in out:
                    out.add(importer)
                    queue.append(importer)
        return out

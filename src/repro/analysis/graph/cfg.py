"""Statement-granularity control-flow graphs with dominators.

Built per function while the AST is in hand; the only consumer question
is *"is every DAC-sink call dominated by a detector-gate call?"*, so the
graph is deliberately coarse: one node per basic block of statements, a
call is located by its innermost enclosing statement, and exception
edges are conservative (every statement in a ``try`` body may jump to
every handler).  Conservative extra edges can only make dominance fail —
the rule then reports a finding — never silently pass.

Code after a terminating statement (return/raise/break/continue)
continues in a fresh block with no predecessors; such blocks keep the
full dominator set, so dead-code sinks are vacuously dominated and never
reported.

The graph never leaves the process: summaries persist only the verdicts
derived from it (see :mod:`repro.analysis.graph.summary`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.compat import TRY_STATEMENTS, statement_blocks

#: Position of a call: (block index, statement index, line, col) —
#: totally ordered within one block for the gate-before-sink check.
CallSite = Tuple[int, int, int, int]


@dataclass
class Block:
    """One basic block: statements that execute strictly in sequence."""

    idx: int
    stmts: List[ast.stmt] = field(default_factory=list)
    succs: Set[int] = field(default_factory=set)


class ControlFlowGraph:
    """CFG over one function body, with dominator sets on demand."""

    def __init__(self) -> None:
        self.blocks: List[Block] = []
        self.entry = 0
        self._call_sites: Dict[int, CallSite] = {}
        self._ordered_calls: List[ast.Call] = []
        self._doms: Optional[List[Set[int]]] = None

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(cls, fn: ast.AST) -> "ControlFlowGraph":
        """Graph of ``fn``'s body (a FunctionDef/AsyncFunctionDef)."""
        cfg = cls()
        entry = cfg._new_block()
        body: Sequence[ast.stmt] = getattr(fn, "body", [])
        cfg._build_body(list(body), entry, [], [])
        cfg._index_calls()
        return cfg

    def _new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def _edge(self, src: Block, dst: Block) -> None:
        src.succs.add(dst.idx)

    def _build_body(
        self,
        stmts: List[ast.stmt],
        entry: Block,
        loops: List[Tuple[Block, Block]],
        handlers: List[Block],
    ) -> Block:
        """Wire ``stmts`` starting in ``entry``; return the fall-out block.

        ``loops`` holds ``(header, exit)`` pairs for break/continue
        targets; ``handlers`` are the exception-handler entry blocks any
        statement in scope may jump to.
        """
        current = entry
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                current = self._build_if(stmt, current, loops, handlers)
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                current = self._build_loop(stmt, current, loops, handlers)
            elif isinstance(stmt, TRY_STATEMENTS):
                current = self._build_try(stmt, current, loops, handlers)
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                self._append(current, stmt, handlers)
                current = self._new_block()  # unreachable continuation
            elif isinstance(stmt, (ast.Break, ast.Continue)):
                self._append(current, stmt, handlers)
                if loops:
                    header, exit_block = loops[-1]
                    target = exit_block if isinstance(stmt, ast.Break) else header
                    self._edge(current, target)
                current = self._new_block()  # unreachable continuation
            elif any(True for _ in statement_blocks(stmt)):
                # Generic compound fallback (with/match): branch into each
                # nested block list and join afterwards.
                current = self._build_generic(stmt, current, loops, handlers)
            else:
                self._append(current, stmt, handlers)
        return current

    def _append(self, block: Block, stmt: ast.stmt, handlers: List[Block]) -> None:
        block.stmts.append(stmt)
        for handler in handlers:
            self._edge(block, handler)

    def _build_if(
        self,
        stmt: ast.If,
        current: Block,
        loops: List[Tuple[Block, Block]],
        handlers: List[Block],
    ) -> Block:
        # The If statement lives in the condition block, so calls in its
        # test dominate both branches.
        self._append(current, stmt, handlers)
        then_entry = self._new_block()
        self._edge(current, then_entry)
        then_end = self._build_body(stmt.body, then_entry, loops, handlers)
        if stmt.orelse:
            else_entry = self._new_block()
            self._edge(current, else_entry)
            else_end = self._build_body(stmt.orelse, else_entry, loops, handlers)
        else:
            else_end = current
        join = self._new_block()
        self._edge(then_end, join)
        self._edge(else_end, join)
        return join

    def _build_loop(
        self,
        stmt: ast.stmt,
        current: Block,
        loops: List[Tuple[Block, Block]],
        handlers: List[Block],
    ) -> Block:
        header = self._new_block()
        self._edge(current, header)
        self._append(header, stmt, handlers)
        exit_block = self._new_block()
        self._edge(header, exit_block)
        body_entry = self._new_block()
        self._edge(header, body_entry)
        body: List[ast.stmt] = getattr(stmt, "body", [])
        body_end = self._build_body(
            body, body_entry, loops + [(header, exit_block)], handlers
        )
        self._edge(body_end, header)
        orelse: List[ast.stmt] = getattr(stmt, "orelse", [])
        if orelse:
            return self._build_body(orelse, exit_block, loops, handlers)
        return exit_block

    def _build_try(
        self,
        stmt: ast.stmt,
        current: Block,
        loops: List[Tuple[Block, Block]],
        handlers: List[Block],
    ) -> Block:
        handler_list = list(getattr(stmt, "handlers", []))
        handler_blocks = [self._new_block() for _ in handler_list]
        for hb in handler_blocks:
            self._edge(current, hb)
        body_entry = self._new_block()
        self._edge(current, body_entry)
        body_end = self._build_body(
            list(getattr(stmt, "body", [])),
            body_entry,
            loops,
            handlers + handler_blocks,
        )
        orelse: List[ast.stmt] = list(getattr(stmt, "orelse", []))
        if orelse:
            body_end = self._build_body(orelse, body_end, loops, handlers)
        join = self._new_block()
        self._edge(body_end, join)
        for hb, handler in zip(handler_blocks, handler_list):
            h_end = self._build_body(list(handler.body), hb, loops, handlers)
            self._edge(h_end, join)
        finalbody: List[ast.stmt] = list(getattr(stmt, "finalbody", []))
        if finalbody:
            return self._build_body(finalbody, join, loops, handlers)
        return join

    def _build_generic(
        self,
        stmt: ast.stmt,
        current: Block,
        loops: List[Tuple[Block, Block]],
        handlers: List[Block],
    ) -> Block:
        self._append(current, stmt, handlers)
        join = self._new_block()
        branched = False
        for block_stmts in statement_blocks(stmt):
            if not block_stmts:
                continue
            entry = self._new_block()
            self._edge(current, entry)
            end = self._build_body(list(block_stmts), entry, loops, handlers)
            self._edge(end, join)
            branched = True
        if not branched:
            self._edge(current, join)
        return join

    # -- call location ----------------------------------------------------------

    def _index_calls(self) -> None:
        """Map every call expression to its innermost statement's block.

        Only a statement's *own* expressions are walked (conditions,
        call arguments, assignment values) — nested statements map to
        their own blocks, and nested function bodies belong to another
        frame entirely.
        """
        for block in self.blocks:
            for si, stmt in enumerate(block.stmts):
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                for child in ast.iter_child_nodes(stmt):
                    if not isinstance(child, ast.expr):
                        continue
                    for node in ast.walk(child):
                        if isinstance(node, ast.Call):
                            self._call_sites[id(node)] = (
                                block.idx,
                                si,
                                getattr(node, "lineno", 0),
                                getattr(node, "col_offset", 0),
                            )
                            self._ordered_calls.append(node)

    def calls(self) -> List[ast.Call]:
        """Every indexed call, in deterministic block/statement order."""
        return list(self._ordered_calls)

    def call_site(self, call: ast.Call) -> Optional[CallSite]:
        """Location of ``call`` in the graph (None for nested frames)."""
        return self._call_sites.get(id(call))

    # -- dominance --------------------------------------------------------------

    def dominators(self) -> List[Set[int]]:
        """``doms[b]`` = set of blocks dominating block ``b``.

        Iterative data-flow; blocks unreachable from the entry keep the
        full set (vacuously dominated), which errs toward *not*
        reporting on dead code.
        """
        if self._doms is not None:
            return self._doms
        n = len(self.blocks)
        preds: List[Set[int]] = [set() for _ in range(n)]
        for block in self.blocks:
            for succ in block.succs:
                preds[succ].add(block.idx)
        everything = set(range(n))
        doms: List[Set[int]] = [set(everything) for _ in range(n)]
        doms[self.entry] = {self.entry}
        changed = True
        while changed:
            changed = False
            for b in range(n):
                if b == self.entry:
                    continue
                inter = set(everything)
                for p in preds[b]:
                    inter &= doms[p]
                new = {b} | inter
                if new != doms[b]:
                    doms[b] = new
                    changed = True
        self._doms = doms
        return doms

    def dominates(self, gate: CallSite, sink: CallSite) -> bool:
        """Whether the ``gate`` call dominates (strictly precedes) ``sink``."""
        gate_block, gate_stmt, gate_line, gate_col = gate
        sink_block, sink_stmt, sink_line, sink_col = sink
        if gate_block == sink_block:
            return (gate_stmt, gate_line, gate_col) < (
                sink_stmt,
                sink_line,
                sink_col,
            )
        return gate_block in self.dominators()[sink_block]

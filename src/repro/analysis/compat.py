"""AST feature gating across the two CI Python matrices (3.9 and 3.11).

The lint engine must produce *identical* findings on both interpreters,
so every version-dependent ``ast`` feature is isolated here and keyed off
``sys.version_info`` instead of being probed ad hoc at use sites:

- ``match`` statements parse only on 3.10+ (``ast.Match``);
- ``except*`` groups parse only on 3.11+ (``ast.TryStar``).

Analyzed *source* must therefore stick to the 3.9 subset for findings to
be comparable (a file using ``except*`` is a parse error on 3.9), but the
engine itself walks whatever the running interpreter can parse.
"""

from __future__ import annotations

import ast
import sys
from typing import Iterator, List, Tuple, Type

#: ``try`` statement node types known to the running interpreter.
TRY_STATEMENTS: Tuple[Type[ast.stmt], ...]
if sys.version_info >= (3, 11):
    TRY_STATEMENTS = (ast.Try, ast.TryStar)
else:
    TRY_STATEMENTS = (ast.Try,)

#: ``match`` statement node types (empty before 3.10).
MATCH_STATEMENTS: Tuple[Type[ast.stmt], ...]
if sys.version_info >= (3, 10):
    MATCH_STATEMENTS = (ast.Match,)
else:
    MATCH_STATEMENTS = ()


def statement_blocks(node: ast.stmt) -> Iterator[List[ast.stmt]]:
    """Every list of statements directly nested in ``node``.

    Covers the bodies of compound statements (``if``/``for``/``while``/
    ``with``), ``try``/``try*`` handlers and ``finally``, and ``match``
    cases where the interpreter knows them.  Used to flatten a function
    into execution-ordered statements without hard-coding node types that
    only exist on newer interpreters.
    """
    if isinstance(node, (ast.If, ast.For, ast.AsyncFor, ast.While)):
        yield node.body
        yield node.orelse
    elif isinstance(node, (ast.With, ast.AsyncWith)):
        yield node.body
    elif isinstance(node, TRY_STATEMENTS):
        yield node.body  # type: ignore[attr-defined]
        for handler in node.handlers:  # type: ignore[attr-defined]
            yield handler.body
        yield node.orelse  # type: ignore[attr-defined]
        yield node.finalbody  # type: ignore[attr-defined]
    elif MATCH_STATEMENTS and isinstance(node, MATCH_STATEMENTS):
        for case in node.cases:  # type: ignore[attr-defined]
            yield case.body


def flatten_statements(body: List[ast.stmt]) -> Iterator[ast.stmt]:
    """Yield ``body`` and all nested statements in source order.

    Nested function/class definitions are yielded (they are statements)
    but *not* descended into: their bodies execute later, not in this
    frame's control flow.
    """
    for stmt in body:
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for block in statement_blocks(stmt):
            for nested in flatten_statements(block):
                yield nested

"""Domain-invariant static analysis for the repro tree.

This package is a small AST-walking lint engine that encodes invariants
the paper's safety argument depends on but ordinary linters cannot see:

``RPR001``
    Guard bypass and TOCTOU: only the sanctioned pipeline modules may
    reach the DAC sink (``UsbBoard._latch`` and friends) or install guard
    hooks, and a command object must not be mutated between the guard
    check and actuation.
``RPR002``
    Determinism: no wall clocks, unseeded RNG, legacy numpy RNG, raw
    ``os.environ`` access, or lambdas crossing the process pool inside
    the golden-trace-critical packages.
``RPR003``
    Magic safety numbers: thresholds in the safety/detector/dynamics
    modules must be named in ``repro.constants`` or as dataclass
    defaults, never inlined.
``RPR004``
    Pool safety: workers submitted to ``ParallelCampaignRunner`` must be
    picklable by construction (module-level callables).

Run it with ``python -m repro.analysis [--check] [paths...]``; waive a
single line with ``# repro: allow[RPR00x]``; grandfather accepted debt
with ``--baseline-update``.
"""

from __future__ import annotations

from repro.analysis.baseline import load_baseline, partition, save_baseline
from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.engine import (
    PARSE_ERROR_RULE,
    AnalysisEngine,
    AnalysisResult,
)
from repro.analysis.findings import Finding
from repro.analysis.rules import ALL_RULES, RULES_BY_ID, rules_for

__all__ = [
    "ALL_RULES",
    "AnalysisConfig",
    "AnalysisEngine",
    "AnalysisResult",
    "DEFAULT_CONFIG",
    "Finding",
    "PARSE_ERROR_RULE",
    "RULES_BY_ID",
    "load_baseline",
    "partition",
    "rules_for",
    "save_baseline",
]

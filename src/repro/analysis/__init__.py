"""Domain-invariant static analysis for the repro tree.

This package is a small AST-walking lint engine that encodes invariants
the paper's safety argument depends on but ordinary linters cannot see:

``RPR001``
    Guard bypass and TOCTOU: only the sanctioned pipeline modules may
    reach the DAC sink (``UsbBoard._latch`` and friends) or install guard
    hooks, and a command object must not be mutated between the guard
    check and actuation.
``RPR002``
    Determinism: no wall clocks, unseeded RNG, legacy numpy RNG, raw
    ``os.environ`` access, or lambdas crossing the process pool inside
    the golden-trace-critical packages.
``RPR003``
    Magic safety numbers: thresholds in the safety/detector/dynamics
    modules must be named in ``repro.constants`` or as dataclass
    defaults, never inlined.
``RPR004``
    Pool safety: workers submitted to ``ParallelCampaignRunner`` must be
    picklable by construction (module-level callables).

On top of the per-file tier, the whole-program layer
(:mod:`repro.analysis.graph`) stitches every file's summary into a
project graph — symbol table, class hierarchy, call edges, per-function
CFG dominance — still without importing analyzed code, and runs the
interprocedural families:

``RPR005``
    Safety-path dominance: every statically resolvable call path from a
    telemetry/packet ingest entry point to a DAC sink passes the
    detector gate, and sinks inside gate functions sit below the gate
    in the CFG.
``RPR006``
    State-lifecycle completeness: classes exposing snapshot/restore/
    reset cover every mutable ``__init__`` attribute (fleet resume
    bit-identity depends on it).
``RPR007``
    Scalar/batched API parity: each ``Batched*`` class mirrors its
    scalar counterpart's public surface and shared constants.
``RPR008``
    Quarantine discipline: lane-path exceptions re-raise or reach a
    quarantine boundary; integrity errors are never swallowed broadly.

Run it with ``python -m repro.analysis [--check] [paths...]``; waive a
single line with ``# repro: allow[RPR00x]``; grandfather accepted debt
with ``--baseline-update``.  Warm runs reuse per-file summaries cached
under ``.cache/analysis`` (keyed by content sha + config fingerprint);
``--diff`` narrows reporting to changed files and their reverse
importers.
"""

from __future__ import annotations

from repro.analysis.baseline import load_baseline, partition, save_baseline
from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.engine import (
    PARSE_ERROR_RULE,
    AnalysisEngine,
    AnalysisResult,
)
from repro.analysis.findings import Finding
from repro.analysis.graph import (
    ControlFlowGraph,
    ProjectGraph,
    SummaryCache,
    build_summary,
)
from repro.analysis.rules import (
    ALL_PROJECT_RULES,
    ALL_RULES,
    RULES_BY_ID,
    project_rules_for,
    rules_for,
)

__all__ = [
    "ALL_PROJECT_RULES",
    "ALL_RULES",
    "AnalysisConfig",
    "AnalysisEngine",
    "AnalysisResult",
    "ControlFlowGraph",
    "DEFAULT_CONFIG",
    "Finding",
    "PARSE_ERROR_RULE",
    "ProjectGraph",
    "RULES_BY_ID",
    "SummaryCache",
    "build_summary",
    "load_baseline",
    "partition",
    "project_rules_for",
    "rules_for",
    "save_baseline",
]

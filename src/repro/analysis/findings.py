"""The unit of lint output: one :class:`Finding` per violation.

A finding's :attr:`~Finding.fingerprint` deliberately excludes the line
number: it hashes the rule, the module, and the normalized source text of
the offending line, so a checked-in baseline keeps matching when code
above the finding moves it a few lines, yet stops matching the moment the
offending line itself is edited.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Tuple, Union

JsonValue = Union[str, int]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str
    path: str
    module: str
    line: int
    col: int
    message: str
    #: Stripped text of the offending source line (fingerprint input).
    source: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number free)."""
        payload = "|".join((self.rule_id, self.module, self.source))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def sort_key(self) -> Tuple[str, int, int, str, str]:
        """Total order over findings so every report is byte-stable.

        The message participates so two findings on the same line from
        the same rule (e.g. two missing lifecycle methods) still sort
        deterministically.
        """
        return (self.path, self.line, self.col, self.rule_id, self.message)

    @classmethod
    def from_dict(cls, data: Dict[str, JsonValue]) -> "Finding":
        """Rebuild a finding serialized by :meth:`to_dict` (cache I/O)."""
        return cls(
            rule_id=str(data["rule"]),
            path=str(data["path"]),
            module=str(data["module"]),
            line=int(data["line"]),
            col=int(data["col"]),
            message=str(data["message"]),
            source=str(data.get("source", "")),
        )

    def format(self) -> str:
        """``path:line:col: RPRxxx message`` — the human-readable line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, JsonValue]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "source": self.source,
            "fingerprint": self.fingerprint,
        }

"""SARIF 2.1.0 rendering of an analysis run (CI code-scanning upload).

Minimal but valid: one run, one driver, the rule catalog restricted to
rules that actually fired, results carrying the same line-free
fingerprint the baseline uses so code-scanning dedup survives moves.
Output is byte-stable (sorted keys, findings already in sort order).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.findings import Finding
from repro.analysis.rules import RULES_BY_ID

_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: RPR000 has no rule class; synthesized here.
_PARSE_ERROR_SUMMARY = "file does not parse; nothing in it was checked"


def _rule_catalog(findings: List[Finding]) -> List[Dict[str, Any]]:
    used = sorted({f.rule_id for f in findings})
    catalog: List[Dict[str, Any]] = []
    for rule_id in used:
        rule_cls = RULES_BY_ID.get(rule_id)
        summary = (
            rule_cls.summary if rule_cls is not None else _PARSE_ERROR_SUMMARY
        )
        catalog.append(
            {
                "id": rule_id,
                "shortDescription": {"text": summary},
            }
        )
    return catalog


def render_sarif(findings: List[Finding]) -> str:
    """SARIF document for ``findings`` (the run's gating set)."""
    results: List[Dict[str, Any]] = []
    for f in sorted(findings, key=lambda f: f.sort_key):
        results.append(
            {
                "ruleId": f.rule_id,
                "level": "error",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path},
                            "region": {
                                "startLine": f.line,
                                "startColumn": f.col + 1,
                            },
                        }
                    }
                ],
                "partialFingerprints": {"reproAnalysis/v1": f.fingerprint},
            }
        )
    document = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "rules": _rule_catalog(findings),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=1, sort_keys=True)

"""Checked-in baseline of grandfathered findings.

The baseline lets the CI gate fail *only on new findings*: violations
that predate a rule (or are accepted debt) are recorded once with
``--baseline-update`` and matched by fingerprint thereafter.  Matching is
by multiset — two identical offending lines in one module need two
baseline entries, and fixing one of them shrinks the allowance.

The shipped baseline is intentionally empty: every true positive the
rules found in ``src/`` was fixed or inline-waived instead.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.analysis.findings import Finding

#: Version of the baseline file layout.
BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


def load_baseline(path: Union[str, Path]) -> "Counter[str]":
    """Fingerprint multiset from ``path`` (empty when the file is absent)."""
    path = Path(path)
    if not path.exists():
        return Counter()
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(
            f"baseline file {path} is unreadable: {exc}"
        ) from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline file {path} has unsupported layout "
            f"(expected version {BASELINE_VERSION}); regenerate it with "
            "python -m repro.analysis --baseline-update"
        )
    counts: "Counter[str]" = Counter()
    for entry in payload.get("findings", []):
        fingerprint = str(entry["fingerprint"])
        counts[fingerprint] += int(entry.get("count", 1))
    return counts


def save_baseline(path: Union[str, Path], findings: List[Finding]) -> None:
    """Write the current findings as the new baseline (sorted, counted)."""
    grouped: Dict[str, Dict[str, Union[str, int]]] = {}
    for finding in sorted(findings, key=lambda f: f.sort_key):
        entry = grouped.get(finding.fingerprint)
        if entry is None:
            grouped[finding.fingerprint] = {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule_id,
                "module": finding.module,
                "source": finding.source,
                "count": 1,
            }
        else:
            entry["count"] = int(entry["count"]) + 1
    payload = {
        "version": BASELINE_VERSION,
        "findings": sorted(
            grouped.values(),
            key=lambda e: (str(e["rule"]), str(e["module"]), str(e["source"])),
        ),
    }
    Path(path).write_text(json.dumps(payload, indent=1) + "\n")


def partition(
    findings: List[Finding], baseline: "Counter[str]"
) -> Tuple[List[Finding], List[Finding]]:
    """Split ``findings`` into ``(new, baselined)``.

    Each baseline entry absorbs at most ``count`` occurrences of its
    fingerprint; everything beyond the allowance is new.
    """
    remaining = Counter(baseline)
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in sorted(findings, key=lambda f: f.sort_key):
        if remaining[finding.fingerprint] > 0:
            remaining[finding.fingerprint] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered

"""RPR008 — exception-flow quarantine discipline on the lane path.

The fleet's fail-operational contract: one session's fault must never
silently vanish (it must reach a quarantine/retry boundary) and
checkpoint-integrity errors must never be swallowed by a broad handler
(a corrupted snapshot that restores anyway is a paper-grade safety
hole).  Concretely, inside the configured scope every ``except`` that is

- **broad** — bare, ``Exception``, or ``BaseException`` — or
- **integrity-relevant** — catches a configured integrity error or any
  statically known superclass of one

must either re-``raise`` or route the fault through a quarantine sink
(a call whose chain contains a configured sink segment, e.g.
``self._quarantine(...)`` or ``faults.append(...)``).

Handlers whose exception type cannot be resolved statically (class
attributes, computed tuples) are skipped, and the sanctioned
newest-verifiable-checkpoint fallback modules are exempt.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Set

from repro.analysis.config import AnalysisConfig, module_matches
from repro.analysis.findings import Finding
from repro.analysis.rules.base import ProjectRule

if TYPE_CHECKING:
    from repro.analysis.graph.project import ProjectGraph

#: Handler type names that catch everything.
_BROAD = {"Exception", "BaseException"}


class QuarantineRule(ProjectRule):
    rule_id = "RPR008"
    summary = "lane-path exceptions must re-raise or reach quarantine"

    def check_project(
        self, graph: "ProjectGraph", config: AnalysisConfig
    ) -> Iterator[Finding]:
        integrity_catchers = self._integrity_catchers(graph, config)
        for key in sorted(graph.functions):
            module = graph.function_module[key]
            if not module_matches(module, config.quarantine_scope):
                continue
            if module_matches(module, config.integrity_fallback_modules):
                continue
            for handler in graph.functions[key]["handlers"]:
                yield from self._check_handler(
                    graph, config, integrity_catchers, module, key, handler
                )

    def _integrity_catchers(
        self, graph: "ProjectGraph", config: AnalysisConfig
    ) -> Set[str]:
        """Qualified classes that statically catch an integrity error.

        The integrity classes themselves plus every ancestor: catching
        ``FleetError`` catches ``SnapshotIntegrityError`` too.
        """
        catchers: Set[str] = set()
        for name in config.integrity_error_names:
            for qualified in graph.simple_classes.get(name, []):
                catchers.update(graph.ancestors(qualified))
        return catchers

    def _check_handler(
        self,
        graph: "ProjectGraph",
        config: AnalysisConfig,
        integrity_catchers: Set[str],
        module: str,
        fn_key: str,
        handler: Dict[str, Any],
    ) -> Iterator[Finding]:
        broad = handler["bare"]
        integrity: List[str] = []
        for type_name in handler["types"]:
            simple = type_name.rsplit(".", 1)[-1]
            if simple in _BROAD:
                broad = True
                continue
            resolved = graph.resolve_type(module, type_name)
            if resolved is not None:
                if resolved in integrity_catchers:
                    integrity.append(simple)
            elif simple in config.integrity_error_names:
                integrity.append(simple)
        if not broad and not integrity:
            return
        if handler["has_raise"] or self._quarantines(handler, config):
            return
        if integrity:
            caught = "/".join(sorted(set(integrity)))
            detail = f"swallows integrity error '{caught}'"
        else:
            detail = "swallows lane-path exceptions"
        yield self.finding_at(
            graph,
            module,
            handler["line"],
            handler["col"],
            handler["source"],
            f"except clause in {fn_key} {detail} without re-raise "
            "or quarantine",
        )

    @staticmethod
    def _quarantines(handler: Dict[str, Any], config: AnalysisConfig) -> bool:
        for chain in handler["chains"]:
            if any(seg in config.quarantine_sink_names for seg in chain):
                return True
        return False

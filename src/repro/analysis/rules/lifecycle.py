"""RPR006 — state-lifecycle completeness for snapshot/restore/reset.

The bug class behind PR 3's ``DetectorGuard.reset()`` leak, promoted to
an invariant: a class in the lifecycle scope that exposes a snapshot,
restore, or reset surface must account for every *mutable* attribute its
``__init__`` assigns.  Missing one silently breaks fleet resume
bit-identity — a checkpoint round-trip that loses a counter or a latch
is exactly the kind of divergence the paper's detector cannot see.

What counts as mutable state: attributes initialized from literals or
empty containers.  Attributes *derived* from constructor parameters or
other attributes are configuration and are exempt (the summary layer
marks them), as are wiring attributes matching the configured globs
(telemetry handles, board attachments).

"Accounted for" is a mention check, deliberately lenient: the attribute
name appearing as a ``self.X`` access or as an identifier-shaped string
(payload key) anywhere in the method family — snapshot∪restore checked
together, reset checked separately, each only when the class has it.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

from repro.analysis.config import AnalysisConfig, module_matches
from repro.analysis.findings import Finding
from repro.analysis.rules.base import ProjectRule

if TYPE_CHECKING:
    from repro.analysis.graph.project import ProjectGraph


class LifecycleRule(ProjectRule):
    rule_id = "RPR006"
    summary = "snapshot/restore/reset must cover every mutable __init__ attribute"

    def check_project(
        self, graph: "ProjectGraph", config: AnalysisConfig
    ) -> Iterator[Finding]:
        for qualified in sorted(graph.classes):
            module = graph.class_module[qualified]
            if not module_matches(module, config.lifecycle_scope):
                continue
            yield from self._check_class(graph, config, qualified, module)

    def _check_class(
        self,
        graph: "ProjectGraph",
        config: AnalysisConfig,
        qualified: str,
        module: str,
    ) -> Iterator[Finding]:
        snap_keys = self._family(
            graph,
            qualified,
            config.lifecycle_snapshot_methods
            + config.lifecycle_restore_methods,
        )
        reset_keys = self._family(
            graph, qualified, config.lifecycle_reset_methods
        )
        if not snap_keys and not reset_keys:
            return
        for attr in graph.classes[qualified]["attrs"]:
            name = attr["name"]
            if attr["derived"] or name.startswith("__"):
                continue
            if any(
                fnmatchcase(name, glob)
                for glob in config.lifecycle_wiring_attrs
            ):
                continue
            if snap_keys and not self._mentioned(graph, snap_keys, name):
                yield self.finding_at(
                    graph,
                    module,
                    attr["line"],
                    attr["col"],
                    attr["source"],
                    f"mutable attribute '{name}' of {qualified} is not "
                    f"covered by {self._describe(snap_keys)}",
                )
            if reset_keys and not self._mentioned(graph, reset_keys, name):
                yield self.finding_at(
                    graph,
                    module,
                    attr["line"],
                    attr["col"],
                    attr["source"],
                    f"mutable attribute '{name}' of {qualified} is not "
                    f"covered by {self._describe(reset_keys)}",
                )

    @staticmethod
    def _family(
        graph: "ProjectGraph", qualified: str, names: Tuple[str, ...]
    ) -> List[str]:
        keys = []
        for name in names:
            key = graph.method_key(qualified, name)
            if key is not None:
                keys.append(key)
        return keys

    @staticmethod
    def _mentioned(
        graph: "ProjectGraph", fn_keys: List[str], attr: str
    ) -> bool:
        stripped = attr.lstrip("_")
        for key in fn_keys:
            fn = graph.functions[key]
            if attr in fn["reads"]:
                return True
            if attr in fn["strings"] or stripped in fn["strings"]:
                return True
        return False

    @staticmethod
    def _describe(fn_keys: List[str]) -> str:
        names = sorted({key.rsplit(".", 1)[-1] for key in fn_keys})
        return "/".join(f"{n}()" for n in names)

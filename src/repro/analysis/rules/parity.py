"""RPR007 — scalar/batched API-parity drift.

PR 6's batched kernels carry a bit-equality contract with their scalar
counterparts; the contract quietly rots when a scalar class grows a
public method or changes a shared constant and the ``Batched*`` mirror
does not follow.  This rule pins the surface statically:

- every public method of the scalar class must exist on the batched
  class — either under the same name, or under a configured per-lane
  alias (``snapshot`` → ``lane_state``, accessors → a ``lane`` view);
- ALL_CAPS literal constants defined on *both* classes must hold
  identical values.

``Batched*`` classes that subclass their scalar counterpart inherit the
surface and are skipped, as are ones with no scalar counterpart at all
(batch-only kernels).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set

from repro.analysis.config import AnalysisConfig, module_matches
from repro.analysis.findings import Finding
from repro.analysis.rules.base import ProjectRule

if TYPE_CHECKING:
    from repro.analysis.graph.project import ProjectGraph

_PREFIX = "Batched"


class ParityRule(ProjectRule):
    rule_id = "RPR007"
    summary = "Batched* classes must mirror their scalar counterpart's API"

    def check_project(
        self, graph: "ProjectGraph", config: AnalysisConfig
    ) -> Iterator[Finding]:
        pairs = dict(config.parity_pairs)
        aliases: Dict[str, Set[str]] = {}
        for scalar_method, alternative in config.parity_aliases:
            aliases.setdefault(scalar_method, set()).add(alternative)
        for qualified in sorted(graph.classes):
            module = graph.class_module[qualified]
            if not module_matches(module, config.parity_scope):
                continue
            simple = qualified[len(module) + 1 :]
            if not simple.startswith(_PREFIX) or simple == _PREFIX:
                continue
            scalar_simple = pairs.get(simple, simple[len(_PREFIX) :])
            scalar = self._scalar_counterpart(graph, qualified, scalar_simple)
            if scalar is None:
                continue
            yield from self._check_pair(
                graph, config, aliases, qualified, scalar, module
            )

    def _scalar_counterpart(
        self, graph: "ProjectGraph", batched: str, scalar_simple: str
    ) -> Optional[str]:
        candidates = graph.simple_classes.get(scalar_simple)
        if not candidates:
            return None
        scalar = sorted(candidates)[0]
        # Subclassing the scalar inherits the whole surface — nothing to
        # mirror (e.g. a Batched runner extending the scalar runner).
        if scalar in graph.ancestors(batched)[1:]:
            return None
        return scalar

    def _check_pair(
        self,
        graph: "ProjectGraph",
        config: AnalysisConfig,
        aliases: Dict[str, Set[str]],
        batched: str,
        scalar: str,
        module: str,
    ) -> Iterator[Finding]:
        info = graph.classes[batched]
        batched_methods = graph.all_method_names(batched)
        scalar_methods = graph.all_method_names(scalar)
        exempt = set(config.parity_exempt_methods)
        for method in sorted(scalar_methods):
            if method.startswith("_") or method in exempt:
                continue
            if method in batched_methods:
                continue
            alternatives = aliases.get(method, set())
            if alternatives & batched_methods:
                continue
            wanted = "/".join(sorted({method} | alternatives))
            yield self.finding_at(
                graph,
                module,
                info["line"],
                info["col"],
                info["source"],
                f"{batched} lacks a counterpart for scalar method "
                f"'{scalar}.{method}' (expected one of: {wanted})",
            )
        scalar_constants = graph.classes[scalar]["constants"]
        for name in sorted(set(info["constants"]) & set(scalar_constants)):
            if info["constants"][name] != scalar_constants[name]:
                yield self.finding_at(
                    graph,
                    module,
                    info["line"],
                    info["col"],
                    info["source"],
                    f"constant '{name}' drifted between {batched} "
                    f"({info['constants'][name]}) and {scalar} "
                    f"({scalar_constants[name]})",
                )

"""RPR001 — guard bypass and TOCTOU windows on the DAC write path.

The paper's scenario-B attack injects corrupted DAC commands *after* the
software safety checks; the detector closes that gap by being the last
computational component before the motor controllers.  This rule proves
the same discipline at the code level:

1. **Sink confinement** — no module outside the sanctioned set may call
   a DAC sink (``latch``/``_latch``) directly; everything else must go
   through ``UsbBoard.fd_write``, where the guard hook runs.
2. **Hook confinement** — installing or replacing ``guard``/``dac_fault``
   hooks on another object is reserved to the pipeline and the phys-fault
   seam (``self.<attr> = ...`` definition sites are exempt, as is any
   module in the allowlist).  ``setattr`` spelling is caught too.
3. **TOCTOU window** — inside any function, once a value has been passed
   to a guard check (a call through a ``guard`` attribute or variable),
   mutating or rebinding that value afterwards re-opens the
   check-then-act gap and is rejected wherever it appears.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.compat import flatten_statements
from repro.analysis.config import AnalysisConfig, module_matches
from repro.analysis.findings import Finding
from repro.analysis.rules.base import (
    Rule,
    attribute_chain,
    names_in_args,
    root_name,
)
from repro.analysis.source import ModuleSource

#: Method calls that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "pop",
        "clear",
        "update",
        "setdefault",
        "remove",
        "sort",
        "reverse",
        "fill",
    }
)


def _assignment_targets(stmt: ast.stmt) -> List[ast.expr]:
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets)
    if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        return [stmt.target]
    return []


class GuardBypassRule(Rule):
    """DAC sinks reached only through guard-approved paths."""

    rule_id = "RPR001"
    summary = (
        "DAC sink calls, guard-hook installs, and post-guard-check "
        "mutations outside the sanctioned modules"
    )

    def check(
        self, module: ModuleSource, config: AnalysisConfig
    ) -> Iterator[Finding]:
        sink_exempt = module_matches(
            module.module, config.dac_sink_allowed_modules
        )
        hook_exempt = module_matches(
            module.module, config.guard_hook_allowed_modules
        )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                if not sink_exempt:
                    for found in self._check_sink_call(module, node, config):
                        yield found
                if not hook_exempt:
                    for found in self._check_setattr(module, node, config):
                        yield found
            elif not hook_exempt and isinstance(
                node, (ast.Assign, ast.AugAssign, ast.AnnAssign)
            ):
                for found in self._check_hook_assign(module, node, config):
                    yield found

        for found in self._check_toctou(module, config):
            yield found

    # -- 1: sink confinement ------------------------------------------------------

    def _check_sink_call(
        self, module: ModuleSource, call: ast.Call, config: AnalysisConfig
    ) -> Iterator[Finding]:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in config.dac_sink_attrs:
            yield self.finding(
                module,
                call,
                f"direct DAC sink call '.{func.attr}(...)' outside the "
                "guarded write path; route commands through "
                "UsbBoard.fd_write so the detector guard sees them",
            )

    # -- 2: hook confinement ------------------------------------------------------

    def _check_hook_assign(
        self, module: ModuleSource, stmt: ast.stmt, config: AnalysisConfig
    ) -> Iterator[Finding]:
        for target in _assignment_targets(stmt):
            if not isinstance(target, ast.Attribute):
                continue
            if target.attr not in config.guard_hook_attrs:
                continue
            # ``self.guard = ...`` is the owning object's definition
            # site, not a cross-component (re)install.
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                continue
            yield self.finding(
                module,
                stmt,
                f"'{target.attr}' hook installed outside the sanctioned "
                "modules; only repro.core.pipeline (and the phys-fault "
                "seam) may wire or replace actuation-path hooks",
            )

    def _check_setattr(
        self, module: ModuleSource, call: ast.Call, config: AnalysisConfig
    ) -> Iterator[Finding]:
        func = call.func
        if not (isinstance(func, ast.Name) and func.id == "setattr"):
            return
        if len(call.args) < 2:
            return
        name = call.args[1]
        if (
            isinstance(name, ast.Constant)
            and isinstance(name.value, str)
            and name.value in config.guard_hook_attrs
        ):
            yield self.finding(
                module,
                call,
                f"setattr(..., '{name.value}', ...) installs an "
                "actuation-path hook outside the sanctioned modules",
            )

    # -- 3: TOCTOU window ---------------------------------------------------------

    def _guard_checks(
        self, func: ast.AST, config: AnalysisConfig
    ) -> List[Tuple[int, Set[str]]]:
        """``(line, checked names)`` for every guard-check call in ``func``."""
        checks: List[Tuple[int, Set[str]]] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if not chain:
                continue
            if any(part in config.guard_call_names for part in chain):
                names = names_in_args(node)
                if names:
                    checks.append((node.lineno, names))
        return checks

    def _check_toctou(
        self, module: ModuleSource, config: AnalysisConfig
    ) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            checks = self._guard_checks(func, config)
            if not checks:
                continue
            reported: Set[Tuple[int, str]] = set()
            for stmt in flatten_statements(func.body):
                for lineno, name in self._mutations(stmt):
                    for check_line, checked in checks:
                        if lineno <= check_line or name not in checked:
                            continue
                        key = (lineno, name)
                        if key in reported:
                            continue
                        reported.add(key)
                        yield self.finding(
                            module,
                            stmt,
                            f"'{name}' is mutated after it passed the "
                            "guard check (TOCTOU window): the approved "
                            "value no longer matches the executed one",
                        )
                        break

    def _mutations(self, stmt: ast.stmt) -> Iterator[Tuple[int, str]]:
        """``(line, variable)`` pairs this statement mutates or rebinds."""
        for target in _assignment_targets(stmt):
            if isinstance(target, ast.Name):
                yield stmt.lineno, target.id
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                name = root_name(target)
                if name is not None:
                    yield stmt.lineno, name
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        yield stmt.lineno, element.id
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                name = root_name(func.value)
                if name is not None:
                    yield stmt.lineno, name

"""Rule registry for the domain-invariant lint engine.

Two tiers: *local* rules (RPR001–RPR004) see one parsed module at a
time; *project* rules (RPR005–RPR008) run once over the stitched
:class:`~repro.analysis.graph.project.ProjectGraph` after every file has
a summary.
"""

from __future__ import annotations

from typing import Dict, List, Type, Union

from repro.analysis.config import AnalysisConfig
from repro.analysis.rules.base import ProjectRule, Rule
from repro.analysis.rules.constants_lint import MagicNumberRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.guard_bypass import GuardBypassRule
from repro.analysis.rules.lifecycle import LifecycleRule
from repro.analysis.rules.parity import ParityRule
from repro.analysis.rules.pool_safety import PoolSafetyRule
from repro.analysis.rules.quarantine import QuarantineRule
from repro.analysis.rules.safety_path import SafetyPathRule

#: Every per-file rule family, in id order.
ALL_RULES: List[Type[Rule]] = [
    GuardBypassRule,
    DeterminismRule,
    MagicNumberRule,
    PoolSafetyRule,
]

#: Every whole-program rule family, in id order.
ALL_PROJECT_RULES: List[Type[ProjectRule]] = [
    SafetyPathRule,
    LifecycleRule,
    ParityRule,
    QuarantineRule,
]

#: Id -> class lookup across both tiers.
RULES_BY_ID: Dict[str, Union[Type[Rule], Type[ProjectRule]]] = {
    rule.rule_id: rule for rule in ALL_RULES
}
RULES_BY_ID.update({rule.rule_id: rule for rule in ALL_PROJECT_RULES})


def rules_for(config: AnalysisConfig) -> List[Rule]:
    """Instances of the local rules enabled by ``config``, in id order."""
    return [
        rule_cls()
        for rule_cls in ALL_RULES
        if rule_cls.rule_id in config.enabled_rules
    ]


def project_rules_for(config: AnalysisConfig) -> List[ProjectRule]:
    """Instances of the project rules enabled by ``config``, in id order."""
    return [
        rule_cls()
        for rule_cls in ALL_PROJECT_RULES
        if rule_cls.rule_id in config.enabled_rules
    ]


__all__ = [
    "ALL_PROJECT_RULES",
    "ALL_RULES",
    "RULES_BY_ID",
    "ProjectRule",
    "Rule",
    "project_rules_for",
    "rules_for",
    "GuardBypassRule",
    "DeterminismRule",
    "MagicNumberRule",
    "PoolSafetyRule",
    "SafetyPathRule",
    "LifecycleRule",
    "ParityRule",
    "QuarantineRule",
]

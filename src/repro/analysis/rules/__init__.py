"""Rule registry for the domain-invariant lint engine."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.analysis.config import AnalysisConfig
from repro.analysis.rules.base import Rule
from repro.analysis.rules.constants_lint import MagicNumberRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.guard_bypass import GuardBypassRule
from repro.analysis.rules.pool_safety import PoolSafetyRule

#: Every known rule family, in id order.
ALL_RULES: List[Type[Rule]] = [
    GuardBypassRule,
    DeterminismRule,
    MagicNumberRule,
    PoolSafetyRule,
]

#: Id -> class lookup.
RULES_BY_ID: Dict[str, Type[Rule]] = {rule.rule_id: rule for rule in ALL_RULES}


def rules_for(config: AnalysisConfig) -> List[Rule]:
    """Instances of the rules enabled by ``config``, in id order."""
    return [
        rule_cls()
        for rule_cls in ALL_RULES
        if rule_cls.rule_id in config.enabled_rules
    ]


__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "Rule",
    "rules_for",
    "GuardBypassRule",
    "DeterminismRule",
    "MagicNumberRule",
    "PoolSafetyRule",
]

"""RPR002 — determinism of golden-trace-critical packages.

The golden-trace suite pins serial == parallel == resumed bit-identity;
that only holds while every run is a pure function of its configuration
and seed.  Inside the critical packages this rule rejects the ambient
inputs that silently break it:

- wall-clock reads that feed values (``time.time``, ``datetime.now``,
  ...);
- bare monotonic duration probes (``time.perf_counter`` and friends)
  outside the sanctioned timing seam (:mod:`repro.obs.timing`) — duration
  probes are legitimate, but they must go through ``Stopwatch`` /
  ``monotonic_s`` so one grep finds every timing site;
- the legacy global-state RNG APIs (``random.random``,
  ``numpy.random.rand``, ``RandomState``, ...) — explicit generators
  (``numpy.random.default_rng``, seeded ``random.Random``) stay allowed;
- raw ``os.environ`` access outside the :mod:`repro.envcfg` shim;
- lambdas handed to the process-pool layer (they do not pickle, so the
  code silently only works on the serial path).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.config import AnalysisConfig, module_matches
from repro.analysis.findings import Finding
from repro.analysis.rules.base import (
    ImportMap,
    Rule,
    pool_entry_call,
    pool_worker_arg,
)
from repro.analysis.source import ModuleSource

#: Wall-clock reads whose values leak nondeterminism into results.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random attributes that construct explicit, seedable generators.
_NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Monotonic clock reads: fine for durations, but only inside the
#: sanctioned timing seam (``AnalysisConfig.timing_probe_modules``).
_MONOTONIC_CLOCK_CALLS = frozenset(
    {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
    }
)

#: os.environ access spellings (reads and writes both count).
_ENVIRON_NAMES = frozenset({"os.environ", "os.getenv", "os.putenv"})


class DeterminismRule(Rule):
    """No hidden inputs in golden-trace-critical packages."""

    rule_id = "RPR002"
    summary = (
        "wall-clock reads, bare monotonic timing probes, global-state "
        "RNG, raw os.environ access, and pool-crossing lambdas in "
        "golden-trace-critical packages"
    )

    def check(
        self, module: ModuleSource, config: AnalysisConfig
    ) -> Iterator[Finding]:
        if not module_matches(module.module, config.deterministic_packages):
            return
        if module_matches(module.module, config.env_shim_modules):
            return
        imports = ImportMap(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                message = self._call_violation(
                    node, imports, config, module.module
                )
                if message is not None:
                    yield self.finding(module, node, message)
            elif isinstance(node, (ast.Attribute, ast.Name)):
                resolved = imports.resolve(node)
                if resolved in _ENVIRON_NAMES:
                    yield self.finding(
                        module,
                        node,
                        f"raw '{resolved}' access in a golden-trace-"
                        "critical package; read environment knobs through "
                        "repro.envcfg so runs stay a pure function of "
                        "configuration and seed",
                    )

    def _call_violation(
        self,
        call: ast.Call,
        imports: ImportMap,
        config: AnalysisConfig,
        module_name: str,
    ) -> Optional[str]:
        if pool_entry_call(call, config):
            worker = pool_worker_arg(call)
            if isinstance(worker, ast.Lambda):
                return (
                    "lambda submitted to the process pool: it cannot be "
                    "pickled, so this code path silently works only in "
                    "serial mode; use a module-level function"
                )
        resolved = imports.resolve(call.func)
        if resolved is None:
            return None
        if resolved in _WALL_CLOCK_CALLS:
            return (
                f"wall-clock read '{resolved}()' in a golden-trace-"
                "critical package; pass timestamps in explicitly (or use "
                "repro.obs.timing for duration-only probes)"
            )
        if resolved in _MONOTONIC_CLOCK_CALLS and not module_matches(
            module_name, config.timing_probe_modules
        ):
            return (
                f"bare monotonic timing probe '{resolved}()' outside the "
                "sanctioned timing seam; use repro.obs.timing "
                "(Stopwatch / monotonic_s) so every duration probe is "
                "auditable in one place"
            )
        if resolved.startswith("numpy.random."):
            tail = resolved.split(".")[-1]
            if tail not in _NUMPY_RANDOM_ALLOWED:
                return (
                    f"legacy global-state RNG '{resolved}()' is not "
                    "seedable per run; use numpy.random.default_rng(seed) "
                    "and thread the generator through"
                )
        if resolved.startswith("random."):
            tail = resolved.split(".")[-1]
            if tail == "Random" and call.args:
                return None  # seeded instance: deterministic
            return (
                f"global-state RNG '{resolved}()' in a golden-trace-"
                "critical package; construct a seeded random.Random or "
                "numpy Generator instead"
            )
        return None

"""Rule protocol and the shared AST plumbing every rule family uses."""

from __future__ import annotations

import abc
import ast
from typing import TYPE_CHECKING, ClassVar, Dict, Iterator, List, Optional, Set

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.source import ModuleSource

if TYPE_CHECKING:  # imported lazily to avoid a base→graph→base cycle
    from repro.analysis.graph.project import ProjectGraph


class Rule(abc.ABC):
    """One rule family (RPR001..RPR004)."""

    rule_id: ClassVar[str]
    summary: ClassVar[str]

    @abc.abstractmethod
    def check(
        self, module: ModuleSource, config: AnalysisConfig
    ) -> Iterator[Finding]:
        """Yield every violation of this rule in ``module``."""

    def finding(
        self, module: ModuleSource, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=self.rule_id,
            path=module.display_path,
            module=module.module,
            line=lineno,
            col=col,
            message=message,
            source=module.line_text(lineno),
        )


class ProjectRule(abc.ABC):
    """One whole-program rule family (RPR005..RPR008).

    Project rules run after every file has a summary; they see the
    stitched :class:`~repro.analysis.graph.project.ProjectGraph` instead
    of a single module, and anchor findings with the line/col/source
    text embedded in the summaries (so cached passes need no re-read).
    """

    rule_id: ClassVar[str]
    summary: ClassVar[str]

    @abc.abstractmethod
    def check_project(
        self, graph: "ProjectGraph", config: AnalysisConfig
    ) -> Iterator[Finding]:
        """Yield every violation of this rule across the project."""

    def finding_at(
        self,
        graph: "ProjectGraph",
        module: str,
        line: int,
        col: int,
        source: str,
        message: str,
    ) -> Finding:
        """Build a finding anchored at a summary-recorded location."""
        return Finding(
            rule_id=self.rule_id,
            path=graph.path_for(module) or module,
            module=module,
            line=line,
            col=col,
            message=message,
            source=source,
        )


# ---------------------------------------------------------------------------
# Name and attribute-chain helpers
# ---------------------------------------------------------------------------


def attribute_chain(node: ast.expr) -> Optional[List[str]]:
    """``["np", "random", "rand"]`` for ``np.random.rand``; ``None`` when
    the chain bottoms out in anything but a bare name."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        parts.reverse()
        return parts
    return None


def root_name(node: ast.expr) -> Optional[str]:
    """Leftmost bare name of an attribute/subscript chain, if any."""
    current: ast.expr = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


class ImportMap:
    """Local alias -> fully dotted path, from a module's import statements.

    ``import numpy as np`` maps ``np -> numpy``; ``from datetime import
    datetime`` maps ``datetime -> datetime.datetime``; function-level
    imports count the same as top-level ones (the engine never executes
    anything, it only needs name provenance).
    """

    def __init__(self, module: ModuleSource) -> None:
        self.aliases: Dict[str, str] = {}
        package = module.module.rsplit(".", 1)[0] if "." in module.module else ""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    prefix_parts = package.split(".") if package else []
                    cut = node.level - 1
                    if cut:
                        prefix_parts = prefix_parts[:-cut] if cut <= len(prefix_parts) else []
                    prefix = ".".join(prefix_parts)
                    base = f"{prefix}.{base}".strip(".") if base else prefix
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{base}.{alias.name}".strip(".")

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Fully qualified dotted name of ``node``, or ``None``.

        ``np.random.rand`` resolves to ``numpy.random.rand`` when ``np``
        aliases ``numpy``; chains rooted in locals resolve to ``None``.
        """
        chain = attribute_chain(node)
        if not chain:
            return None
        target = self.aliases.get(chain[0])
        if target is None:
            return None
        return ".".join([target] + chain[1:])


# ---------------------------------------------------------------------------
# Process-pool call-site helpers (shared by RPR002 and RPR004)
# ---------------------------------------------------------------------------


def pool_entry_call(call: ast.Call, config: AnalysisConfig) -> bool:
    """Whether ``call`` hands work to the process-pool layer."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in config.pool_entry_points
    if isinstance(func, ast.Attribute):
        return func.attr in config.pool_entry_points
    return False


def pool_worker_arg(call: ast.Call) -> Optional[ast.expr]:
    """The callable argument of a pool entry call (``worker=`` or first)."""
    for keyword in call.keywords:
        if keyword.arg == "worker":
            return keyword.value
    if call.args:
        return call.args[0]
    return None


def function_defs(tree: ast.Module) -> Iterator[ast.AST]:
    """Every (possibly nested) function definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def names_in_args(call: ast.Call) -> Set[str]:
    """Bare variable names passed to ``call`` (positionally or by kwarg)."""
    named: Set[str] = set()
    for arg in call.args:
        if isinstance(arg, ast.Name):
            named.add(arg.id)
    for keyword in call.keywords:
        if isinstance(keyword.value, ast.Name):
            named.add(keyword.value.id)
    return named

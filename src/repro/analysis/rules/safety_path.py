"""RPR005 — safety-path dominance across the call graph.

The whole-program counterpart of RPR001's local bypass check: every
statically resolvable call path from a packet/telemetry ingest entry
point to a DAC sink must pass through the detector gate.  Two checks:

1. **Gated functions** — a function that *contains* the gate (a call
   through a ``guard`` attribute, or one of the configured
   ``safety_gate_functions``) may call sinks, but every sink site must
   be dominated by a gate call in that function's CFG (verdicts are
   precomputed in the summaries).
2. **Ungated reachability** — walking the call graph from each ingest
   entry point and *stopping* at gate functions (past the gate the path
   is safe), no reachable function may call a DAC sink.  The finding
   anchors at the sink call and spells out the offending path.

Unresolvable call chains contribute no edges, so the rule is silent on
dynamic dispatch it cannot prove — the same conservative bias as RPR001.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.rules.base import ProjectRule

if TYPE_CHECKING:
    from repro.analysis.graph.project import ProjectGraph


class SafetyPathRule(ProjectRule):
    rule_id = "RPR005"
    summary = "ingest-to-DAC call paths must be dominated by the detector gate"

    def check_project(
        self, graph: "ProjectGraph", config: AnalysisConfig
    ) -> Iterator[Finding]:
        gates = self._gate_functions(graph, config)

        # Check 1: sinks inside gate functions must sit below the gate.
        for key in sorted(gates):
            fn = graph.functions[key]
            for sink in fn["sink_calls"]:
                if not sink["dominated"]:
                    module = graph.function_module[key]
                    yield self.finding_at(
                        graph,
                        module,
                        sink["line"],
                        sink["col"],
                        sink["source"],
                        f"DAC sink '{sink['attr']}' in {key} is not "
                        "dominated by the detector gate call",
                    )

        # Check 2: no sink reachable from an ingest entry without a gate.
        reached = self._reach_ungated(graph, config, gates)
        seen_sites: Set[Tuple[str, int, int]] = set()
        for key in sorted(reached):
            fn = graph.functions[key]
            module = graph.function_module[key]
            path = " -> ".join(reached[key])
            for sink in fn["sink_calls"]:
                site = (module, sink["line"], sink["col"])
                if site in seen_sites:
                    continue
                seen_sites.add(site)
                yield self.finding_at(
                    graph,
                    module,
                    sink["line"],
                    sink["col"],
                    sink["source"],
                    f"DAC sink '{sink['attr']}' reachable from ingest "
                    f"without a detector gate (path: {path})",
                )

    def _gate_functions(
        self, graph: "ProjectGraph", config: AnalysisConfig
    ) -> Set[str]:
        gates = set()
        for key, fn in graph.functions.items():
            if fn["guard_call"] or key in config.safety_gate_functions:
                gates.add(key)
        return gates

    def _reach_ungated(
        self, graph: "ProjectGraph", config: AnalysisConfig, gates: Set[str]
    ) -> Dict[str, List[str]]:
        """Function key → shortest ungated call path from an entry point.

        BFS from every configured entry; gate functions terminate the
        walk (their sinks are handled by the dominance check).
        """
        reached: Dict[str, List[str]] = {}
        queue: List[Tuple[str, List[str]]] = []
        for entry in config.ingest_entry_points:
            if entry in graph.functions and entry not in gates:
                if entry not in reached:
                    reached[entry] = [entry]
                    queue.append((entry, [entry]))
        while queue:
            key, path = queue.pop(0)
            module = graph.function_module[key]
            qualname = key[len(module) + 1 :]
            for call in graph.functions[key]["calls"]:
                callee = graph.resolve_call(module, qualname, call["chain"])
                if callee is None or callee in gates or callee in reached:
                    continue
                reached[callee] = path + [callee]
                queue.append((callee, path + [callee]))
        return reached

"""RPR004 — picklable-by-construction process-pool submissions.

``ParallelCampaignRunner`` and ``iter_tasks``/``run_tasks`` execute their
worker on a ``ProcessPoolExecutor``: the worker must pickle.  A nested
function, a locally bound lambda, or a ``functools.partial`` over either
pickles on the serial path (``jobs=1``) and then explodes — or silently
never runs in parallel — in production.  This rule rejects such workers
at the submission site, wherever it appears.

Lambdas written *inline* at the call site are RPR002's finding inside the
golden-trace-critical packages; outside them this rule reports the same
shape so exactly one rule fires for any given site.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.compat import flatten_statements
from repro.analysis.config import AnalysisConfig, module_matches
from repro.analysis.findings import Finding
from repro.analysis.rules.base import (
    Rule,
    pool_entry_call,
    pool_worker_arg,
)
from repro.analysis.source import ModuleSource


class PoolSafetyRule(Rule):
    """Workers crossing the pool must be module-level callables."""

    rule_id = "RPR004"
    summary = (
        "closures, nested functions, or locally bound lambdas submitted "
        "to the process-pool layer"
    )

    def check(
        self, module: ModuleSource, config: AnalysisConfig
    ) -> Iterator[Finding]:
        lambda_covered_by_rpr002 = module_matches(
            module.module, config.deterministic_packages
        )
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local_callables = self._local_callables(func)
            for stmt in flatten_statements(func.body):
                for call in ast.walk(stmt):
                    if not isinstance(call, ast.Call):
                        continue
                    if not pool_entry_call(call, config):
                        continue
                    worker = pool_worker_arg(call)
                    if worker is None:
                        continue
                    for found in self._check_worker(
                        module,
                        call,
                        worker,
                        local_callables,
                        lambda_covered_by_rpr002,
                    ):
                        yield found

    def _local_callables(self, func: ast.AST) -> Set[str]:
        """Names bound to nested defs or lambdas in ``func``'s body."""
        names: Set[str] = set()
        for stmt in flatten_statements(
            func.body  # type: ignore[attr-defined]
        ):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(stmt.name)
            elif isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Lambda
            ):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _check_worker(
        self,
        module: ModuleSource,
        call: ast.Call,
        worker: ast.expr,
        local_callables: Set[str],
        lambda_covered_by_rpr002: bool,
    ) -> Iterator[Finding]:
        if isinstance(worker, ast.Lambda) and not lambda_covered_by_rpr002:
            yield self.finding(
                module,
                call,
                "lambda submitted to the process pool cannot be pickled; "
                "use a module-level function",
            )
        elif isinstance(worker, ast.Name) and worker.id in local_callables:
            yield self.finding(
                module,
                call,
                f"worker '{worker.id}' is a nested function or local "
                "lambda: it cannot be pickled across the process pool; "
                "hoist it to module level",
            )
        elif isinstance(worker, ast.Call):
            # functools.partial over a local callable or lambda.
            inner = worker.args[0] if worker.args else None
            if isinstance(inner, ast.Lambda) or (
                isinstance(inner, ast.Name) and inner.id in local_callables
            ):
                yield self.finding(
                    module,
                    call,
                    "worker wraps a nested function or lambda: the "
                    "wrapped callable cannot be pickled across the "
                    "process pool; hoist it to module level",
                )

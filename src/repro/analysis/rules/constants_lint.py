"""RPR003 — magic safety numbers in threshold-bearing modules.

The safety checker, the anomaly detector, and the dynamic model are where
the paper's thresholds live; a bare numeric literal inside their logic is
a tuning decision nobody can find, review, or sweep.  Inside the
configured scope a numeric literal must be *named*: defined in
``repro.constants``, as a module-level constant, or as a dataclass/class
attribute default.  Structurally innocuous values (identities, halves,
tiny arities) and subscript indices are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.analysis.config import AnalysisConfig, module_matches
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule
from repro.analysis.source import ModuleSource

Number = Union[int, float]


def _effective_value(
    node: ast.Constant, parents: "dict[ast.AST, ast.AST]"
) -> Number:
    """The literal's value with an enclosing unary minus folded in."""
    value: Number = node.value
    parent = parents.get(node)
    if isinstance(parent, ast.UnaryOp) and isinstance(parent.op, ast.USub):
        return -value
    return value


class MagicNumberRule(Rule):
    """Safety/threshold literals must be named, not inlined."""

    rule_id = "RPR003"
    summary = (
        "bare numeric literals in safety/threshold modules that belong "
        "in repro.constants or a named default"
    )

    def check(
        self, module: ModuleSource, config: AnalysisConfig
    ) -> Iterator[Finding]:
        if not module_matches(module.module, config.constants_scope):
            return
        parents = module.parents()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if type(value) is not int and type(value) is not float:
                continue  # bools, strings, None, complex
            effective = _effective_value(node, parents)
            if type(value) is int and effective in config.allowed_int_literals:
                continue
            if (
                type(value) is float
                and effective in config.allowed_float_literals
            ):
                continue
            context = self._context(node, parents)
            if context == "named":
                continue
            yield self.finding(
                module,
                node,
                f"magic number {effective!r} in a safety/threshold "
                "module; hoist it into repro.constants, a module-level "
                "constant, or a named dataclass default",
            )

    def _context(
        self, node: ast.Constant, parents: "dict[ast.AST, ast.AST]"
    ) -> Optional[str]:
        """``"named"`` when the literal sits in an allowed definition site.

        Allowed: module-level assignments (named constants, catalogs),
        class-body assignments (dataclass/class attribute defaults), and
        subscript indices/slices (structural, not tunable).
        """
        child: ast.AST = node
        current = parents.get(node)
        while current is not None:
            if isinstance(current, ast.Slice):
                return "named"
            if isinstance(current, ast.Subscript) and child is current.slice:
                return "named"
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return None  # function logic (incl. signature defaults)
            if isinstance(current, ast.Lambda) and not isinstance(
                parents.get(current), (ast.Assign, ast.AnnAssign, ast.keyword)
            ):
                # A lambda not directly bound in an assignment context is
                # runtime logic; keep climbing otherwise (e.g. a
                # ``field(default_factory=lambda: ...)`` dataclass default).
                return None
            if isinstance(current, (ast.Assign, ast.AnnAssign)):
                owner = parents.get(current)
                if isinstance(owner, ast.Module):
                    return "named"
                if isinstance(owner, ast.ClassDef):
                    return "named"
            child = current
            current = parents.get(current)
        return None

"""Human and machine renderings of an analysis run."""

from __future__ import annotations

import json
from typing import Dict, List, Union

from repro.analysis.engine import AnalysisResult
from repro.analysis.findings import Finding

JsonDict = Dict[str, Union[int, str, List[Dict[str, Union[str, int]]]]]


def render_text(
    result: AnalysisResult,
    new: List[Finding],
    baselined: List[Finding],
) -> str:
    """The human report: one line per new finding plus a summary."""
    lines: List[str] = [finding.format() for finding in new]
    counts = ", ".join(
        f"{rule}: {count}"
        for rule, count in sorted(result.counts_by_rule().items())
    )
    summary = (
        f"repro.analysis: {result.files_scanned} files, "
        f"{len(new)} new finding(s)"
    )
    if baselined:
        summary += f", {len(baselined)} baselined"
    if result.suppressed:
        summary += f", {len(result.suppressed)} suppressed inline"
    if counts:
        summary += f" [{counts}]"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    result: AnalysisResult,
    new: List[Finding],
    baselined: List[Finding],
) -> str:
    """Machine-readable report (stable key order)."""
    payload: JsonDict = {
        "files_scanned": result.files_scanned,
        "new": [finding.to_dict() for finding in new],
        "baselined": [finding.to_dict() for finding in baselined],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "parse_errors": [
            finding.to_dict() for finding in result.parse_errors
        ],
    }
    if result.scope is not None:
        payload["scope"] = list(result.scope)
    return json.dumps(payload, indent=1, sort_keys=True)

"""Parsed source files as the engine sees them.

A :class:`ModuleSource` bundles everything a rule needs about one file:
its dotted module name (recovered from ``__init__.py`` package structure,
so the engine never imports analyzed code), raw lines, the parsed tree, a
lazily built parent map, and the per-line suppressions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional

from repro.analysis.suppress import parse_suppressions


def module_name_for_path(path: Path) -> str:
    """Dotted module name of ``path``, walking up through packages.

    ``src/repro/core/detector.py`` resolves to ``repro.core.detector``
    because ``src/repro`` and ``src/repro/core`` carry ``__init__.py``
    while ``src`` does not.  A file outside any package is its bare stem.
    """
    path = path.resolve()
    parts: List[str] = [] if path.stem == "__init__" else [path.stem]
    directory = path.parent
    while (directory / "__init__.py").exists():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts)


def display_path_for(path: Path, display_root: Optional[Path]) -> str:
    """Reported path: relative to ``display_root`` when possible, always
    with forward-slash separators so reports and baselines are
    byte-identical across platforms."""
    display = path
    if display_root is not None:
        try:
            display = path.resolve().relative_to(display_root.resolve())
        except ValueError:
            display = path
    return display.as_posix()


def collect_py_files(paths: List[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths``, deduplicated, sorted."""
    seen: Dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for found in sorted(path.rglob("*.py")):
                seen.setdefault(found.resolve(), None)
        elif path.suffix == ".py":
            seen.setdefault(path.resolve(), None)
    return sorted(seen)


@dataclass
class ModuleSource:
    """One parsed file plus the metadata rules key off."""

    path: Path
    display_path: str
    module: str
    lines: List[str]
    tree: ast.Module
    suppressions: Dict[int, FrozenSet[str]]
    _parents: Optional[Dict[ast.AST, ast.AST]] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def load(cls, path: Path, display_root: Optional[Path] = None) -> "ModuleSource":
        """Parse ``path``; raises ``SyntaxError``/``OSError`` to the engine."""
        text = path.read_text(encoding="utf-8")
        return cls.from_source(path, text, display_root=display_root)

    @classmethod
    def from_source(
        cls, path: Path, text: str, display_root: Optional[Path] = None
    ) -> "ModuleSource":
        """Parse already-read ``text`` (the engine reads once for caching)."""
        tree = ast.parse(text, filename=str(path))
        lines = text.splitlines()
        return cls(
            path=path,
            display_path=display_path_for(path, display_root),
            module=module_name_for_path(path),
            lines=lines,
            tree=tree,
            suppressions=parse_suppressions(lines),
        )

    def line_text(self, lineno: int) -> str:
        """Stripped text of 1-based ``lineno`` (empty when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child-to-parent map over the whole tree (built once)."""
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents

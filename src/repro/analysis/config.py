"""Configuration of the domain-invariant lint rules.

The defaults encode *this repository's* architecture: which modules are
sanctioned to touch DAC sinks, which packages must stay deterministic for
the golden-trace suite, where safety constants are allowed to live.  The
test fixtures (and any downstream fork) swap in their own scopes by
constructing an :class:`AnalysisConfig` instead of patching rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


def module_matches(module: str, scopes: Tuple[str, ...]) -> bool:
    """Whether ``module`` is one of ``scopes`` or inside one of them.

    A scope entry names either a module (``repro.core.detector``) or a
    package prefix (``repro.dynamics`` covers ``repro.dynamics.plant``).
    """
    for scope in scopes:
        if module == scope or module.startswith(scope + "."):
            return True
    return False


@dataclass(frozen=True)
class AnalysisConfig:
    """Scopes and allowlists consumed by the rule families."""

    # -- RPR001: guard bypass / TOCTOU ------------------------------------------
    #: Method names whose call latches DAC values into the actuation path.
    dac_sink_attrs: Tuple[str, ...] = ("latch", "_latch")
    #: Modules allowed to call a DAC sink directly (the guarded write path
    #: itself plus the sanctioned fault-injection seam).
    dac_sink_allowed_modules: Tuple[str, ...] = (
        "repro.hw.usb_board",
        "repro.hw.motor_controller",
        "repro.core.pipeline",
        "repro.testing.physfaults",
    )
    #: Attribute names that install guard/fault hooks on the USB board.
    guard_hook_attrs: Tuple[str, ...] = ("guard", "dac_fault")
    #: Modules allowed to (re)install those hooks on *another* object
    #: (``self.<attr> = ...`` definition sites are always allowed).
    guard_hook_allowed_modules: Tuple[str, ...] = (
        "repro.hw.usb_board",
        "repro.core.pipeline",
        "repro.testing.physfaults",
    )
    #: Attribute/variable names whose call is the guard *check*; mutating
    #: a checked value after one of these calls is the TOCTOU window.
    guard_call_names: Tuple[str, ...] = ("guard",)

    # -- RPR002: determinism ----------------------------------------------------
    #: Packages whose behaviour the golden-trace suite pins bit-for-bit.
    deterministic_packages: Tuple[str, ...] = (
        "repro.core",
        "repro.dynamics",
        "repro.sim",
        "repro.hw",
        "repro.experiments",
        "repro.obs",
        "repro.fleet",
        "repro.service",
    )
    #: The only modules allowed to read ``os.environ`` raw.
    env_shim_modules: Tuple[str, ...] = ("repro.envcfg",)
    #: The only modules allowed to call the monotonic clock directly;
    #: everything else takes duration probes through their Stopwatch /
    #: monotonic_s API so timing instrumentation stays in one seam.
    timing_probe_modules: Tuple[str, ...] = ("repro.obs.timing",)

    # -- RPR002 + RPR004: process-pool entry points -----------------------------
    #: Callable names that move work onto worker processes; their first
    #: (or ``worker=``) argument must be picklable by construction.
    pool_entry_points: Tuple[str, ...] = ("iter_tasks", "run_tasks", "submit")

    # -- RPR003: magic safety numbers -------------------------------------------
    #: Modules/packages where numeric safety literals must be named.
    constants_scope: Tuple[str, ...] = (
        "repro.control.safety",
        "repro.core.detector",
        "repro.dynamics",
    )
    #: Structurally innocuous integers (identities, tiny arities/indices).
    allowed_int_literals: Tuple[int, ...] = (-2, -1, 0, 1, 2, 3, 4)
    #: Structurally innocuous floats (identities and halves).
    allowed_float_literals: Tuple[float, ...] = (-1.0, 0.0, 0.5, 1.0, 1.5, 2.0)

    # -- RPR005: safety-path dominance (whole-program) --------------------------
    #: Qualified names (``module.Class.method`` / ``module.func``) where
    #: packet/telemetry data enters the system.  Every call-graph path
    #: from one of these to a DAC sink must pass a detector gate.
    ingest_entry_points: Tuple[str, ...] = (
        "repro.fleet.supervisor.FleetSupervisor.ingest",
        "repro.fleet.supervisor.FleetSupervisor.tick",
        "repro.hw.usb_board.UsbBoard.fd_write",
    )
    #: Qualified names of functions that *are* the detector gate.  A
    #: function whose body calls through a ``guard_call_names`` attribute
    #: also counts as a gate site without being listed here.
    safety_gate_functions: Tuple[str, ...] = (
        "repro.core.pipeline.DetectorGuard.__call__",
        "repro.core.pipeline.DetectorGuard.process",
        "repro.core.pipeline.GuardSupervisor.__call__",
        "repro.core.pipeline.GuardSupervisor.process",
    )

    # -- RPR006: state-lifecycle completeness -----------------------------------
    #: Modules/packages whose classes must keep ``reset``/``snapshot``/
    #: ``restore`` coverage of every mutable ``__init__`` attribute.
    lifecycle_scope: Tuple[str, ...] = ("repro.core", "repro.fleet")
    #: Method-name families recognized as the lifecycle surface.
    lifecycle_reset_methods: Tuple[str, ...] = ("reset", "reset_counters")
    lifecycle_snapshot_methods: Tuple[str, ...] = (
        "snapshot",
        "snapshot_payload",
        "lane_state",
    )
    lifecycle_restore_methods: Tuple[str, ...] = (
        "restore",
        "restore_payload",
        "load_lane_state",
    )
    #: Attribute-name globs that are wiring, not state (telemetry handles,
    #: board attachments, deferred batch sinks) — never required.
    lifecycle_wiring_attrs: Tuple[str, ...] = ("_obs_*", "_board", "_batch_sink")

    # -- RPR007: scalar/batched API parity ---------------------------------------
    #: Modules/packages scanned for ``Batched*`` classes.
    parity_scope: Tuple[str, ...] = (
        "repro.core",
        "repro.dynamics",
        "repro.sim",
        "repro.experiments",
    )
    #: ``Batched*`` classes whose scalar counterpart is not simply the
    #: name with the prefix stripped.
    parity_pairs: Tuple[Tuple[str, str], ...] = (
        ("BatchedDynamicModel", "RavenDynamicModel"),
        ("BatchedPlant", "RavenPlant"),
    )
    #: ``(scalar_method, batched_alternative)``: the scalar method is
    #: mirrored when *any* of its alternatives exists on the batched
    #: class.  ``lane`` covers per-lane view objects that expose the
    #: scalar accessors wholesale.
    parity_aliases: Tuple[Tuple[str, str], ...] = (
        ("snapshot", "lane_state"),
        ("snapshot", "lane"),
        ("restore", "load_lane_state"),
        ("window", "lane_window"),
        ("jpos", "lane_jpos"),
        ("jpos", "lane"),
        ("jvel", "lane_jvel"),
        ("jvel", "lane"),
        ("currents", "lane"),
        ("mpos", "lane"),
        ("mvel", "lane"),
        ("set_state", "lane"),
    )
    #: Scalar methods that are per-lane configuration/calibration/timing
    #: seams, deliberately not mirrored by the batched kernels.
    parity_exempt_methods: Tuple[str, ...] = (
        "calibrate",
        "thresholds",
        "apply_parameter_drift",
        "mean_predict_seconds",
        "reset_timing",
        "gravity_compensation",
    )

    # -- RPR008: exception-flow quarantine discipline ----------------------------
    #: Modules/packages where lane-scoped exception handling must reach a
    #: quarantine/retry boundary.
    quarantine_scope: Tuple[str, ...] = (
        "repro.fleet",
        "repro.experiments.parallel",
        "repro.service",
    )
    #: Call-chain segments that count as routing a fault to quarantine.
    quarantine_sink_names: Tuple[str, ...] = (
        "quarantine",
        "_quarantine",
        "_escalate_stale",
        "quarantine_file",
        "faults",
    )
    #: Exception classes whose silent swallowing is forbidden (checked
    #: together with their statically known superclasses).
    integrity_error_names: Tuple[str, ...] = ("SnapshotIntegrityError",)
    #: Modules sanctioned to catch-and-continue integrity errors (the
    #: newest-verifiable-checkpoint fallback walk).
    integrity_fallback_modules: Tuple[str, ...] = ("repro.fleet.store",)

    # -- engine -------------------------------------------------------------------
    #: Rule ids to run (others are registered but skipped).
    enabled_rules: Tuple[str, ...] = field(
        default=(
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
            "RPR006",
            "RPR007",
            "RPR008",
        )
    )


#: The repository's own configuration.
DEFAULT_CONFIG = AnalysisConfig()

"""Real (un-wrapped) system-call implementations.

Each real syscall dispatches to the :class:`~repro.sysmodel.process.DeviceFile`
behind the file descriptor.  The dynamic linker chains preloaded wrappers
*in front of* these functions, so a wrapper receives the next function in
the chain exactly like a real ``LD_PRELOAD`` wrapper obtains the original
via ``dlsym(RTLD_NEXT, ...)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.errors import SyscallError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sysmodel.process import Process

#: Names of the runtime-library calls the linker knows how to interpose.
SYSCALL_NAMES = ("write", "read", "recvfrom")


def real_syscalls(process: "Process") -> Dict[str, Callable]:
    """Build the un-wrapped symbol table for ``process``."""

    def real_write(fd: int, data: bytes) -> int:
        if not isinstance(data, (bytes, bytearray)):
            raise SyscallError("write expects bytes")
        return process.device(fd).fd_write(bytes(data))

    def real_read(fd: int, max_bytes: int) -> bytes:
        return process.device(fd).fd_read(max_bytes)

    def real_recvfrom(fd: int, max_bytes: int) -> Optional[bytes]:
        device = process.device(fd)
        recv = getattr(device, "fd_recvfrom", None)
        if recv is None:
            raise SyscallError(
                f"fd {fd} ({type(device).__name__}) is not a socket"
            )
        return recv(max_bytes)

    return {"write": real_write, "read": real_read, "recvfrom": real_recvfrom}

"""LD_PRELOAD-style dynamic linking.

A :class:`SharedLibrary` exports *wrapper factories*: for a symbol name
like ``"write"`` it provides a factory that, given the next function in the
resolution chain (the ``dlsym(RTLD_NEXT, ...)`` result) and the process
being linked, returns the replacement function.

The :class:`SystemEnvironment` models the two preload mechanisms the paper
describes:

- ``LD_PRELOAD`` in a *user's* startup profile (``.bashrc``) — affects new
  processes started by that user (no root needed);
- ``/etc/ld.so.preload`` — affects new processes of *every* user (root).

Only processes (re)linked after the preload entry is added pick up the
wrappers, mirroring real loader behaviour.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import LinkerError
from repro.sysmodel.process import Process
from repro.sysmodel.syscalls import SYSCALL_NAMES, real_syscalls

#: A wrapper factory: (next_fn, process) -> replacement function.
WrapperFactory = Callable[[Callable, Process], Callable]


class SharedLibrary:
    """A shared object exporting wrapper symbols."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._factories: Dict[str, WrapperFactory] = {}

    def export(self, symbol: str, factory: WrapperFactory) -> None:
        """Export ``symbol`` with the given wrapper factory.

        Raises
        ------
        LinkerError
            If the symbol name is not an interposable runtime call.
        """
        if symbol not in SYSCALL_NAMES:
            raise LinkerError(
                f"cannot interpose unknown symbol {symbol!r}; "
                f"known: {SYSCALL_NAMES}"
            )
        self._factories[symbol] = factory

    def exports(self) -> Dict[str, WrapperFactory]:
        """Exported symbol -> factory mapping (copy)."""
        return dict(self._factories)

    def __repr__(self) -> str:
        return f"SharedLibrary({self.name!r}, exports={sorted(self._factories)})"


class SystemEnvironment:
    """LD_PRELOAD (per-user) and /etc/ld.so.preload (system-wide) state."""

    def __init__(self) -> None:
        self._user_preload: Dict[str, List[SharedLibrary]] = {}
        self._system_preload: List[SharedLibrary] = []

    def set_user_preload(self, user: str, library: SharedLibrary) -> None:
        """Append to ``user``'s LD_PRELOAD (as via ``.bashrc``; no root)."""
        self._user_preload.setdefault(user, []).append(library)

    def add_system_preload(self, library: SharedLibrary) -> None:
        """Append to ``/etc/ld.so.preload`` (requires root on a real box)."""
        self._system_preload.append(library)

    def clear_user_preload(self, user: str) -> None:
        """Remove the user's LD_PRELOAD entries (attack cleanup)."""
        self._user_preload.pop(user, None)

    def clear_system_preload(self) -> None:
        """Empty ``/etc/ld.so.preload``."""
        self._system_preload.clear()

    def preload_list(self, user: Optional[str]) -> List[SharedLibrary]:
        """Effective preload order for a process started by ``user``.

        ld.so honours ``/etc/ld.so.preload`` before ``LD_PRELOAD``.
        """
        libs = list(self._system_preload)
        if user is not None:
            libs.extend(self._user_preload.get(user, []))
        return libs


class DynamicLinker:
    """Resolves process symbols through the preload chain to the real code."""

    def __init__(self, environment: Optional[SystemEnvironment] = None) -> None:
        self.environment = environment or SystemEnvironment()

    def link(self, process: Process, user: Optional[str] = "surgeon") -> None:
        """Resolve all interposable symbols for ``process``.

        The chain is built back-to-front: the real function first, then each
        preloaded library's wrapper around it, so the *first* library in
        preload order is called first — matching ld.so.
        """
        real = real_syscalls(process)
        libraries = self.environment.preload_list(user)
        for symbol in SYSCALL_NAMES:
            fn = real[symbol]
            for library in reversed(libraries):
                factory = library.exports().get(symbol)
                if factory is not None:
                    fn = factory(fn, process)
            process.set_symbol(symbol, fn)

    def spawn(self, name: str, user: Optional[str] = "surgeon") -> Process:
        """Create and link a new process as started by ``user``."""
        process = Process(name)
        self.link(process, user=user)
        return process

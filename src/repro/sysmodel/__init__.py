"""Simulated Linux system-call and dynamic-linking layer.

The paper's attack hinges on two OS features:

1. programs call runtime-library functions (``write``, ``read``, ...) which
   wrap system calls, and
2. the dynamic linker honours ``LD_PRELOAD`` / ``/etc/ld.so.preload``: a
   preloaded shared object exporting a function with the same name as a
   runtime-library function *wraps* it — the preloaded function is called
   instead and may invoke the original, skip it, or do extra work.

This package models exactly that: :class:`Process` objects issue system
calls through a per-process resolved symbol table; a :class:`DynamicLinker`
resolves each symbol through the chain of preloaded libraries down to the
real implementation, mirroring ``dlsym(RTLD_NEXT)`` semantics.

Public API
----------
- :class:`Process` — a process with file descriptors and syscalls.
- :class:`DeviceFile` — protocol for fd-backed devices.
- :class:`SharedLibrary` — a shared object exporting wrapper symbols.
- :class:`DynamicLinker` — the loader honouring the preload lists.
- :class:`SystemEnvironment` — LD_PRELOAD / ld.so.preload state.
"""

from repro.sysmodel.process import DeviceFile, Process
from repro.sysmodel.linker import DynamicLinker, SharedLibrary, SystemEnvironment
from repro.sysmodel.syscalls import SYSCALL_NAMES, real_syscalls

__all__ = [
    "SYSCALL_NAMES",
    "DeviceFile",
    "DynamicLinker",
    "Process",
    "SharedLibrary",
    "SystemEnvironment",
    "real_syscalls",
]

"""Process model: file descriptors and the syscall entry points.

A :class:`Process` mimics a user-space program: it owns a file-descriptor
table mapping small integers to :class:`DeviceFile` objects (USB interface
boards, UDP sockets, log files...) and calls ``write``/``read``/``recvfrom``
through its *resolved symbol table* — which the dynamic linker may have
pointed at malicious preloaded wrappers instead of the real implementations.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol

from repro.errors import SyscallError


class DeviceFile(Protocol):
    """Anything that can sit behind a file descriptor."""

    def fd_write(self, data: bytes) -> int:
        """Handle a ``write``; returns the number of bytes consumed."""
        ...

    def fd_read(self, max_bytes: int) -> bytes:
        """Handle a ``read``; returns up to ``max_bytes`` bytes."""
        ...


class Process:
    """A user-space process issuing system calls through resolved symbols.

    Symbols are resolved by the :class:`~repro.sysmodel.linker.DynamicLinker`
    at "exec time" (:meth:`relink`); until then the process uses the real
    implementations.  This mirrors the paper's observation that the malware
    affects *future* processes (new terminals after ``.bashrc`` sets
    ``LD_PRELOAD``), not already-running ones.
    """

    _next_pid = 1000

    def __init__(self, name: str) -> None:
        self.name = name
        self.pid = Process._next_pid
        Process._next_pid += 1
        self._fds: Dict[int, DeviceFile] = {}
        self._next_fd = 3  # 0-2 reserved, as on a real system
        self._symbols: Dict[str, Callable] = {}
        from repro.sysmodel.syscalls import real_syscalls

        self._symbols = real_syscalls(self)

    # -- file descriptors -----------------------------------------------------

    def open_device(self, device: DeviceFile) -> int:
        """Attach a device and return its new file descriptor."""
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = device
        return fd

    def close(self, fd: int) -> None:
        """Detach a file descriptor."""
        if fd not in self._fds:
            raise SyscallError(f"close: bad file descriptor {fd}")
        del self._fds[fd]

    def device(self, fd: int) -> DeviceFile:
        """The device behind ``fd`` (raises on bad descriptors)."""
        try:
            return self._fds[fd]
        except KeyError:
            raise SyscallError(f"bad file descriptor {fd}") from None

    @property
    def open_fds(self) -> Dict[int, DeviceFile]:
        """Copy of the descriptor table (diagnostics/tests)."""
        return dict(self._fds)

    # -- symbol table ---------------------------------------------------------

    def set_symbol(self, name: str, fn: Callable) -> None:
        """Install a resolved symbol (done by the dynamic linker)."""
        self._symbols[name] = fn

    def symbol(self, name: str) -> Callable:
        """Look up a resolved symbol."""
        try:
            return self._symbols[name]
        except KeyError:
            raise SyscallError(f"undefined symbol {name!r}") from None

    def relink(self, linker: "DynamicLinker") -> None:  # noqa: F821
        """Re-resolve all syscall symbols through ``linker`` (process start)."""
        linker.link(self)

    # -- syscall entry points ---------------------------------------------------

    def write(self, fd: int, data: bytes) -> int:
        """``write(2)`` through the resolved symbol (possibly wrapped)."""
        return self._symbols["write"](fd, data)

    def read(self, fd: int, max_bytes: int) -> bytes:
        """``read(2)`` through the resolved symbol (possibly wrapped)."""
        return self._symbols["read"](fd, max_bytes)

    def recvfrom(self, fd: int, max_bytes: int) -> Optional[bytes]:
        """``recvfrom(2)`` through the resolved symbol (possibly wrapped).

        Returns ``None`` when no datagram is pending (non-blocking).
        """
        return self._symbols["recvfrom"](fd, max_bytes)

"""Stdlib HTTP/1.1 surface for one service worker.

Three read-only endpoints, served off the worker's event loop:

- ``GET /healthz`` — JSON liveness (status, sessions, quarantines,
  tick count, fault-journal length);
- ``GET /tenants`` — JSON per-tenant decision counters (decisions,
  frames, health, chain digest per session) — available with
  observability disabled;
- ``GET /metrics`` — Prometheus text exposition of the process
  :class:`repro.obs.MetricsRegistry` (empty when ``REPRO_OBS`` is off);
  ``?prefix=repro_svc_`` narrows the scrape to one metric family or one
  tenant's counters.

Hand-rolled on ``asyncio`` streams because a scrape endpoint does not
justify a web framework — and no new dependencies is a design rule of
this repository.  Requests beyond a small size cap, non-GET methods, and
unknown paths are rejected without touching the supervisor.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Tuple
from urllib.parse import parse_qs, urlsplit

if TYPE_CHECKING:
    from repro.service.worker import ServiceWorker

#: A request line + headers larger than this is hostile, not a scrape.
MAX_REQUEST_BYTES = 8192

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed"}


def _response(status: int, content_type: str, body: str) -> bytes:
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Error')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + payload


def _json_response(status: int, payload: object) -> bytes:
    return _response(
        status, "application/json", json.dumps(payload, sort_keys=True)
    )


def render(worker: "ServiceWorker", method: str, target: str) -> bytes:
    """The response bytes for one request line (pure, testable)."""
    if method != "GET":
        return _json_response(405, {"error": f"method {method} not allowed"})
    parts = urlsplit(target)
    if parts.path == "/healthz":
        return _json_response(200, worker.health_payload())
    if parts.path == "/tenants":
        return _json_response(200, worker.tenants_payload())
    if parts.path == "/metrics":
        prefixes = parse_qs(parts.query).get("prefix", [""])
        body = worker.registry_text(prefixes[0])
        return _response(200, "text/plain; version=0.0.4", body)
    return _json_response(404, {"error": f"no route for {parts.path}"})


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str]:
    """The (method, target) of one HTTP request; drains its headers."""
    line = await reader.readline()
    if not line or len(line) > MAX_REQUEST_BYTES:
        raise ValueError("bad request line")
    parts = line.decode("latin-1").split()
    if len(parts) != 3:
        raise ValueError("malformed request line")
    total = len(line)
    while True:
        header = await reader.readline()
        total += len(header)
        if total > MAX_REQUEST_BYTES:
            raise ValueError("headers too large")
        if header in (b"\r\n", b"\n", b""):
            break
    return parts[0], parts[1]


async def start_http_server(
    worker: "ServiceWorker", host: str, port: int
) -> asyncio.AbstractServer:
    """Serve the worker's HTTP surface; returns the bound server."""

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, target = await _read_request(reader)
            except ValueError as exc:
                writer.write(_json_response(400, {"error": str(exc)}))
            else:
                writer.write(render(worker, method, target))
            await writer.drain()
        except (ConnectionError, OSError) as exc:
            worker.faults.append(f"http connection dropped: {exc!r}")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # peer already gone

    return await asyncio.start_server(handle, host=host, port=port)


def http_port(server: asyncio.AbstractServer) -> int:
    return int(server.sockets[0].getsockname()[1])

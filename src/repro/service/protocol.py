"""Length-prefixed, versioned wire protocol for the detection service.

Every message is one canonical-JSON object (sorted keys, minimal
separators — the same encoding :func:`repro.fleet.store.canonical_payload`
uses for checkpoint checksums) encoded as UTF-8 and framed by a 4-byte
big-endian length prefix.  Canonical framing is load-bearing: the worker
feeds decoded frames into the exact :class:`~repro.fleet.session.TelemetryFrame`
the in-process supervisor consumes, so decision hash chains computed over
the wire are *byte-identical* to in-process runs — the differential
golden in ``tests/test_service.py`` holds the protocol to that.

Requests carry ``{"v": 1, "id": <seq>, "op": <name>, ...}``; responses
echo ``id`` and carry ``ok`` plus op-specific fields (or ``error`` when
``ok`` is false).  Anything malformed — bad prefix, oversized payload,
non-JSON bytes, wrong version, missing/mistyped fields — raises
:class:`~repro.errors.ProtocolError` and never reaches a supervisor.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional, Tuple, Union

from repro.core.detector import FusionRule
from repro.core.mitigation import MitigationStrategy
from repro.core.pipeline import SupervisorConfig
from repro.core.thresholds import SafetyThresholds
from repro.errors import ProtocolError
from repro.fleet.session import SessionSpec, TelemetryFrame
from repro.fleet.store import canonical_payload
from repro.service.config import DEFAULT_MAX_FRAME_BYTES

#: Wire schema version.  A peer speaking a different version is rejected
#: before any state is touched.
PROTOCOL_VERSION = 1

_PREFIX = struct.Struct(">I")

#: Worker operations a frontend/client may request.
OPS = (
    "register",
    "resume",
    "ingest",
    "tick",
    "checkpoint",
    "drain",
    "fingerprints",
    "health",
    "shutdown",
)


# -- framing ---------------------------------------------------------------------


def encode_message(payload: Dict[str, Any]) -> bytes:
    """``payload`` as canonical JSON behind a 4-byte length prefix."""
    body = canonical_payload(payload).encode("utf-8")
    return _PREFIX.pack(len(body)) + body


def decode_body(body: bytes, max_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> Dict[str, Any]:
    """Parse one message body; :class:`ProtocolError` on anything off."""
    if len(body) > max_bytes:
        raise ProtocolError(
            f"message of {len(body)} bytes exceeds cap of {max_bytes}"
        )
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"message body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("message must be a JSON object")
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this end speaks {PROTOCOL_VERSION})"
        )
    return payload


async def read_message(
    reader: asyncio.StreamReader, max_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Optional[Dict[str, Any]]:
    """Read one framed message; ``None`` on clean EOF before a prefix.

    The size cap is enforced on the *prefix*, before the body is read, so
    an oversized announcement never allocates its claimed length.  A
    truncated prefix or body (peer died mid-message) raises
    :class:`ProtocolError`.
    """
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-prefix") from exc
    (length,) = _PREFIX.unpack(prefix)
    if length > max_bytes:
        raise ProtocolError(
            f"announced message of {length} bytes exceeds cap of {max_bytes}"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-message") from exc
    return decode_body(body, max_bytes=max_bytes)


async def write_message(
    writer: asyncio.StreamWriter, payload: Dict[str, Any]
) -> None:
    writer.write(encode_message(payload))
    await writer.drain()


# -- message shapes --------------------------------------------------------------


def request(op: str, msg_id: int, **fields: Any) -> Dict[str, Any]:
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}")
    payload: Dict[str, Any] = {"v": PROTOCOL_VERSION, "id": msg_id, "op": op}
    payload.update(fields)
    return payload


def ok_response(msg_id: int, **fields: Any) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"v": PROTOCOL_VERSION, "id": msg_id, "ok": True}
    payload.update(fields)
    return payload


def error_response(
    msg_id: int, error: str, kind: str = "ServiceError"
) -> Dict[str, Any]:
    """A failure response; ``kind`` names the exception class so the
    caller can distinguish e.g. a resume miss from a protocol breach."""
    return {
        "v": PROTOCOL_VERSION,
        "id": msg_id,
        "ok": False,
        "error": error,
        "kind": kind,
    }


# -- strict field accessors ------------------------------------------------------


def _field(
    obj: Dict[str, Any],
    name: str,
    kind: Union[type, Tuple[type, ...]],
) -> Any:
    """A required, correctly-typed field; :class:`ProtocolError` otherwise."""
    if name not in obj:
        raise ProtocolError(f"message is missing required field {name!r}")
    value = obj[name]
    # bool is an int subclass; a numeric field must not silently accept one.
    if kind is not bool and isinstance(value, bool):
        raise ProtocolError(f"field {name!r} must not be a bool")
    if not isinstance(value, kind):
        expected = (
            kind.__name__
            if isinstance(kind, type)
            else "/".join(k.__name__ for k in kind)
        )
        raise ProtocolError(
            f"field {name!r} must be {expected}, got {type(value).__name__}"
        )
    return value


def _triple(obj: Dict[str, Any], name: str, kind: type) -> Tuple[Any, ...]:
    raw = _field(obj, name, list)
    if len(raw) != 3:
        raise ProtocolError(f"field {name!r} must have 3 elements")
    out = []
    for item in raw:
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise ProtocolError(f"field {name!r} elements must be numbers")
        out.append(kind(item))
    return tuple(out)


# -- TelemetryFrame codec --------------------------------------------------------


def frame_to_wire(frame: TelemetryFrame) -> Dict[str, Any]:
    return {
        "tick": frame.tick,
        "dac": [int(v) for v in frame.dac],
        "pedal_down": frame.pedal_down,
        "mpos": None if frame.mpos is None else [float(v) for v in frame.mpos],
    }


def frame_from_wire(obj: Any) -> TelemetryFrame:
    if not isinstance(obj, dict):
        raise ProtocolError("frame must be a JSON object")
    tick = _field(obj, "tick", int)
    dac = _triple(obj, "dac", int)
    pedal_down = _field(obj, "pedal_down", bool)
    mpos_raw = obj.get("mpos")
    mpos = None if mpos_raw is None else _triple(obj, "mpos", float)
    return TelemetryFrame(tick=tick, dac=dac, pedal_down=pedal_down, mpos=mpos)


# -- SessionSpec codec -----------------------------------------------------------


def spec_to_wire(spec: SessionSpec) -> Dict[str, Any]:
    return {
        "session_id": spec.session_id,
        "thresholds": spec.thresholds.to_dict(),
        "strategy": spec.strategy.value,
        "fusion": spec.fusion.value,
        "decision_window": (
            None if spec.decision_window is None else list(spec.decision_window)
        ),
        "parameter_error": spec.parameter_error,
        "integrator": spec.integrator,
        "supervisor": (
            None if spec.supervisor is None else spec.supervisor.to_dict()
        ),
    }


def spec_from_wire(obj: Any) -> SessionSpec:
    if not isinstance(obj, dict):
        raise ProtocolError("spec must be a JSON object")
    session_id = _field(obj, "session_id", str)
    if not session_id:
        raise ProtocolError("session_id must be non-empty")
    thresholds_raw = _field(obj, "thresholds", dict)
    try:
        thresholds = SafetyThresholds.from_dict(thresholds_raw)
        strategy = MitigationStrategy(_field(obj, "strategy", str))
        fusion = FusionRule(_field(obj, "fusion", str))
    except Exception as exc:
        raise ProtocolError(f"malformed spec for {session_id!r}: {exc}") from exc
    window_raw = obj.get("decision_window")
    window: Optional[Tuple[int, int]] = None
    if window_raw is not None:
        if (
            not isinstance(window_raw, list)
            or len(window_raw) != 2
            or not all(
                isinstance(v, int) and not isinstance(v, bool)
                for v in window_raw
            )
        ):
            raise ProtocolError("decision_window must be a pair of integers")
        window = (window_raw[0], window_raw[1])
    parameter_error = _field(obj, "parameter_error", (int, float))
    supervisor_raw = obj.get("supervisor")
    supervisor = None
    if supervisor_raw is not None:
        if not isinstance(supervisor_raw, dict):
            raise ProtocolError("supervisor must be an object or null")
        try:
            supervisor = SupervisorConfig.from_dict(supervisor_raw)
        except Exception as exc:
            raise ProtocolError(
                f"malformed supervisor config for {session_id!r}: {exc}"
            ) from exc
    return SessionSpec(
        session_id=session_id,
        thresholds=thresholds,
        strategy=strategy,
        fusion=fusion,
        decision_window=window,
        parameter_error=float(parameter_error),
        integrator=_field(obj, "integrator", str),
        supervisor=supervisor,
    )

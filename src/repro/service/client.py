"""Async client for one detection-service worker connection.

Thin request-response wrapper over :mod:`repro.service.protocol`: every
call writes one framed request and awaits its response on the same
connection.  :meth:`ServiceClient.pipeline` writes a whole batch before
reading any response — the frontend uses it to push one tick's frames
plus the tick itself to a worker in a single round trip, which is where
the service throughput comes from.

Transport failures (refused, reset, EOF mid-conversation) surface as
:class:`~repro.errors.WorkerUnavailableError` — the frontend's trigger
for re-homing the dead worker's sessions.  A response with ``ok: false``
raises :class:`RemoteOpError` carrying the worker-side exception class
name, so callers can tell a resume miss from a protocol breach.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ProtocolError, ServiceError, WorkerUnavailableError
from repro.fleet.session import SessionSpec, TelemetryFrame
from repro.service.config import DEFAULT_MAX_FRAME_BYTES
from repro.service.protocol import (
    frame_to_wire,
    read_message,
    request,
    spec_to_wire,
    write_message,
)


class RemoteOpError(ServiceError):
    """A worker answered an operation with an error response."""

    def __init__(self, op: str, kind: str, detail: str) -> None:
        super().__init__(f"{op} failed on worker ({kind}): {detail}")
        self.op = op
        self.kind = kind


class ServiceClient:
    """One persistent connection to one worker's RPC port."""

    def __init__(
        self,
        host: str,
        port: int,
        name: Optional[str] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.name = name or f"{host}:{port}"
        self.max_frame_bytes = max_frame_bytes
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._next_id = 0

    async def connect(self) -> "ServiceClient":
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        except (ConnectionError, OSError) as exc:
            raise WorkerUnavailableError(self.name, f"connect: {exc}") from exc
        return self

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def close(self) -> None:
        if self._writer is None:
            return
        writer, self._writer, self._reader = self._writer, None, None
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # peer already gone; nothing left to release

    # -- request/response --------------------------------------------------------

    async def pipeline(
        self, batch: List[Tuple[str, Dict[str, Any]]]
    ) -> List[Dict[str, Any]]:
        """Send a whole batch, then collect the responses, in order.

        One write burst + one read burst = one round trip for the whole
        batch.  Any transport failure raises
        :class:`WorkerUnavailableError`; any ``ok: false`` response
        raises :class:`RemoteOpError` for its operation.
        """
        if self._writer is None or self._reader is None:
            raise WorkerUnavailableError(self.name, "not connected")
        ids: List[int] = []
        try:
            for op, fields in batch:
                msg_id = self._next_id
                self._next_id += 1
                ids.append(msg_id)
                await write_message(
                    self._writer, request(op, msg_id, **fields)
                )
            responses: List[Dict[str, Any]] = []
            for (op, _), msg_id in zip(batch, ids):
                response = await read_message(
                    self._reader, max_bytes=self.max_frame_bytes
                )
                if response is None:
                    raise WorkerUnavailableError(
                        self.name, f"EOF awaiting {op} response"
                    )
                if response.get("id") != msg_id:
                    raise ProtocolError(
                        f"response id {response.get('id')!r} does not match "
                        f"request id {msg_id}"
                    )
                responses.append(response)
            # Only raise after the whole batch is drained, so one failed
            # operation cannot desynchronize the request/response stream.
            for (op, _), response in zip(batch, responses):
                if not response.get("ok"):
                    raise RemoteOpError(
                        op,
                        str(response.get("kind", "ServiceError")),
                        str(response.get("error", "unknown error")),
                    )
            return responses
        except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
            await self.close()
            raise WorkerUnavailableError(self.name, str(exc)) from exc

    async def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        return (await self.pipeline([(op, fields)]))[0]

    # -- typed convenience wrappers ----------------------------------------------

    async def register(self, spec: SessionSpec) -> str:
        response = await self.call("register", spec=spec_to_wire(spec))
        return str(response["session_id"])

    async def resume(self, spec: SessionSpec) -> Dict[str, Any]:
        return await self.call("resume", spec=spec_to_wire(spec))

    async def ingest(self, session_id: str, frame: TelemetryFrame) -> bool:
        response = await self.call(
            "ingest", session_id=session_id, frame=frame_to_wire(frame)
        )
        return bool(response["accepted"])

    async def tick(self, tick: int) -> Dict[str, Any]:
        return await self.call("tick", tick=tick)

    async def checkpoint(self, session_id: str, tick: int) -> int:
        response = await self.call(
            "checkpoint", session_id=session_id, tick=tick
        )
        return int(response["version"])

    async def drain(self) -> List[str]:
        response = await self.call("drain")
        return list(response["checkpointed"])

    async def fingerprints(self) -> Dict[str, Dict[str, Any]]:
        return dict((await self.call("fingerprints"))["fingerprints"])

    async def health(self) -> Dict[str, Any]:
        return dict((await self.call("health"))["status"])

    async def shutdown(self) -> None:
        await self.call("shutdown")

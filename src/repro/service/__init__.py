"""Detection as a service: the network skin over the fleet supervisor.

The :mod:`repro.service` package puts the paper's dynamic-model detector
where deployments need it — between the teleoperation network and the
robot — as a horizontally sharded service over :mod:`repro.fleet`:

- **wire protocol** (:mod:`repro.service.protocol`) — length-prefixed,
  versioned canonical-JSON framing for :class:`~repro.fleet.TelemetryFrame`
  ingest and decision/health responses; canonical encoding keeps
  over-the-wire decision hash chains bit-identical to in-process runs;
- **workers** (:mod:`repro.service.worker`) — one
  :class:`~repro.fleet.FleetSupervisor` per process behind an asyncio
  stream server, with bounded queues, backpressure, staleness E-STOP and
  checkpoint-on-drain SIGTERM shutdown;
- **frontend** (:mod:`repro.service.frontend`) — a stateless
  orchestrator that rendezvous-hashes session ids across the worker
  pool; session state lives in the shared
  :class:`~repro.fleet.SqliteSessionStore`, so a worker SIGKILL re-homes
  its sessions onto survivors, resuming each decision chain from its
  newest verifiable checkpoint;
- **HTTP surface** (:mod:`repro.service.http`) — ``/healthz``, per-tenant
  decision counters (``/tenants``) and a Prometheus scrape endpoint fed
  from :mod:`repro.obs`;
- **client + CLI** (:mod:`repro.service.client`,
  ``python -m repro.service``) — an async client and serve/ingest/scrape
  commands.

Configuration comes from ``REPRO_SVC_*`` environment variables via
:class:`ServiceConfig`.  Everything is stdlib (asyncio) — no new
runtime dependencies.
"""

from repro.service.client import RemoteOpError, ServiceClient
from repro.service.config import ServiceConfig
from repro.service.frontend import (
    ServiceFrontend,
    TickOutcome,
    connect_frontend,
    shard_for,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    encode_message,
    frame_from_wire,
    frame_to_wire,
    read_message,
    spec_from_wire,
    spec_to_wire,
    write_message,
)
from repro.service.spawn import WorkerProcess, spawn_pool
from repro.service.worker import ServiceWorker

__all__ = [
    "PROTOCOL_VERSION",
    "RemoteOpError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceFrontend",
    "ServiceWorker",
    "TickOutcome",
    "WorkerProcess",
    "connect_frontend",
    "encode_message",
    "frame_from_wire",
    "frame_to_wire",
    "read_message",
    "shard_for",
    "spawn_pool",
    "spec_from_wire",
    "spec_to_wire",
    "write_message",
]

"""``python -m repro.service`` — worker / serve / ingest / scrape CLI.

``worker``
    Host one fleet supervisor behind the RPC + HTTP ports and announce
    ``LISTENING <host> <rpc_port> <http_port>`` on stdout (the line
    :class:`repro.service.spawn.WorkerProcess` waits for).  SIGTERM
    checkpoints every live session before exit.

``serve``
    Spawn a worker pool sharing one sqlite store and print the
    placement table; Ctrl-C drains and stops the pool.

``ingest``
    Drive a deterministic fleet campaign through a freshly spawned pool
    (the over-the-wire twin of ``python -m repro.experiments fleet``),
    optionally SIGKILLing one worker mid-campaign.

``scrape``
    Fetch a worker's ``/healthz``, ``/tenants``, or ``/metrics``
    endpoint and print the body.
"""

from __future__ import annotations

import argparse
import asyncio
import json
from dataclasses import replace
from typing import List, Optional
from urllib.request import urlopen

from repro.fleet.config import FleetConfig
from repro.fleet.store import SqliteSessionStore
from repro.service.config import ServiceConfig
from repro.service.http import http_port, start_http_server
from repro.service.spawn import spawn_pool
from repro.service.worker import ServiceWorker


async def _worker_main(
    name: str,
    config: ServiceConfig,
    fleet_config: Optional[FleetConfig],
) -> None:
    store = SqliteSessionStore(config.store_path)
    worker = ServiceWorker(
        name, store, config=config, fleet_config=fleet_config
    )
    await worker.start()
    http_server = await start_http_server(
        worker, config.host, config.http_port
    )
    worker.install_signal_handlers()
    print(
        f"LISTENING {config.host} {worker.port} {http_port(http_server)}",
        flush=True,
    )
    drained = await worker.serve_until_stopped()
    http_server.close()
    await http_server.wait_closed()
    print(f"DRAINED {len(drained)} sessions", flush=True)


def _cmd_worker(args: argparse.Namespace) -> int:
    config = replace(
        ServiceConfig.from_env(),
        host=args.host,
        port=args.port,
        http_port=args.http_port,
        store_path=args.store,
        **(
            {"max_frame_bytes": args.max_frame_bytes}
            if args.max_frame_bytes is not None
            else {}
        ),
    )
    fleet_config = (
        FleetConfig(**json.loads(args.fleet)) if args.fleet else None
    )
    asyncio.run(_worker_main(args.name, config, fleet_config))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    pool = spawn_pool(args.workers, args.store)
    print(f"{'worker':<8} {'rpc':<22} http")
    for proc in pool:
        print(
            f"{proc.name:<8} {proc.host}:{proc.port:<16} "
            f"http://{proc.host}:{proc.http_port}"
        )
    print("serving; Ctrl-C drains and stops the pool", flush=True)
    try:
        for proc in pool:
            proc.wait()
    except KeyboardInterrupt:
        pass
    finally:
        for proc in pool:
            proc.stop(timeout=10.0)
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.experiments.service import (
        format_service_results,
        run_service_campaign,
    )

    kill = (args.kill_at, args.kill_worker) if args.kill_at is not None else None
    result = run_service_campaign(
        store_path=args.store,
        num_sessions=args.sessions,
        ticks=args.ticks,
        seed=args.seed,
        workers=args.workers,
        kill_worker=kill,
    )
    print(format_service_results(result))
    return 0


def _cmd_scrape(args: argparse.Namespace) -> int:
    url = args.url
    if args.prefix:
        sep = "&" if "?" in url else "?"
        url = f"{url}{sep}prefix={args.prefix}"
    with urlopen(url, timeout=10.0) as response:
        print(response.read().decode("utf-8"), end="")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="detection-as-a-service workers, pool, and tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    env_defaults = ServiceConfig.from_env()

    worker = sub.add_parser("worker", help="run one service worker")
    worker.add_argument("--name", default="worker")
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument("--port", type=int, default=0)
    worker.add_argument("--http-port", type=int, default=0)
    worker.add_argument("--store", required=True, help="sqlite store path")
    worker.add_argument(
        "--fleet", default="", help="FleetConfig overrides as JSON"
    )
    worker.add_argument("--max-frame-bytes", type=int, default=None)
    worker.set_defaults(func=_cmd_worker)

    serve = sub.add_parser("serve", help="spawn a worker pool")
    serve.add_argument("--workers", type=int, default=env_defaults.workers)
    serve.add_argument("--store", required=True, help="sqlite store path")
    serve.set_defaults(func=_cmd_serve)

    ingest = sub.add_parser(
        "ingest", help="replay a fleet campaign over the wire"
    )
    ingest.add_argument("--store", required=True, help="sqlite store path")
    ingest.add_argument("--sessions", type=int, default=4)
    ingest.add_argument("--ticks", type=int, default=64)
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument("--workers", type=int, default=env_defaults.workers)
    ingest.add_argument(
        "--kill-at", type=int, default=None,
        help="SIGKILL a worker after this tick round",
    )
    ingest.add_argument(
        "--kill-worker", default="w0", help="which worker to kill"
    )
    ingest.set_defaults(func=_cmd_ingest)

    scrape = sub.add_parser("scrape", help="fetch a worker HTTP endpoint")
    scrape.add_argument("url", help="e.g. http://127.0.0.1:8080/metrics")
    scrape.add_argument("--prefix", default="", help="metric name prefix")
    scrape.set_defaults(func=_cmd_scrape)

    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    raise SystemExit(main())

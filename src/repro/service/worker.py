"""One detection-service worker: a ``FleetSupervisor`` behind a socket.

A worker owns exactly one :class:`~repro.fleet.FleetSupervisor` and
exposes its roster/ingest/tick/checkpoint surface as request-response
operations over the length-prefixed protocol (:mod:`repro.service.protocol`).
Messages on a connection are processed **strictly in arrival order** —
the supervisor itself is single-threaded and tick-driven, so the service
adds no scheduling nondeterminism on top of it: the decision hash chains
a worker produces are the chains an in-process supervisor fed the same
frames would produce.

Fail-operational behaviour at the boundary:

- a malformed or oversized message gets an error response and the
  connection is closed; the worker (and every session on it) keeps
  running;
- an operation that raises is answered with an error response carrying
  the exception class name, and the fault is journalled in
  :attr:`ServiceWorker.faults` — never silently swallowed;
- SIGTERM triggers **checkpoint-on-drain** shutdown: every live session
  is flushed to the shared session store (:meth:`FleetSupervisor.drain`)
  before the process exits, so a clean stop loses nothing.
"""

from __future__ import annotations

import asyncio
import signal
from typing import Any, Dict, List, Optional

from repro.errors import ProtocolError
from repro.fleet.config import FleetConfig
from repro.fleet.store import SessionStore
from repro.fleet.supervisor import FleetSupervisor, TickReport
from repro.obs.runtime import get_runtime
from repro.service.config import ServiceConfig
from repro.service.protocol import (
    error_response,
    frame_from_wire,
    ok_response,
    read_message,
    spec_from_wire,
    write_message,
)


def _report_to_wire(report: TickReport) -> Dict[str, Any]:
    return {
        "tick": report.tick,
        "frames_processed": report.frames_processed,
        "quarantined": [list(item) for item in report.quarantined],
        "killed": [list(item) for item in report.killed],
        "checkpointed": list(report.checkpointed),
    }


class ServiceWorker:
    """Hosts one fleet supervisor behind an asyncio stream server."""

    def __init__(
        self,
        name: str,
        store: SessionStore,
        config: Optional[ServiceConfig] = None,
        fleet_config: Optional[FleetConfig] = None,
    ) -> None:
        self.name = name
        self.config = config or ServiceConfig.from_env()
        self.fleet = FleetSupervisor(store=store, config=fleet_config)
        #: Fault journal: every exception an operation raised, every
        #: connection that died mid-conversation.  Nothing is swallowed
        #: silently (RPR008 quarantine discipline).
        self.faults: List[str] = []
        #: Per-tenant decision counts (feeds ``/tenants`` and, when obs
        #: is enabled, the ``repro_svc_decisions_total_*`` counters).
        self.tenant_decisions: Dict[str, int] = {}
        self.draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop = asyncio.Event()
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._obs = get_runtime()
        self._tenant_counters: Dict[str, Any] = {}

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )

    @property
    def port(self) -> int:
        assert self._server is not None, "worker not started"
        return int(self._server.sockets[0].getsockname()[1])

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → checkpoint-on-drain shutdown."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, self.request_stop)

    def request_stop(self) -> None:
        self._stop.set()

    async def serve_until_stopped(self) -> List[str]:
        """Serve until :meth:`request_stop`; drain, close, and report.

        Returns the session ids whose state was checkpointed by the
        shutdown drain.
        """
        await self._stop.wait()
        self.draining = True
        drained = self.fleet.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Connection handlers notice the stop event and return on their
        # own; awaiting them (instead of cancelling) keeps shutdown quiet.
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._obs.log_event(
            "svc_worker_drained", worker=self.name, sessions=drained
        )
        return drained

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one peer; strict FIFO request/response, no interleaving."""
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while not self._stop.is_set():
                message = await self._next_message(reader, writer)
                if message is None:
                    break
                await write_message(writer, self.dispatch(message))
        except (ConnectionError, asyncio.IncompleteReadError) as exc:
            self.faults.append(
                f"connection dropped mid-conversation: {exc!r}"
            )
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError) as exc:
                self.faults.append(f"close failed: {exc!r}")

    async def _next_message(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[Dict[str, Any]]:
        """One framed request, or ``None`` on EOF/stop/framing breach.

        The read races the stop event so a connection idling in a read
        never has to be cancelled — on SIGTERM the handler returns on its
        own, which keeps checkpoint-on-drain shutdown free of spurious
        ``CancelledError`` teardown.
        """
        read_task = asyncio.ensure_future(
            read_message(reader, max_bytes=self.config.max_frame_bytes)
        )
        stop_task = asyncio.ensure_future(self._stop.wait())
        try:
            await asyncio.wait(
                {read_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            stop_task.cancel()
            if not read_task.done():
                read_task.cancel()
        try:
            if read_task.cancelled():
                return None
            return await read_task
        except asyncio.CancelledError:
            return None
        except ProtocolError as exc:
            # Framing is unrecoverable mid-stream: answer, then hang up.
            # The worker itself stays healthy.
            await write_message(
                writer, error_response(-1, str(exc), kind="ProtocolError")
            )
            return None

    # -- operation dispatch ------------------------------------------------------

    def dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one decoded request, returning its response payload."""
        raw_id = message.get("id")
        msg_id = raw_id if isinstance(raw_id, int) else -1
        op = message.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return error_response(
                msg_id, f"unknown op {op!r}", kind="ProtocolError"
            )
        try:
            return ok_response(msg_id, **handler(message))
        except ProtocolError as exc:
            return error_response(msg_id, str(exc), kind="ProtocolError")
        except Exception as exc:  # noqa: BLE001 — journalled, never silent
            self.faults.append(f"{op}: {type(exc).__name__}: {exc}")
            return error_response(msg_id, str(exc), kind=type(exc).__name__)

    def _op_register(self, message: Dict[str, Any]) -> Dict[str, Any]:
        spec = spec_from_wire(message.get("spec"))
        session = self.fleet.register(spec)
        return {"session_id": session.session_id}

    def _op_resume(self, message: Dict[str, Any]) -> Dict[str, Any]:
        spec = spec_from_wire(message.get("spec"))
        session = self.fleet.resume(spec)
        return {
            "session_id": session.session_id,
            "frames_processed": session.frames_processed,
            "last_checkpoint_tick": session.last_checkpoint_tick,
        }

    def _op_ingest(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session_id = message.get("session_id")
        if not isinstance(session_id, str):
            raise ProtocolError("ingest requires a string session_id")
        frame = frame_from_wire(message.get("frame"))
        accepted = self.fleet.ingest(session_id, frame)
        return {"accepted": accepted}

    def _op_tick(self, message: Dict[str, Any]) -> Dict[str, Any]:
        tick = message.get("tick")
        if not isinstance(tick, int) or isinstance(tick, bool):
            raise ProtocolError("tick requires an integer tick number")
        before = {
            sid: session.decisions
            for sid, session in self.fleet.sessions.items()
        }
        report = self.fleet.tick(tick)
        decisions: Dict[str, List[Dict[str, Any]]] = {}
        for sid in sorted(self.fleet.sessions):
            session = self.fleet.sessions[sid]
            delta = session.decisions - before.get(sid, 0)
            if delta <= 0:
                continue
            recent = list(session.recent)
            decisions[sid] = recent[-delta:] if delta <= len(recent) else recent
            self.tenant_decisions[sid] = (
                self.tenant_decisions.get(sid, 0) + delta
            )
            if self._obs.enabled:
                self._tenant_counter(sid).inc(delta)
        return {"report": _report_to_wire(report), "decisions": decisions}

    def _op_checkpoint(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session_id = message.get("session_id")
        tick = message.get("tick")
        if not isinstance(session_id, str):
            raise ProtocolError("checkpoint requires a string session_id")
        if not isinstance(tick, int) or isinstance(tick, bool):
            raise ProtocolError("checkpoint requires an integer tick")
        snapshot = self.fleet.checkpoint(session_id, tick)
        return {"session_id": session_id, "version": snapshot.version}

    def _op_drain(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return {"checkpointed": self.fleet.drain()}

    def _op_fingerprints(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return {"fingerprints": self.fleet.fingerprints()}

    def _op_health(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return {"status": self.health_payload()}

    def _op_shutdown(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self.request_stop()
        return {"stopping": True}

    # -- status surfaces (shared with the HTTP endpoints) ------------------------

    def health_payload(self) -> Dict[str, Any]:
        sessions = self.fleet.sessions
        quarantined = sorted(
            sid for sid, s in sessions.items() if s.quarantined
        )
        return {
            "status": "draining" if self.draining else "ok",
            "worker": self.name,
            "sessions": len(sessions),
            "quarantined": quarantined,
            "tick_count": self.fleet.tick_count,
            "decisions": sum(s.decisions for s in sessions.values()),
            "faults": len(self.faults),
        }

    def tenants_payload(self) -> Dict[str, Any]:
        """Per-tenant decision counters (works with obs disabled too)."""
        tenants = {}
        for sid in sorted(self.fleet.sessions):
            session = self.fleet.sessions[sid]
            tenants[sid] = {
                "decisions": session.decisions,
                "frames_processed": session.frames_processed,
                "frames_rejected": session.frames_rejected,
                "health": session.health,
                "quarantined": session.quarantined,
                "digest": session.digest,
            }
        return tenants

    def registry_text(self, prefix: str = "") -> str:
        """Prometheus exposition of the process registry (``/metrics``)."""
        return self._obs.registry.to_prometheus(prefix)

    def _tenant_counter(self, session_id: str) -> Any:
        counter = self._tenant_counters.get(session_id)
        if counter is None:
            slug = "".join(
                ch if (ch.isalnum() or ch == "_") else "_" for ch in session_id
            )
            counter = self._obs.registry.counter(
                f"repro_svc_decisions_total_{slug}",
                f"service decisions streamed for session {session_id}",
            )
            self._tenant_counters[session_id] = counter
        return counter

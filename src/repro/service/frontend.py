"""Stateless service frontend: shards sessions across a worker pool.

The frontend owns no detector state — only session *specs* and the
current session→worker placement.  Placement uses **rendezvous
(highest-random-weight) hashing** over the live worker names, so losing
a worker moves exactly that worker's sessions and nobody else's.  All
durable session state lives in the shared
:class:`~repro.fleet.SqliteSessionStore` the workers write checkpoints
to, which is what makes the frontend restartable and sessions
re-homeable: when a worker dies mid-stream
(:class:`~repro.errors.WorkerUnavailableError` on its connection), the
frontend resumes each of its sessions on the rendezvous successor from
the newest verifiable checkpoint and tells the caller where each
session's telemetry cursor must rewind to — the same recovery protocol
:func:`repro.experiments.fleet.run_fleet_campaign` follows in-process.

Each tick, the frontend pushes every worker its sessions' frames *plus*
the tick advance as one pipelined batch (one round trip per worker per
tick), awaiting the workers concurrently.  Within a worker the batch is
processed strictly in order, so per-session decision chains stay exactly
the chains an in-process supervisor would produce.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Dict, List, Optional

from repro.errors import ServiceError, WorkerUnavailableError
from repro.fleet.session import SessionSpec, TelemetryFrame
from repro.obs.runtime import get_runtime
from repro.service.client import RemoteOpError, ServiceClient
from repro.service.protocol import frame_to_wire


def shard_for(session_id: str, workers: List[str]) -> str:
    """Rendezvous hash: the worker that owns ``session_id``.

    Every (worker, session) pair gets a pseudo-random weight from one
    SHA-256; the highest weight wins.  Removing a worker re-homes only
    its own sessions — every other pair's weight is untouched.
    """
    if not workers:
        raise ServiceError("no workers available to shard onto")
    return max(
        sorted(workers),
        key=lambda w: sha256(f"{w}|{session_id}".encode("utf-8")).digest(),
    )


@dataclass
class TickOutcome:
    """What one frontend tick round did, merged across the pool."""

    tick: int
    #: Per-session ingest verdicts (False = backpressure/quarantined).
    accepted: Dict[str, bool] = field(default_factory=dict)
    #: Per-session decision records produced this tick, in chain order.
    decisions: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    #: Per-worker tick reports (wire form).
    reports: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Sessions re-homed this round → checkpointed ``frames_processed``
    #: the caller must rewind each telemetry cursor to.
    rewinds: Dict[str, int] = field(default_factory=dict)
    #: Sessions whose owner died with no usable checkpoint, with reason.
    lost: Dict[str, str] = field(default_factory=dict)
    #: Workers that died this round.
    dead_workers: List[str] = field(default_factory=list)


class ServiceFrontend:
    """Routes specs, frames, and ticks to a pool of connected workers."""

    def __init__(self, clients: Dict[str, ServiceClient]) -> None:
        if not clients:
            raise ServiceError("frontend needs at least one worker")
        self.workers: Dict[str, ServiceClient] = dict(clients)
        self.specs: Dict[str, SessionSpec] = {}
        self.owners: Dict[str, str] = {}
        #: Sessions lost for good (owner died, no verifiable checkpoint).
        self.lost: Dict[str, str] = {}
        self._obs = get_runtime()

    # -- placement ---------------------------------------------------------------

    def owner_of(self, session_id: str) -> str:
        return self.owners[session_id]

    async def register(self, spec: SessionSpec) -> str:
        """Place and register one session; returns the owning worker."""
        if spec.session_id in self.specs:
            raise ServiceError(f"session {spec.session_id!r} already placed")
        owner = shard_for(spec.session_id, list(self.workers))
        await self.workers[owner].register(spec)
        self.specs[spec.session_id] = spec
        self.owners[spec.session_id] = owner
        return owner

    # -- the tick round ----------------------------------------------------------

    async def run_tick(
        self, tick: int, frames: Dict[str, TelemetryFrame]
    ) -> TickOutcome:
        """Push one tick: each worker gets its frames + the tick advance.

        Every live worker is ticked even when it has no frames this round
        (staleness watchdogs are tick-driven).  A worker whose connection
        fails is declared dead and its sessions are re-homed before this
        returns; the outcome's ``rewinds`` say where their telemetry
        cursors must rewind to, and their frames from *this* round are
        dropped (they are part of what the replay re-delivers).
        """
        outcome = TickOutcome(tick=tick)
        batches: Dict[str, List[Any]] = {name: [] for name in self.workers}
        frame_order: Dict[str, List[str]] = {name: [] for name in self.workers}
        for sid in sorted(frames):
            owner = self.owners.get(sid)
            if owner is None or owner not in batches:
                raise ServiceError(f"session {sid!r} has no live owner")
            batches[owner].append(
                ("ingest", {"session_id": sid, "frame": frame_to_wire(frames[sid])})
            )
            frame_order[owner].append(sid)
        for name in batches:
            batches[name].append(("tick", {"tick": tick}))

        names = sorted(batches)
        results = await asyncio.gather(
            *(self.workers[name].pipeline(batches[name]) for name in names),
            return_exceptions=True,
        )
        dead: List[str] = []
        for name, result in zip(names, results):
            if isinstance(result, WorkerUnavailableError):
                dead.append(name)
                continue
            if isinstance(result, BaseException):
                raise result
            *ingests, ticked = result
            for sid, response in zip(frame_order[name], ingests):
                outcome.accepted[sid] = bool(response["accepted"])
            outcome.reports[name] = ticked["report"]
            for sid, records in ticked["decisions"].items():
                outcome.decisions[sid] = records

        for name in dead:
            self._obs.log_event("svc_worker_dead", worker=name, tick=tick)
            rewinds = await self._rehome(name)
            outcome.rewinds.update(rewinds)
            outcome.dead_workers.append(name)
        outcome.lost.update(
            {sid: reason for sid, reason in self.lost.items()}
        )
        return outcome

    # -- recovery ----------------------------------------------------------------

    async def _rehome(self, dead: str) -> Dict[str, int]:
        """Move a dead worker's sessions to their rendezvous successors.

        Each moved session resumes from its newest verifiable checkpoint
        in the shared store; the returned map says which frame count each
        resumed session replays from.  A session with no usable
        checkpoint is recorded in :attr:`lost` — visible, not silent.
        """
        client = self.workers.pop(dead, None)
        if client is not None:
            await client.close()
        if not self.workers:
            raise ServiceError(
                f"worker {dead!r} died and no workers remain"
            )
        moved = sorted(
            sid for sid, owner in self.owners.items() if owner == dead
        )
        rewinds: Dict[str, int] = {}
        for sid in moved:
            successor = shard_for(sid, list(self.workers))
            try:
                info = await self.workers[successor].resume(self.specs[sid])
            except RemoteOpError as exc:
                del self.owners[sid]
                self.lost[sid] = f"not resumable after {dead!r} died: {exc}"
                self._obs.log_event(
                    "svc_session_lost", session=sid, worker=dead, error=str(exc)
                )
                continue
            self.owners[sid] = successor
            rewinds[sid] = int(info["frames_processed"])
            self._obs.log_event(
                "svc_session_rehomed",
                session=sid,
                src=dead,
                dst=successor,
                replay_from=rewinds[sid],
            )
        return rewinds

    # -- pool-wide surfaces ------------------------------------------------------

    async def fingerprints(self) -> Dict[str, Dict[str, Any]]:
        """Merged per-session fingerprints from every live worker."""
        merged: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self.workers):
            merged.update(await self.workers[name].fingerprints())
        return {sid: merged[sid] for sid in sorted(merged)}

    async def drain_all(self) -> Dict[str, List[str]]:
        """Flush every worker's sessions to the store (clean shutdown)."""
        return {
            name: await self.workers[name].drain()
            for name in sorted(self.workers)
        }

    async def close(self, shutdown_workers: bool = False) -> None:
        for name in sorted(self.workers):
            client = self.workers[name]
            if shutdown_workers and client.connected:
                try:
                    await client.shutdown()
                except (WorkerUnavailableError, RemoteOpError):
                    pass  # already gone: closing is the goal
            await client.close()


async def connect_frontend(
    addresses: Dict[str, "tuple[str, int]"],
    max_frame_bytes: Optional[int] = None,
) -> ServiceFrontend:
    """A frontend connected to ``{name: (host, port)}`` workers."""
    clients: Dict[str, ServiceClient] = {}
    for name in sorted(addresses):
        host, port = addresses[name]
        kwargs: Dict[str, Any] = {}
        if max_frame_bytes is not None:
            kwargs["max_frame_bytes"] = max_frame_bytes
        client = ServiceClient(host, port, name=name, **kwargs)
        clients[name] = await client.connect()
    return ServiceFrontend(clients)

"""Worker process management for the service pool.

:class:`WorkerProcess` launches ``python -m repro.service worker`` as a
child process, waits for its ``LISTENING <host> <rpc_port> <http_port>``
announcement on stdout, and exposes the three lifecycle verbs the chaos
and shutdown paths need: ``kill`` (SIGKILL — the crash the re-homing
protocol recovers from), ``terminate`` (SIGTERM — triggers the worker's
checkpoint-on-drain shutdown), and ``wait``.

The child inherits the parent environment untouched (``PYTHONPATH``,
``REPRO_OBS``, ``REPRO_FLEET_*`` knobs all pass through); fleet tuning
that must differ from the environment travels as an explicit ``--fleet``
JSON argument, never via ambient state.
"""

from __future__ import annotations

import json
import subprocess
import sys
from dataclasses import asdict
from typing import List, Optional

from repro.errors import ServiceError
from repro.fleet.config import FleetConfig


class WorkerProcess:
    """One spawned service-worker child process."""

    def __init__(
        self,
        name: str,
        store_path: str,
        host: str = "127.0.0.1",
        fleet_config: Optional[FleetConfig] = None,
        max_frame_bytes: Optional[int] = None,
    ) -> None:
        self.name = name
        self.store_path = store_path
        self.host = host
        self.fleet_config = fleet_config
        self.max_frame_bytes = max_frame_bytes
        self.process: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self.http_port: Optional[int] = None

    def command(self) -> List[str]:
        argv = [
            sys.executable,
            "-m",
            "repro.service",
            "worker",
            "--name",
            self.name,
            "--host",
            self.host,
            "--port",
            "0",
            "--http-port",
            "0",
            "--store",
            self.store_path,
        ]
        if self.fleet_config is not None:
            argv += ["--fleet", json.dumps(asdict(self.fleet_config))]
        if self.max_frame_bytes is not None:
            argv += ["--max-frame-bytes", str(self.max_frame_bytes)]
        return argv

    def start(self) -> "WorkerProcess":
        """Spawn the child and block until it announces its ports."""
        self.process = subprocess.Popen(
            self.command(),
            stdout=subprocess.PIPE,
            text=True,
        )
        assert self.process.stdout is not None
        while True:
            line = self.process.stdout.readline()
            if not line:
                code = self.process.wait()
                raise ServiceError(
                    f"worker {self.name!r} exited (rc={code}) before "
                    "announcing its ports"
                )
            parts = line.split()
            if len(parts) == 4 and parts[0] == "LISTENING":
                self.host = parts[1]
                self.port = int(parts[2])
                self.http_port = int(parts[3])
                return self

    @property
    def address(self) -> "tuple[str, int]":
        if self.port is None:
            raise ServiceError(f"worker {self.name!r} not started")
        return (self.host, self.port)

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL — the crash the session re-homing protocol recovers."""
        if self.process is not None:
            self.process.kill()

    def terminate(self) -> None:
        """SIGTERM — the worker drains (checkpoints all sessions) first."""
        if self.process is not None:
            self.process.terminate()

    def wait(self, timeout: Optional[float] = None) -> Optional[int]:
        if self.process is None:
            return None
        code = self.process.wait(timeout=timeout)
        if self.process.stdout is not None:
            self.process.stdout.close()
        return code

    def stop(self, timeout: float = 10.0) -> Optional[int]:
        """Graceful stop: SIGTERM (drain), escalate to SIGKILL on timeout."""
        if self.process is None:
            return None
        if self.process.poll() is None:
            self.process.terminate()
            try:
                return self.wait(timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
        return self.wait(timeout)


def spawn_pool(
    count: int,
    store_path: str,
    host: str = "127.0.0.1",
    fleet_config: Optional[FleetConfig] = None,
    max_frame_bytes: Optional[int] = None,
) -> List[WorkerProcess]:
    """``count`` started workers sharing one session store."""
    pool = [
        WorkerProcess(
            f"w{i}",
            store_path,
            host=host,
            fleet_config=fleet_config,
            max_frame_bytes=max_frame_bytes,
        )
        for i in range(count)
    ]
    started: List[WorkerProcess] = []
    try:
        for worker in pool:
            started.append(worker.start())
    except ServiceError:
        for worker in started:
            worker.kill()
            worker.wait(timeout=5.0)
        raise
    return pool

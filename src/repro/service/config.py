"""Service-layer tuning, resolved through :mod:`repro.envcfg`.

Every knob has a ``REPRO_SVC_*`` environment variable (the service's
whole env surface, greppable here and documented in the README):

======================================  =======================================
``REPRO_SVC_HOST``                      bind address for worker RPC/HTTP
``REPRO_SVC_PORT``                      worker RPC port (0 = ephemeral)
``REPRO_SVC_HTTP_PORT``                 worker HTTP port (0 = ephemeral)
``REPRO_SVC_WORKERS``                   worker processes under ``serve``
``REPRO_SVC_MAX_FRAME_BYTES``           wire-message payload size cap
``REPRO_SVC_STORE``                     shared sqlite session-store path
``REPRO_SVC_DRAIN_TIMEOUT_S``           wait for a SIGTERM'd worker to drain
======================================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.envcfg import env_float, env_int, env_str

ENV_HOST = "REPRO_SVC_HOST"
ENV_PORT = "REPRO_SVC_PORT"
ENV_HTTP_PORT = "REPRO_SVC_HTTP_PORT"
ENV_WORKERS = "REPRO_SVC_WORKERS"
ENV_MAX_FRAME_BYTES = "REPRO_SVC_MAX_FRAME_BYTES"
ENV_STORE = "REPRO_SVC_STORE"
ENV_DRAIN_TIMEOUT_S = "REPRO_SVC_DRAIN_TIMEOUT_S"

#: Default cap on one wire message's payload (canonical JSON bytes).
#: Telemetry frames are a few hundred bytes; anything near the cap is a
#: malformed or hostile peer, not a big frame.
DEFAULT_MAX_FRAME_BYTES = 262_144


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning of the detection service (frontend + workers).

    ``max_frame_bytes`` bounds every wire message — a length prefix
    above it is rejected before any allocation, so a hostile or broken
    peer cannot balloon a worker.  ``drain_timeout_s`` is how long the
    orchestrator waits for a SIGTERM'd worker to finish its
    checkpoint-on-drain shutdown before escalating to SIGKILL.
    """

    host: str = "127.0.0.1"
    port: int = 0
    http_port: int = 0
    workers: int = 2
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    store_path: str = "service_sessions.sqlite"
    drain_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_frame_bytes < 64:
            raise ValueError("max_frame_bytes must be >= 64")
        if self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be positive")

    @classmethod
    def from_env(cls) -> "ServiceConfig":
        """A config with any set ``REPRO_SVC_*`` overrides applied."""
        defaults = cls()

        def pick_int(name: str, default: int) -> int:
            value = env_int(name)
            return default if value is None else value

        drain = env_float(ENV_DRAIN_TIMEOUT_S)
        return cls(
            host=env_str(ENV_HOST) or defaults.host,
            port=pick_int(ENV_PORT, defaults.port),
            http_port=pick_int(ENV_HTTP_PORT, defaults.http_port),
            workers=pick_int(ENV_WORKERS, defaults.workers),
            max_frame_bytes=pick_int(
                ENV_MAX_FRAME_BYTES, defaults.max_frame_bytes
            ),
            store_path=env_str(ENV_STORE) or defaults.store_path,
            drain_timeout_s=(
                defaults.drain_timeout_s if drain is None else drain
            ),
        )

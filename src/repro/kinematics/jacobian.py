"""Analytic position Jacobian of the spherical positioning arm.

The tool tip is ``p = rcm + d * u(q1, q2)``.  Rotating joint *i* about its
axis ``a_i`` moves the tool axis as ``du/dq_i = a_i x u``, so

    dp/dq1 = d * (a1 x u)      with a1 = z_hat (base axis)
    dp/dq2 = d * (a2 x u)      with a2 = Rz(q1) Rx(alpha1) z_hat
    dp/dd  = u

The Jacobian maps joint rates ``(q1_dot, q2_dot, d_dot)`` to tool-tip
velocity in the world frame.  The detector uses it to translate joint
velocities into end-effector velocities when deciding whether a command
would cause a >1 mm jump.
"""

from __future__ import annotations

import numpy as np

from repro.kinematics.spherical_arm import SphericalArm

_Z_HAT = np.array([0.0, 0.0, 1.0])


def position_jacobian(arm: SphericalArm, q: np.ndarray) -> np.ndarray:
    """3x3 Jacobian of the tool-tip position w.r.t. ``q = (q1, q2, d)``.

    Hand-expanded cross products: this routine is evaluated several times
    per dynamics derivative call, so it avoids ``np.cross`` overhead.
    """
    q1, q2, d = float(q[0]), float(q[1]), float(q[2])
    ux, uy, uz = arm.tool_axis(q1, q2)
    ax, ay, az = arm.joint2_axis(q1)
    # column 0: d * (z_hat x u); column 1: d * (a2 x u); column 2: u
    return np.array(
        [
            [-d * uy, d * (ay * uz - az * uy), ux],
            [d * ux, d * (az * ux - ax * uz), uy],
            [0.0, d * (ax * uy - ay * ux), uz],
        ]
    )


def tip_velocity(arm: SphericalArm, q: np.ndarray, qdot: np.ndarray) -> np.ndarray:
    """Tool-tip velocity (m/s) for joint state ``q`` and joint rates ``qdot``."""
    return position_jacobian(arm, q) @ np.asarray(qdot, dtype=float)


def tip_speed(arm: SphericalArm, q: np.ndarray, qdot: np.ndarray) -> float:
    """Magnitude of the tool-tip velocity (m/s)."""
    return float(np.linalg.norm(tip_velocity(arm, q, qdot)))

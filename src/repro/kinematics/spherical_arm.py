"""Forward and inverse kinematics of the RAVEN II positioning mechanism.

The RAVEN II arm is a spherical serial mechanism: joint-1 and joint-2 axes
intersect at the remote centre of motion (RCM) with fixed *cone angles*
between successive axes (75 degrees between base axis and joint-2 axis,
52 degrees between joint-2 axis and the tool axis, per the published RAVEN
design).  Joint 3 translates the instrument along the tool axis.

The tool-axis direction in the base frame is

    u(q1, q2) = Rz(q1) @ Rx(alpha1) @ Rz(q2) @ Rx(alpha2) @ z_hat

and the tool tip position relative to the RCM is ``p = d * u`` where ``d``
is the insertion depth (joint 3).

Closed-form inverse kinematics exploits that the z-component of
``Rz(q2) @ Rx(alpha2) @ z_hat`` is the constant ``cos(alpha2)``, giving a
single trigonometric equation ``A sin(q1) + B cos(q1) = C`` for joint 1 with
(up to) two solution branches; joint 2 then follows directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.errors import InverseKinematicsError
from repro.kinematics.frames import rot_x, rot_z

_Z_HAT = np.array([0.0, 0.0, 1.0])


@dataclass(frozen=True)
class ArmGeometry:
    """Geometric parameters of one RAVEN II arm.

    Attributes
    ----------
    alpha1:
        Cone angle between the base (joint-1) axis and the joint-2 axis,
        radians.  RAVEN II uses 75 degrees.
    alpha2:
        Cone angle between the joint-2 axis and the tool axis, radians.
        RAVEN II uses 52 degrees.
    rcm_position:
        Position of the remote centre of motion in the world frame (m).
    """

    alpha1: float = math.radians(75.0)
    alpha2: float = math.radians(52.0)
    rcm_position: np.ndarray = field(
        default_factory=lambda: np.zeros(3), compare=False
    )

    def __post_init__(self) -> None:
        if not (0.0 < self.alpha1 < math.pi):
            raise ValueError("alpha1 must be in (0, pi)")
        if not (0.0 < self.alpha2 < math.pi):
            raise ValueError("alpha2 must be in (0, pi)")


class SphericalArm:
    """Forward/inverse kinematics of the 2R + prismatic positioning chain.

    Joint vector convention: ``q = (q1, q2, d)`` with ``q1`` and ``q2`` in
    radians and insertion depth ``d`` in metres (``d > 0``).
    """

    def __init__(self, geometry: Optional[ArmGeometry] = None) -> None:
        self.geometry = geometry or ArmGeometry()
        self._sin_a1 = math.sin(self.geometry.alpha1)
        self._cos_a1 = math.cos(self.geometry.alpha1)
        self._sin_a2 = math.sin(self.geometry.alpha2)
        self._cos_a2 = math.cos(self.geometry.alpha2)

    # -- forward ------------------------------------------------------------

    def tool_axis(self, q1: float, q2: float) -> np.ndarray:
        """Unit vector along the instrument axis in the world frame.

        Closed-form expansion of ``Rz(q1) Rx(a1) Rz(q2) Rx(a2) z_hat`` —
        this is the hottest kinematic routine (the dynamics evaluate it
        several times per derivative call), so it avoids matrix products.
        """
        sa1, ca1 = self._sin_a1, self._cos_a1
        sa2, ca2 = self._sin_a2, self._cos_a2
        s2, c2 = math.sin(q2), math.cos(q2)
        # f = Rz(q2) @ (0, -sin a2, cos a2)
        fx, fy, fz = sa2 * s2, -sa2 * c2, ca2
        # g = Rx(a1) @ f
        gx = fx
        gy = ca1 * fy - sa1 * fz
        gz = sa1 * fy + ca1 * fz
        # u = Rz(q1) @ g
        s1, c1 = math.sin(q1), math.cos(q1)
        return np.array([c1 * gx - s1 * gy, s1 * gx + c1 * gy, gz])

    def joint2_axis(self, q1: float) -> np.ndarray:
        """Unit vector of the joint-2 rotation axis in the world frame."""
        sa1, ca1 = self._sin_a1, self._cos_a1
        return np.array([sa1 * math.sin(q1), -sa1 * math.cos(q1), ca1])

    def forward(self, q: np.ndarray) -> np.ndarray:
        """Tool-tip position in the world frame for joints ``q = (q1, q2, d)``."""
        q1, q2, d = float(q[0]), float(q[1]), float(q[2])
        return self.geometry.rcm_position + d * self.tool_axis(q1, q2)

    # -- inverse ------------------------------------------------------------

    def inverse(
        self, position: np.ndarray, reference: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Joint vector reaching ``position`` (world frame).

        Parameters
        ----------
        position:
            Desired tool-tip position in the world frame.
        reference:
            Optional current joint vector; when both solution branches
            exist, the one closer to ``reference`` (in joint space) is
            returned.  Without a reference the branch with the smaller
            ``|q1|`` is chosen.

        Raises
        ------
        InverseKinematicsError
            If the position is outside the reachable cone of the mechanism
            or coincides with the RCM.
        """
        g = self.geometry
        rel = np.asarray(position, dtype=float) - g.rcm_position
        d = float(np.linalg.norm(rel))
        if d < 1e-9:
            raise InverseKinematicsError(
                "target position coincides with the remote centre of motion"
            )
        u = rel / d

        # v = Rx(-alpha1) Rz(-q1) u must equal Rz(q2) Rx(alpha2) z_hat,
        # whose z-component is the constant cos(alpha2):
        #   -sin(alpha1) * (-sin(q1) ux + cos(q1) uy) + cos(alpha1) uz
        #       = cos(alpha2)
        ux, uy, uz = u
        a = math.sin(g.alpha1) * ux
        b = -math.sin(g.alpha1) * uy
        c = math.cos(g.alpha2) - math.cos(g.alpha1) * uz
        r = math.hypot(a, b)
        if r < 1e-12 or abs(c) > r + 1e-12:
            raise InverseKinematicsError(
                f"position {position!r} is outside the reachable cone"
            )
        # a sin(q1) + b cos(q1) = r cos(q1 - phi) with phi = atan2(a, b).
        phi = math.atan2(a, b)
        delta = math.acos(max(-1.0, min(1.0, c / r)))
        candidates = []
        for q1 in (phi + delta, phi - delta):
            q1 = _wrap_angle(q1)
            q2 = self._solve_q2(u, q1)
            candidates.append(np.array([q1, q2, d]))

        if reference is None:
            candidates.sort(key=lambda s: abs(s[0]))
            return candidates[0]
        ref = np.asarray(reference, dtype=float)
        candidates.sort(
            key=lambda s: abs(_wrap_angle(s[0] - ref[0]))
            + abs(_wrap_angle(s[1] - ref[1]))
        )
        return candidates[0]

    def _solve_q2(self, u: np.ndarray, q1: float) -> float:
        """Joint 2 from the tool axis once joint 1 is known."""
        g = self.geometry
        v = rot_x(-g.alpha1) @ rot_z(-q1) @ u
        # v = Rz(q2) Rx(alpha2) z_hat = (sin a2 sin q2, -sin a2 cos q2, cos a2)
        return math.atan2(v[0], -v[1])

    # -- misc ---------------------------------------------------------------

    def reachable(self, position: np.ndarray) -> bool:
        """Whether ``position`` lies inside the mechanism's reachable cone."""
        try:
            self.inverse(position)
        except InverseKinematicsError:
            return False
        return True

    def cone_angle_range(self) -> Tuple[float, float]:
        """(min, max) angle between the base axis and any reachable tool axis."""
        g = self.geometry
        return abs(g.alpha1 - g.alpha2), min(math.pi, g.alpha1 + g.alpha2)


def _wrap_angle(angle: float) -> float:
    """Wrap an angle into (-pi, pi]."""
    wrapped = math.fmod(angle + math.pi, 2.0 * math.pi)
    if wrapped <= 0.0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi

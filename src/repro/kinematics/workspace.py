"""Workspace and joint-limit checks for the RAVEN II positioning arm.

The RAVEN control software verifies that desired joint positions stay
within the robot workspace before commanding the motors; the same limits
are reused by the dynamic-model detector to classify estimated next states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro import constants
from repro.errors import WorkspaceError


@dataclass(frozen=True)
class Workspace:
    """Joint-limit box for the three positioning joints.

    Attributes
    ----------
    joint1_limits, joint2_limits:
        (min, max) in radians for the two rotational joints.
    joint3_limits:
        (min, max) insertion depth in metres.
    """

    joint1_limits: Tuple[float, float] = constants.JOINT1_LIMITS_RAD
    joint2_limits: Tuple[float, float] = constants.JOINT2_LIMITS_RAD
    joint3_limits: Tuple[float, float] = constants.JOINT3_LIMITS_M

    def __post_init__(self) -> None:
        for lo, hi in (self.joint1_limits, self.joint2_limits, self.joint3_limits):
            if lo >= hi:
                raise ValueError(f"invalid joint limit range ({lo}, {hi})")

    @property
    def lower(self) -> np.ndarray:
        """Lower joint-limit vector."""
        return np.array(
            [self.joint1_limits[0], self.joint2_limits[0], self.joint3_limits[0]]
        )

    @property
    def upper(self) -> np.ndarray:
        """Upper joint-limit vector."""
        return np.array(
            [self.joint1_limits[1], self.joint2_limits[1], self.joint3_limits[1]]
        )

    def contains(self, q: Sequence[float], margin: float = 0.0) -> bool:
        """Whether joint vector ``q`` lies within the limits.

        ``margin`` shrinks the box symmetrically (useful for conservative
        checks on *desired* positions, matching the RAVEN software which
        rejects targets near the boundary).
        """
        q = np.asarray(q, dtype=float)
        return bool(
            np.all(q >= self.lower + margin) and np.all(q <= self.upper - margin)
        )

    def clamp(self, q: Sequence[float]) -> np.ndarray:
        """Project joint vector ``q`` onto the limit box."""
        return np.clip(np.asarray(q, dtype=float), self.lower, self.upper)

    def require(self, q: Sequence[float], what: str = "joint vector") -> None:
        """Raise :class:`WorkspaceError` if ``q`` violates the limits."""
        if not self.contains(q):
            raise WorkspaceError(f"{what} {np.asarray(q)} outside workspace limits")

    def violation(self, q: Sequence[float]) -> np.ndarray:
        """Per-joint distance outside the box (zero when inside)."""
        q = np.asarray(q, dtype=float)
        below = np.maximum(self.lower - q, 0.0)
        above = np.maximum(q - self.upper, 0.0)
        return below + above

    def neutral(self) -> np.ndarray:
        """A comfortable mid-workspace pose used as the homing target."""
        mid = 0.5 * (self.lower + self.upper)
        mid[2] = constants.JOINT3_NEUTRAL_M
        return mid

"""Rotation matrices and quaternion utilities.

Quaternions are stored as ``(w, x, y, z)`` numpy arrays with the scalar part
first.  All rotation matrices are 3x3 proper orthogonal numpy arrays acting
on column vectors.
"""

from __future__ import annotations

import math

import numpy as np


def rot_x(angle: float) -> np.ndarray:
    """Rotation matrix about the x-axis by ``angle`` radians."""
    c, s = math.cos(angle), math.sin(angle)
    return np.array([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])


def rot_y(angle: float) -> np.ndarray:
    """Rotation matrix about the y-axis by ``angle`` radians."""
    c, s = math.cos(angle), math.sin(angle)
    return np.array([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])


def rot_z(angle: float) -> np.ndarray:
    """Rotation matrix about the z-axis by ``angle`` radians."""
    c, s = math.cos(angle), math.sin(angle)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


def quat_normalize(q: np.ndarray) -> np.ndarray:
    """Return ``q`` scaled to unit norm.

    Raises
    ------
    ValueError
        If ``q`` is (numerically) the zero quaternion.
    """
    q = np.asarray(q, dtype=float)
    norm = np.linalg.norm(q)
    if norm < 1e-12:
        raise ValueError("cannot normalize a zero quaternion")
    return q / norm


def quat_multiply(q1: np.ndarray, q2: np.ndarray) -> np.ndarray:
    """Hamilton product ``q1 * q2`` (both scalar-first)."""
    w1, x1, y1, z1 = q1
    w2, x2, y2, z2 = q2
    return np.array(
        [
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        ]
    )


def quat_conjugate(q: np.ndarray) -> np.ndarray:
    """Conjugate (inverse for unit quaternions) of ``q``."""
    w, x, y, z = q
    return np.array([w, -x, -y, -z])


def quat_rotate(q: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Rotate vector ``v`` by unit quaternion ``q``."""
    qv = np.array([0.0, v[0], v[1], v[2]])
    out = quat_multiply(quat_multiply(q, qv), quat_conjugate(q))
    return out[1:]


def quat_to_matrix(q: np.ndarray) -> np.ndarray:
    """Convert a unit quaternion to a 3x3 rotation matrix."""
    w, x, y, z = quat_normalize(q)
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ]
    )


def matrix_to_quat(m: np.ndarray) -> np.ndarray:
    """Convert a rotation matrix to a unit quaternion (scalar-first, w >= 0).

    Uses Shepperd's method, selecting the numerically stable branch.
    """
    m = np.asarray(m, dtype=float)
    trace = m[0, 0] + m[1, 1] + m[2, 2]
    if trace > 0.0:
        s = math.sqrt(trace + 1.0) * 2.0
        q = np.array(
            [
                0.25 * s,
                (m[2, 1] - m[1, 2]) / s,
                (m[0, 2] - m[2, 0]) / s,
                (m[1, 0] - m[0, 1]) / s,
            ]
        )
    elif m[0, 0] >= m[1, 1] and m[0, 0] >= m[2, 2]:
        s = math.sqrt(1.0 + m[0, 0] - m[1, 1] - m[2, 2]) * 2.0
        q = np.array(
            [
                (m[2, 1] - m[1, 2]) / s,
                0.25 * s,
                (m[0, 1] + m[1, 0]) / s,
                (m[0, 2] + m[2, 0]) / s,
            ]
        )
    elif m[1, 1] >= m[2, 2]:
        s = math.sqrt(1.0 + m[1, 1] - m[0, 0] - m[2, 2]) * 2.0
        q = np.array(
            [
                (m[0, 2] - m[2, 0]) / s,
                (m[0, 1] + m[1, 0]) / s,
                0.25 * s,
                (m[1, 2] + m[2, 1]) / s,
            ]
        )
    else:
        s = math.sqrt(1.0 + m[2, 2] - m[0, 0] - m[1, 1]) * 2.0
        q = np.array(
            [
                (m[1, 0] - m[0, 1]) / s,
                (m[0, 2] + m[2, 0]) / s,
                (m[1, 2] + m[2, 1]) / s,
                0.25 * s,
            ]
        )
    if q[0] < 0.0:
        q = -q
    return quat_normalize(q)


def angle_between(u: np.ndarray, v: np.ndarray) -> float:
    """Angle in radians between two non-zero vectors."""
    nu = np.linalg.norm(u)
    nv = np.linalg.norm(v)
    if nu < 1e-12 or nv < 1e-12:
        raise ValueError("angle_between requires non-zero vectors")
    cosang = float(np.dot(u, v) / (nu * nv))
    return math.acos(max(-1.0, min(1.0, cosang)))


def skew(v: np.ndarray) -> np.ndarray:
    """Skew-symmetric cross-product matrix of a 3-vector."""
    x, y, z = v
    return np.array([[0.0, -z, y], [z, 0.0, -x], [-y, x, 0.0]])

"""Kinematics of the RAVEN II positioning mechanism.

The RAVEN II arm is a cable-driven spherical mechanism: the first two
(rotational) joints rotate the tool axis about a fixed remote centre of
motion (RCM), and the third (translational) joint inserts the instrument
along that axis.  The paper models exactly these three positioning joints;
the remaining four instrument DOF affect only orientation and are handled
kinematically (:mod:`repro.kinematics.wrist`).

Public API
----------
- :class:`SphericalArm` — forward/inverse kinematics of the 2R+P chain.
- :class:`ArmGeometry` — link cone angles and base transform.
- :func:`position_jacobian` — analytic Jacobian of the tool tip.
- :class:`Workspace` — joint-limit and reachability checks.
- :mod:`repro.kinematics.frames` — rotation/quaternion helpers.
"""

from repro.kinematics.frames import (
    quat_conjugate,
    quat_multiply,
    quat_normalize,
    quat_rotate,
    quat_to_matrix,
    matrix_to_quat,
    rot_x,
    rot_y,
    rot_z,
)
from repro.kinematics.spherical_arm import ArmGeometry, SphericalArm
from repro.kinematics.jacobian import position_jacobian
from repro.kinematics.workspace import Workspace
from repro.kinematics.wrist import WristKinematics

__all__ = [
    "ArmGeometry",
    "SphericalArm",
    "Workspace",
    "WristKinematics",
    "position_jacobian",
    "quat_conjugate",
    "quat_multiply",
    "quat_normalize",
    "quat_rotate",
    "quat_to_matrix",
    "matrix_to_quat",
    "rot_x",
    "rot_y",
    "rot_z",
]

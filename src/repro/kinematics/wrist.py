"""Kinematic handling of the four instrument (wrist) degrees of freedom.

The paper models only the first three positioning joints dynamically; the
remaining four DOF (tool roll, wrist pitch and the two grasper jaws) mainly
affect end-effector *orientation*.  We resolve them purely kinematically:
given a desired orientation quaternion from the console, compute wrist
joint targets, and track them with a first-order servo model whose time
constant is far below anything safety-relevant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.kinematics.frames import quat_normalize, quat_to_matrix


@dataclass
class WristKinematics:
    """Maps desired tool orientation to wrist joint angles and tracks them.

    Attributes
    ----------
    time_constant:
        First-order tracking time constant of the wrist servos (s).
    grasp_half_angle:
        Commanded half-opening of the grasper jaws (rad); both jaw joints
        are derived from wrist yaw +/- this value.
    """

    time_constant: float = 0.02
    grasp_half_angle: float = 0.0
    joints: np.ndarray = field(default_factory=lambda: np.zeros(4))

    def targets_from_quaternion(self, ori: np.ndarray) -> np.ndarray:
        """Wrist joint targets (roll, pitch, jaw1, jaw2) for orientation ``ori``.

        The desired orientation is decomposed as intrinsic Z-Y-X Euler
        angles of the tool frame: tool roll about the instrument shaft,
        wrist pitch, and wrist yaw realised differentially by the two
        grasper jaws (RAVEN instruments articulate yaw via the jaws).
        """
        m = quat_to_matrix(quat_normalize(np.asarray(ori, dtype=float)))
        # ZYX intrinsic decomposition.
        pitch = -math.asin(max(-1.0, min(1.0, m[2, 0])))
        if abs(m[2, 0]) < 1.0 - 1e-9:
            roll = math.atan2(m[1, 0], m[0, 0])
            yaw = math.atan2(m[2, 1], m[2, 2])
        else:  # gimbal lock: fold everything into roll
            roll = math.atan2(-m[0, 1], m[1, 1])
            yaw = 0.0
        jaw1 = yaw + self.grasp_half_angle
        jaw2 = yaw - self.grasp_half_angle
        return np.array([roll, pitch, jaw1, jaw2])

    def step(self, targets: np.ndarray, dt: float) -> np.ndarray:
        """Advance the wrist servos one step toward ``targets``.

        Returns the new wrist joint vector.  A simple exponential tracker:
        ``x += (target - x) * (1 - exp(-dt / tau))``.
        """
        alpha = 1.0 - math.exp(-dt / self.time_constant)
        self.joints = self.joints + alpha * (np.asarray(targets, dtype=float) - self.joints)
        return self.joints.copy()

    def orientation_error(self, targets: np.ndarray) -> float:
        """Max absolute wrist-joint tracking error (rad)."""
        return float(np.max(np.abs(np.asarray(targets, dtype=float) - self.joints)))


def euler_zyx_to_quat(roll_z: float, pitch_y: float, yaw_x: float) -> np.ndarray:
    """Quaternion for intrinsic Z-Y-X Euler angles (matches the wrist model)."""
    cz, sz = math.cos(roll_z / 2.0), math.sin(roll_z / 2.0)
    cy, sy = math.cos(pitch_y / 2.0), math.sin(pitch_y / 2.0)
    cx, sx = math.cos(yaw_x / 2.0), math.sin(yaw_x / 2.0)
    # q = qz * qy * qx (scalar-first)
    return np.array(
        [
            cz * cy * cx + sz * sy * sx,
            cz * cy * sx - sz * sy * cx,
            cz * sy * cx + sz * cy * sx,
            sz * cy * cx - cz * sy * sx,
        ]
    )


def wrist_pose_tuple(joints: np.ndarray) -> Tuple[float, float, float]:
    """(roll, pitch, yaw) realised by wrist joints (yaw = mean jaw angle)."""
    roll, pitch, jaw1, jaw2 = joints
    return float(roll), float(pitch), float(0.5 * (jaw1 + jaw2))

"""Dynamics of the RAVEN II physical system.

This package implements the two sets of second-order ordinary differential
equations the paper uses to describe the robot — DC-motor dynamics and
manipulator link dynamics — together with the fixed-step numerical
integrators (explicit Euler and 4th-order Runge-Kutta) that solve them
within the 1 ms control period.

Public API
----------
- :class:`MotorParameters`, :data:`MAXON_RE40`, :data:`MAXON_RE30` — DC motor models.
- :class:`Transmission` — gear + cable coupling between motors and joints.
- :class:`ManipulatorDynamics` — 3-DOF link dynamics (M, C, g, friction).
- :class:`RavenPlant`, :class:`PlantState` — the coupled motor+link plant.
- :func:`euler_step`, :func:`rk4_step`, :func:`get_integrator` — ODE steppers.
- :mod:`repro.dynamics.batch` — ``(N_rigs, ...)`` batched evaluation of all
  of the above, bit-identical per lane to the scalar path.
"""

from repro.dynamics.integrators import (
    INTEGRATORS,
    euler_step,
    get_integrator,
    heun_step,
    midpoint_step,
    rk4_step,
)
from repro.dynamics.motor import MAXON_RE30, MAXON_RE40, MotorParameters
from repro.dynamics.transmission import Transmission
from repro.dynamics.friction import FrictionModel
from repro.dynamics.manipulator import ManipulatorDynamics, ManipulatorParameters
from repro.dynamics.plant import PlantState, RavenPlant
from repro.dynamics.batch import (
    BATCH_INTEGRATORS,
    BatchedManipulatorDynamics,
    BatchedPlant,
    LanePlantView,
    get_batch_integrator,
)

__all__ = [
    "BATCH_INTEGRATORS",
    "BatchedManipulatorDynamics",
    "BatchedPlant",
    "INTEGRATORS",
    "LanePlantView",
    "MAXON_RE30",
    "MAXON_RE40",
    "FrictionModel",
    "ManipulatorDynamics",
    "ManipulatorParameters",
    "MotorParameters",
    "PlantState",
    "RavenPlant",
    "Transmission",
    "euler_step",
    "get_batch_integrator",
    "get_integrator",
    "heun_step",
    "midpoint_step",
    "rk4_step",
]

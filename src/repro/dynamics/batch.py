"""Batched ``(N_rigs, ...)`` evaluation of the robot dynamics.

Every kernel in this module evaluates N independent rigs in one numpy
call while reproducing the scalar path (:mod:`repro.dynamics.manipulator`,
:mod:`repro.dynamics.plant`, :mod:`repro.dynamics.integrators`) **bit for
bit** per lane.  The detector's safety verdicts hash raw float64 bytes
(:meth:`repro.sim.trace.RunTrace.fingerprint`), so "close" is not good
enough: a vectorized build that rounds differently could silently change
an alarm or E-STOP decision.  The equivalence is enforced by
``tests/test_batch_equivalence.py`` and ``tests/test_batch_properties.py``.

The bit-identity recipe, validated empirically against this build's BLAS:

- **elementwise ufuncs** (``sin``/``cos``/``exp``/``tanh``/``sqrt``, ``+``
  ``-`` ``*`` ``/``) are IEEE-754 per element and size/stride invariant,
  so any scalar expression tree can be replayed on ``(N, ...)`` arrays
  as long as the operation *order* is preserved verbatim;
- every scalar ``A @ v`` / ``A.T @ B`` goes through **stacked
  ``np.matmul``** (``matmul(A, V[..., None])``), which dispatches to the
  same BLAS kernels lane by lane — forms that re-associate sums
  (``V @ A.T``, ``einsum``, ``(A * v).sum()``) do *not* match bitwise;
- ``np.linalg.norm(v)`` of a 3-vector is matched by a matmul-based dot
  (:func:`batched_norm3`), not by ``norm(..., axis=1)``;
- branch divergence uses ``np.where`` *selection* (compute both sides,
  keep the lane's branch) — never arithmetic masking, which perturbs
  rounding.

The scalar modules stay untouched and remain the N=1 special case.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import constants
from repro.dynamics.friction import FrictionModel
from repro.dynamics.integrators import EVALUATIONS_PER_STEP
from repro.dynamics.manipulator import (
    _JDOT_EPS,
    _SPEED_EPS,
    GRAVITY,
    ManipulatorDynamics,
)
from repro.dynamics.plant import PlantState, RavenPlant
from repro.errors import DynamicsError, IntegrationError
from repro.kinematics.spherical_arm import ArmGeometry

BatchDerivative = Callable[[float, np.ndarray], np.ndarray]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise DynamicsError(message)


def require_homogeneous(values: Sequence, what: str) -> None:
    """Assert all lanes share one configuration value (arrays compared
    bitwise) — heterogeneity here would need per-lane code paths, which
    the batch layer deliberately does not grow."""
    first = values[0]
    for i, value in enumerate(values[1:], start=1):
        if isinstance(first, np.ndarray):
            same = (
                isinstance(value, np.ndarray)
                and value.shape == first.shape
                and bool(np.all(value == first))
            )
        else:
            same = value == first
        _require(same, f"batch lanes must share {what} (lane 0 != lane {i})")


# ---------------------------------------------------------------------------
# Stacked linear algebra (bit-identical to the scalar BLAS calls)
# ---------------------------------------------------------------------------


def batched_matvec(matrix: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    """``matrix @ v`` per lane: ``(3, 3) or (N, 3, 3)`` x ``(N, 3)``."""
    return np.matmul(matrix, vectors[..., :, None])[..., 0]


def batched_mat_t_vec(matrices: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    """``m.T @ v`` per lane for stacked ``(N, 3, 3)`` matrices."""
    return np.matmul(np.swapaxes(matrices, -1, -2), vectors[..., :, None])[..., 0]


def batched_gram(matrices: np.ndarray) -> np.ndarray:
    """``j.T @ j`` per lane for stacked ``(N, 3, 3)`` matrices."""
    return np.matmul(np.swapaxes(matrices, -1, -2), matrices)


def batched_norm3(vectors: np.ndarray) -> np.ndarray:
    """``np.linalg.norm(v)`` of each lane's 3-vector, bit-identical.

    ``norm`` computes ``sqrt(dot(v, v))`` through BLAS; the stacked
    equivalent with the same summation order is a 1x3 @ 3x1 matmul.
    """
    dots = np.matmul(vectors[..., None, :], vectors[..., :, None])[..., 0, 0]
    return np.sqrt(dots)


def batched_solve3(m: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-lane Cramer solve of ``m @ x = b`` — the exact expression tree
    of :func:`repro.dynamics.manipulator._solve3` on ``(N,)`` columns."""
    a00, a01, a02 = m[..., 0, 0], m[..., 0, 1], m[..., 0, 2]
    a10, a11, a12 = m[..., 1, 0], m[..., 1, 1], m[..., 1, 2]
    a20, a21, a22 = m[..., 2, 0], m[..., 2, 1], m[..., 2, 2]
    c00 = a11 * a22 - a12 * a21
    c01 = a12 * a20 - a10 * a22
    c02 = a10 * a21 - a11 * a20
    det = a00 * c00 + a01 * c01 + a02 * c02
    b0, b1, b2 = b[..., 0], b[..., 1], b[..., 2]
    x0 = (
        b0 * c00
        + a01 * (a12 * b2 - b1 * a22)
        + a02 * (b1 * a21 - a11 * b2)
    ) / det
    x1 = (
        a00 * (b1 * a22 - a12 * b2)
        + b0 * c01
        + a02 * (a10 * b2 - b1 * a20)
    ) / det
    x2 = (
        a00 * (a11 * b2 - b1 * a21)
        + a01 * (b1 * a20 - a10 * b2)
        + b0 * c02
    ) / det
    return np.stack([x0, x1, x2], axis=-1)


# ---------------------------------------------------------------------------
# Batched kinematics (mirrors spherical_arm.tool_axis / jacobian)
# ---------------------------------------------------------------------------


class BatchedArmTrig:
    """Precomputed cone-angle trig shared by every lane (same geometry)."""

    __slots__ = ("sin_a1", "cos_a1", "sin_a2", "cos_a2")

    def __init__(self, geometry: ArmGeometry) -> None:
        self.sin_a1 = math.sin(geometry.alpha1)
        self.cos_a1 = math.cos(geometry.alpha1)
        self.sin_a2 = math.sin(geometry.alpha2)
        self.cos_a2 = math.cos(geometry.alpha2)


def batched_tool_axis(
    trig: BatchedArmTrig, q1: np.ndarray, q2: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-lane tool axis — :meth:`SphericalArm.tool_axis` on arrays.

    ``math.sin``/``math.cos`` on a Python float and ``np.sin``/``np.cos``
    on an array element produce the same bits on this toolchain (both use
    the same libm-correct kernels), so the scalar expressions carry over
    verbatim.
    """
    sa1, ca1 = trig.sin_a1, trig.cos_a1
    sa2, ca2 = trig.sin_a2, trig.cos_a2
    s2, c2 = np.sin(q2), np.cos(q2)
    fx = sa2 * s2
    fy = -sa2 * c2
    gx = fx
    gy = ca1 * fy - sa1 * ca2
    gz = sa1 * fy + ca1 * ca2
    s1, c1 = np.sin(q1), np.cos(q1)
    return c1 * gx - s1 * gy, s1 * gx + c1 * gy, gz


def batched_joint2_axis(
    trig: BatchedArmTrig, q1: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Per-lane joint-2 axis — :meth:`SphericalArm.joint2_axis` on arrays."""
    sa1 = trig.sin_a1
    return sa1 * np.sin(q1), -sa1 * np.cos(q1), trig.cos_a1


def batched_position_jacobian(
    trig: BatchedArmTrig, q1: np.ndarray, q2: np.ndarray, d: np.ndarray
) -> np.ndarray:
    """Stacked ``(N, 3, 3)`` tool-tip Jacobians — entry-by-entry the
    expressions of :func:`repro.kinematics.jacobian.position_jacobian`."""
    ux, uy, uz = batched_tool_axis(trig, q1, q2)
    ax, ay, az = batched_joint2_axis(trig, q1)
    jac = np.empty(q1.shape + (3, 3))
    jac[..., 0, 0] = -d * uy
    jac[..., 0, 1] = d * (ay * uz - az * uy)
    jac[..., 0, 2] = ux
    jac[..., 1, 0] = d * ux
    jac[..., 1, 1] = d * (az * ux - ax * uz)
    jac[..., 1, 2] = uy
    jac[..., 2, 0] = 0.0
    jac[..., 2, 1] = d * (ax * uy - ay * ux)
    jac[..., 2, 2] = uz
    return jac


# ---------------------------------------------------------------------------
# Batched friction
# ---------------------------------------------------------------------------


def stack_friction(models: Sequence[FrictionModel]) -> Tuple[np.ndarray, np.ndarray, float]:
    """Stack per-lane friction coefficients; the smoothing velocity is a
    shared scalar (it is never scaled by parameter error or drift)."""
    require_homogeneous([m.smoothing_velocity for m in models], "friction smoothing_velocity")
    viscous = np.stack([np.asarray(m.viscous, dtype=float) for m in models])
    coulomb = np.stack([np.asarray(m.coulomb, dtype=float) for m in models])
    return viscous, coulomb, models[0].smoothing_velocity


def batched_friction_torque(
    qdot: np.ndarray, viscous: np.ndarray, coulomb: np.ndarray, smoothing: float
) -> np.ndarray:
    """Per-lane :meth:`FrictionModel.torque` (elementwise; exact)."""
    return viscous * qdot + coulomb * np.tanh(qdot / smoothing)


# ---------------------------------------------------------------------------
# Batched integrators (mirrors repro.dynamics.integrators)
# ---------------------------------------------------------------------------


def _check_finite_batch(y: np.ndarray, method: str) -> np.ndarray:
    if not np.all(np.isfinite(y)):
        bad = np.nonzero(~np.isfinite(y).all(axis=tuple(range(1, y.ndim))))[0]
        raise IntegrationError(
            f"{method} produced a non-finite state in lanes {bad.tolist()}"
        )
    return y


def batched_euler_step(f: BatchDerivative, t: float, y: np.ndarray, h: float) -> np.ndarray:
    """Explicit Euler on ``(N, state)`` lanes."""
    return _check_finite_batch(y + h * f(t, y), "euler")


def batched_midpoint_step(f: BatchDerivative, t: float, y: np.ndarray, h: float) -> np.ndarray:
    """Explicit midpoint (RK2) on ``(N, state)`` lanes."""
    k1 = f(t, y)
    k2 = f(t + 0.5 * h, y + 0.5 * h * k1)
    return _check_finite_batch(y + h * k2, "midpoint")


def batched_heun_step(f: BatchDerivative, t: float, y: np.ndarray, h: float) -> np.ndarray:
    """Heun (trapezoidal RK2) on ``(N, state)`` lanes."""
    k1 = f(t, y)
    k2 = f(t + h, y + h * k1)
    return _check_finite_batch(y + 0.5 * h * (k1 + k2), "heun")


def batched_rk4_step(f: BatchDerivative, t: float, y: np.ndarray, h: float) -> np.ndarray:
    """Classical RK4 on ``(N, state)`` lanes."""
    k1 = f(t, y)
    k2 = f(t + 0.5 * h, y + 0.5 * h * k1)
    k3 = f(t + 0.5 * h, y + 0.5 * h * k2)
    k4 = f(t + h, y + h * k3)
    # Classical RK4 Butcher weight, same literal as the scalar stepper.
    return _check_finite_batch(
        y + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4),  # repro: allow[RPR003]
        "rk4",
    )


#: Registry of batched steppers; keys match :data:`repro.dynamics.INTEGRATORS`.
BATCH_INTEGRATORS: Dict[str, Callable[..., np.ndarray]] = {
    "euler": batched_euler_step,
    "midpoint": batched_midpoint_step,
    "heun": batched_heun_step,
    "rk4": batched_rk4_step,
}

assert set(BATCH_INTEGRATORS) == set(EVALUATIONS_PER_STEP)


def get_batch_integrator(name: str) -> Callable[..., np.ndarray]:
    """Look up a batched stepper by scalar-integrator name."""
    try:
        return BATCH_INTEGRATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown integrator {name!r}; available: {sorted(BATCH_INTEGRATORS)}"
        ) from None


# ---------------------------------------------------------------------------
# Batched motor current response
# ---------------------------------------------------------------------------


def batched_current_response(
    setpoints: np.ndarray, i0: np.ndarray, elapsed: float, tau_i: np.ndarray
) -> np.ndarray:
    """Analytic first-order current-loop response per lane.

    Mirrors the plant's ``sp + (i0 - sp) * exp(-elapsed / tau)``; ``np.exp``
    is element-invariant across array shapes, so this is exact.
    """
    return setpoints + (i0 - setpoints) * np.exp(-elapsed / tau_i)


def batched_dac_to_current(dac_values: np.ndarray) -> np.ndarray:
    """``(N, 3)`` DAC counts to current setpoints (elementwise; exact)."""
    dac = np.asarray(dac_values, dtype=float)
    return dac / constants.DAC_FULL_SCALE * constants.DAC_FULL_SCALE_CURRENT_A


# ---------------------------------------------------------------------------
# Batched manipulator dynamics
# ---------------------------------------------------------------------------


class BatchedManipulatorDynamics:
    """N lanes of :class:`ManipulatorDynamics` evaluated in one shot.

    Inertial and friction parameters are stacked per lane (so model-drift
    and parameter-error studies can differ lane by lane); the arm geometry
    and the include flags must be shared.
    """

    def __init__(self, lanes: Sequence[ManipulatorDynamics]) -> None:
        _require(len(lanes) > 0, "at least one lane is required")
        require_homogeneous([d.arm.geometry for d in lanes], "arm geometry")
        require_homogeneous([d.include_coriolis for d in lanes], "include_coriolis")
        require_homogeneous([d.include_gravity for d in lanes], "include_gravity")
        self.num_lanes = len(lanes)
        self.include_coriolis = lanes[0].include_coriolis
        self.include_gravity = lanes[0].include_gravity
        self._trig = BatchedArmTrig(lanes[0].arm.geometry)
        self._stack_parameters(lanes)

    def _stack_parameters(self, lanes: Sequence[ManipulatorDynamics]) -> None:
        params = [d.params for d in lanes]
        self._base_inertias = np.stack(
            [np.asarray(p.base_inertias, dtype=float) for p in params]
        )
        self._m0 = np.zeros((self.num_lanes, 3, 3))
        for axis in range(3):
            self._m0[:, axis, axis] = self._base_inertias[:, axis]
        self._instrument_mass = np.array([p.instrument_mass for p in params])
        self._link2_mass = np.array([p.link2_mass for p in params])
        self._link2_radius = np.array([p.link2_com_radius for p in params])
        self._viscous, self._coulomb, self._smoothing = stack_friction(
            [d.friction for d in lanes]
        )

    def refresh_lane(self, lane: int, dynamics: ManipulatorDynamics) -> None:
        """Re-read one lane's parameters (after ``apply_parameter_drift``
        rebuilt the lane's scalar dynamics in place)."""
        p = dynamics.params
        self._base_inertias[lane] = np.asarray(p.base_inertias, dtype=float)
        for axis in range(3):
            self._m0[lane, axis, axis] = self._base_inertias[lane, axis]
        self._instrument_mass[lane] = p.instrument_mass
        self._link2_mass[lane] = p.link2_mass
        self._link2_radius[lane] = p.link2_com_radius
        self._viscous[lane] = np.asarray(dynamics.friction.viscous, dtype=float)
        self._coulomb[lane] = np.asarray(dynamics.friction.coulomb, dtype=float)

    # -- point-mass Jacobians -------------------------------------------------

    def _jacobians(self, q: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        q1, q2 = q[..., 0], q[..., 1]
        j3 = batched_position_jacobian(self._trig, q1, q2, q[..., 2])
        j2 = batched_position_jacobian(self._trig, q1, q2, self._link2_radius)
        j2[..., :, 2] = 0.0  # link-2 COM does not move with insertion
        return j3, j2

    # -- dynamics terms -------------------------------------------------------

    def mass_matrix(self, q: np.ndarray) -> np.ndarray:
        """Per-lane M(q) — mirrors :meth:`ManipulatorDynamics.mass_matrix`."""
        j3, j2 = self._jacobians(np.asarray(q, dtype=float))
        m = self._m0.copy()
        m += self._instrument_mass[:, None, None] * batched_gram(j3)
        m += self._link2_mass[:, None, None] * batched_gram(j2)
        return m

    def coriolis_force(self, q: np.ndarray, qdot: np.ndarray) -> np.ndarray:
        """Per-lane ``C(q, qdot) @ qdot`` — mirrors the scalar method."""
        if not self.include_coriolis:
            return np.zeros((self.num_lanes, 3))
        q = np.asarray(q, dtype=float)
        qdot = np.asarray(qdot, dtype=float)
        speed = batched_norm3(qdot)
        active = speed >= _SPEED_EPS
        with np.errstate(divide="ignore", invalid="ignore"):
            eps = _JDOT_EPS / speed
            q_ahead = q + eps[:, None] * qdot
            j3, j2 = self._jacobians(q)
            j3a, j2a = self._jacobians(q_ahead)
            force = np.zeros((self.num_lanes, 3))
            for mass, jac, jac_ahead in (
                (self._instrument_mass, j3, j3a),
                (self._link2_mass, j2, j2a),
            ):
                jdot_qdot = batched_matvec(jac_ahead - jac, qdot) / eps[:, None]
                force = force + mass[:, None] * batched_mat_t_vec(jac, jdot_qdot)
        return np.where(active[:, None], force, 0.0)

    def gravity_force(self, q: np.ndarray) -> np.ndarray:
        """Per-lane gravity force — mirrors the scalar method."""
        if not self.include_gravity:
            return np.zeros((self.num_lanes, 3))
        j3, j2 = self._jacobians(np.asarray(q, dtype=float))
        gravity = np.broadcast_to(GRAVITY, (self.num_lanes, 3))
        return -(
            self._instrument_mass[:, None] * batched_mat_t_vec(j3, gravity)
            + self._link2_mass[:, None] * batched_mat_t_vec(j2, gravity)
        )

    def friction_force(self, qdot: np.ndarray) -> np.ndarray:
        """Per-lane joint friction force."""
        return batched_friction_torque(
            np.asarray(qdot, dtype=float), self._viscous, self._coulomb, self._smoothing
        )

    def acceleration(
        self,
        q: np.ndarray,
        qdot: np.ndarray,
        tau: np.ndarray,
        extra_inertia: Optional[np.ndarray] = None,
        extra_damping: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-lane joint accelerations — the hot path, mirroring
        :meth:`ManipulatorDynamics.acceleration` expression by expression."""
        q = np.asarray(q, dtype=float)
        qdot = np.asarray(qdot, dtype=float)
        j3, j2 = self._jacobians(q)

        m = (
            self._m0
            + self._instrument_mass[:, None, None] * batched_gram(j3)
            + self._link2_mass[:, None, None] * batched_gram(j2)
        )
        if extra_inertia is not None:
            m = m + extra_inertia

        rhs = np.asarray(tau, dtype=float) - self.friction_force(qdot)

        if self.include_gravity:
            rhs = rhs + (GRAVITY[2] * self._instrument_mass)[:, None] * j3[:, 2, :]
            rhs = rhs + (GRAVITY[2] * self._link2_mass)[:, None] * j2[:, 2, :]

        if self.include_coriolis:
            speed = batched_norm3(qdot)
            active = speed > _SPEED_EPS
            # Still lanes divide by ~zero speed and are discarded by the
            # np.where selection below, exactly as the scalar branch skips
            # them; errstate silences the intentional inf/nan lanes.
            with np.errstate(divide="ignore", invalid="ignore"):
                eps = _JDOT_EPS / speed
                q_ahead = q + eps[:, None] * qdot
                j3a, j2a = self._jacobians(q_ahead)
                coriolis = rhs - self._instrument_mass[:, None] * batched_mat_t_vec(
                    j3, batched_matvec(j3a - j3, qdot) / eps[:, None]
                )
                coriolis = coriolis - self._link2_mass[:, None] * batched_mat_t_vec(
                    j2, batched_matvec(j2a - j2, qdot) / eps[:, None]
                )
            rhs = np.where(active[:, None], coriolis, rhs)

        if extra_damping is not None:
            rhs = rhs - batched_matvec(extra_damping, qdot)
        return batched_solve3(m, rhs)


# ---------------------------------------------------------------------------
# Batched plant
# ---------------------------------------------------------------------------


class BatchedPlant:
    """N lanes of :class:`RavenPlant` advanced by one shared step.

    Built *from* freshly constructed scalar plants: their state vectors
    are stacked, and from then on :meth:`step` advances every lane at
    once.  Per-lane brake state (engaged / closing countdown) is handled
    by integrating every lane and bitwise-restoring the lanes the scalar
    plant would not have integrated — selection, not recomputation, so
    held lanes keep their exact bytes.

    Lane time stays in lockstep by construction (every lane advances
    ``dt`` per step, brakes or not, exactly like the scalar plant).
    """

    def __init__(self, plants: Sequence[RavenPlant]) -> None:
        _require(len(plants) > 0, "at least one lane plant is required")
        require_homogeneous([p.integrator_name for p in plants], "plant integrator")
        require_homogeneous([p.substeps for p in plants], "plant substeps")
        require_homogeneous([p.motors for p in plants], "motor parameters")
        require_homogeneous(
            [p.transmission.joint_to_motor for p in plants], "transmission matrix"
        )
        require_homogeneous([p.brake_delay_s for p in plants], "brake delay")
        require_homogeneous([p._time for p in plants], "plant time")
        self.num_lanes = len(plants)
        self.dynamics = BatchedManipulatorDynamics([p.dynamics for p in plants])
        self.transmission = plants[0].transmission
        self._g = self.transmission.joint_to_motor
        self.substeps = plants[0].substeps
        self.integrator_name = plants[0].integrator_name
        self._stepper = get_batch_integrator(self.integrator_name)
        self.brake_delay_s = plants[0].brake_delay_s

        first = plants[0]
        self._reflected_inertia = first._reflected_inertia
        self._reflected_damping = first._reflected_damping
        self._kt = first._kt
        self._tau_i = first._tau_i
        self._i_max = first._i_max

        self._time = first._time
        self._y = np.stack([p._y for p in plants]).astype(float)
        self.brakes_engaged = np.array([p.brakes_engaged for p in plants])
        self._countdown = np.zeros(self.num_lanes)
        self._counting = np.zeros(self.num_lanes, dtype=bool)
        for i, p in enumerate(plants):
            if p._brake_countdown is not None:
                self._counting[i] = True
                self._countdown[i] = p._brake_countdown

    # -- per-lane brake control (mirrors RavenPlant) ---------------------------

    def engage_brakes(self, lane: int) -> None:
        """Start engaging lane ``lane``'s brakes (idempotent while closing)."""
        if self.brakes_engaged[lane] or self._counting[lane]:
            return
        if self.brake_delay_s <= 0.0:
            self._lock_brakes(lane)
        else:
            self._counting[lane] = True
            self._countdown[lane] = self.brake_delay_s

    def _lock_brakes(self, lane: int) -> None:
        self.brakes_engaged[lane] = True
        self._counting[lane] = False
        self._y[lane, 3:6] = 0.0
        self._y[lane, 6:9] = 0.0

    def release_brakes(self, lane: int) -> None:
        """Release lane ``lane``'s brakes."""
        self.brakes_engaged[lane] = False
        self._counting[lane] = False

    def brakes_engaging(self, lane: int) -> bool:
        """Whether an engage request is pending on lane ``lane``."""
        return bool(self._counting[lane])

    # -- state access ----------------------------------------------------------

    @property
    def time(self) -> float:
        """Shared (lockstep) plant time."""
        return self._time

    def lane_state(self, lane: int) -> PlantState:
        """Scalar-identical :class:`PlantState` snapshot of one lane."""
        jpos = self._y[lane, 0:3].copy()
        jvel = self._y[lane, 3:6].copy()
        return PlantState(
            time=self._time,
            jpos=jpos,
            jvel=jvel,
            currents=self._y[lane, 6:9].copy(),
            mpos=self._g @ jpos,
            mvel=self._g @ jvel,
            brakes_engaged=bool(self.brakes_engaged[lane]),
        )

    def lane(self, lane: int) -> "LanePlantView":
        """A :class:`RavenPlant`-shaped view of one lane."""
        return LanePlantView(self, lane)

    # -- simulation ------------------------------------------------------------

    def _derivative(
        self, setpoints: np.ndarray, i0: np.ndarray, t0: float
    ) -> BatchDerivative:
        dynamics = self.dynamics
        g = self._g
        kt = self._kt
        refl_m = self._reflected_inertia
        refl_b = self._reflected_damping
        tau_i = self._tau_i

        def f(t: float, y: np.ndarray) -> np.ndarray:
            cur = batched_current_response(setpoints, i0, t - t0, tau_i)
            tau_joint = batched_matvec(g.T, kt * cur)
            qddot = dynamics.acceleration(
                y[:, 0:3],
                y[:, 3:6],
                tau_joint,
                extra_inertia=refl_m,
                extra_damping=refl_b,
            )
            return np.concatenate([y[:, 3:6], qddot], axis=1)

        return f

    def step(
        self, dac_values: np.ndarray, dt: float = constants.CONTROL_PERIOD_S
    ) -> None:
        """Advance every lane by one control period under ``dac_values``.

        Lanes with engaged brakes only advance time; lanes with closing
        brakes coast on zero DAC; the rest execute their command — all
        per-lane decisions are made by ``np.where`` selection so each
        lane's bytes match a scalar :meth:`RavenPlant.step`.
        """
        engaged = self.brakes_engaged.copy()
        if engaged.all():
            self._time += dt
            return
        dac = np.asarray(dac_values, dtype=float).reshape(self.num_lanes, 3)
        closing = ~engaged & self._counting
        coast_or_hold = engaged | closing
        if coast_or_hold.any():
            dac = np.where(coast_or_hold[:, None], 0.0, dac)
        self._countdown[closing] -= dt

        setpoints = np.clip(batched_dac_to_current(dac), -self._i_max, self._i_max)
        i0 = self._y[:, 6:9].copy()
        t0 = self._time
        f = self._derivative(setpoints, i0, t0)
        h = dt / self.substeps
        y = self._y[:, 0:6]
        t = t0
        for _ in range(self.substeps):
            y = self._stepper(f, t, y, h)
            t += h
        # Brake-engaged lanes were integrated along with the batch for
        # uniformity; restore their held state bitwise (the scalar plant
        # never integrates them).
        self._y[:, 0:6] = np.where(engaged[:, None], self._y[:, 0:6], y)
        new_currents = batched_current_response(setpoints, i0, dt, self._tau_i)
        self._y[:, 6:9] = np.where(engaged[:, None], i0, new_currents)
        self._time = t0 + dt

        expired = np.nonzero(closing & (self._countdown <= 0.0))[0]
        for lane in expired:
            self._lock_brakes(int(lane))


class LanePlantView:
    """One lane of a :class:`BatchedPlant`, shaped like a scalar plant.

    Installed in place of a rig's :class:`RavenPlant` so the PLC, motor
    controller and encoders keep their scalar code paths; only
    :meth:`RavenPlant.step` is off limits — the batched rig advances all
    lanes through :meth:`BatchedPlant.step`.
    """

    def __init__(self, batch: BatchedPlant, lane: int) -> None:
        self.batch = batch
        self.lane = lane
        self.transmission = batch.transmission
        self.brake_delay_s = batch.brake_delay_s

    @property
    def jpos(self) -> np.ndarray:
        return self.batch._y[self.lane, 0:3].copy()

    @property
    def jvel(self) -> np.ndarray:
        return self.batch._y[self.lane, 3:6].copy()

    @property
    def currents(self) -> np.ndarray:
        return self.batch._y[self.lane, 6:9].copy()

    @property
    def mpos(self) -> np.ndarray:
        return self.batch._g @ self.batch._y[self.lane, 0:3]

    @property
    def mvel(self) -> np.ndarray:
        return self.batch._g @ self.batch._y[self.lane, 3:6]

    @property
    def time(self) -> float:
        return self.batch._time

    @property
    def brakes_engaged(self) -> bool:
        return bool(self.batch.brakes_engaged[self.lane])

    @property
    def brakes_engaging(self) -> bool:
        return self.batch.brakes_engaging(self.lane)

    def engage_brakes(self) -> None:
        self.batch.engage_brakes(self.lane)

    def release_brakes(self) -> None:
        self.batch.release_brakes(self.lane)

    def snapshot(self) -> PlantState:
        return self.batch.lane_state(self.lane)

    def set_state(self, jpos: np.ndarray, jvel: Optional[np.ndarray] = None) -> None:
        y = self.batch._y
        y[self.lane, 0:3] = np.asarray(jpos, dtype=float)
        y[self.lane, 3:6] = 0.0 if jvel is None else np.asarray(jvel, dtype=float)
        y[self.lane, 6:9] = 0.0

    def step(self, dac_values: Sequence[float], dt: float = constants.CONTROL_PERIOD_S):
        raise DynamicsError(
            "lane plants advance together through BatchedPlant.step(); "
            "stepping a single lane would break lockstep"
        )

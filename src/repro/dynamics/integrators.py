"""Fixed-step explicit integrators for the robot's ODEs.

The paper solves the dynamic model with the C++ ``odeint`` package using the
4th-order Runge-Kutta and explicit Euler methods at a 1 ms step, and reports
(Figure 8) that Euler gives the best execution-time/accuracy trade-off.  We
implement the same methods (plus midpoint and Heun for the integrator
ablation) from scratch.

A *stepper* has signature ``step(f, t, y, h) -> y_next`` where ``f(t, y)``
returns ``dy/dt`` as a numpy array.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import IntegrationError

Derivative = Callable[[float, np.ndarray], np.ndarray]


def _check_finite(y: np.ndarray, method: str) -> np.ndarray:
    if not np.all(np.isfinite(y)):
        raise IntegrationError(f"{method} produced a non-finite state: {y!r}")
    return y


def euler_step(f: Derivative, t: float, y: np.ndarray, h: float) -> np.ndarray:
    """One explicit (forward) Euler step: ``y + h * f(t, y)``."""
    return _check_finite(y + h * f(t, y), "euler")


def midpoint_step(f: Derivative, t: float, y: np.ndarray, h: float) -> np.ndarray:
    """One explicit midpoint (RK2) step."""
    k1 = f(t, y)
    k2 = f(t + 0.5 * h, y + 0.5 * h * k1)
    return _check_finite(y + h * k2, "midpoint")


def heun_step(f: Derivative, t: float, y: np.ndarray, h: float) -> np.ndarray:
    """One Heun (trapezoidal predictor-corrector, RK2) step."""
    k1 = f(t, y)
    k2 = f(t + h, y + h * k1)
    return _check_finite(y + 0.5 * h * (k1 + k2), "heun")


def rk4_step(f: Derivative, t: float, y: np.ndarray, h: float) -> np.ndarray:
    """One classical 4th-order Runge-Kutta step."""
    k1 = f(t, y)
    k2 = f(t + 0.5 * h, y + 0.5 * h * k1)
    k3 = f(t + 0.5 * h, y + 0.5 * h * k2)
    k4 = f(t + h, y + h * k3)
    # The 1/6 weight is the classical RK4 Butcher tableau, not a tunable
    # safety threshold.
    return _check_finite(
        y + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4),  # repro: allow[RPR003]
        "rk4",
    )


#: Registry of available steppers by name.
INTEGRATORS: Dict[str, Callable[..., np.ndarray]] = {
    "euler": euler_step,
    "midpoint": midpoint_step,
    "heun": heun_step,
    "rk4": rk4_step,
}

#: Number of derivative evaluations each stepper performs per step; used by
#: the integrator ablation to report cost alongside wall-clock time.
EVALUATIONS_PER_STEP: Dict[str, int] = {
    "euler": 1,
    "midpoint": 2,
    "heun": 2,
    "rk4": 4,
}


def get_integrator(name: str) -> Callable[..., np.ndarray]:
    """Look up a stepper by name (``euler``, ``midpoint``, ``heun``, ``rk4``).

    Raises
    ------
    KeyError
        If ``name`` is not a known integrator.
    """
    try:
        return INTEGRATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown integrator {name!r}; available: {sorted(INTEGRATORS)}"
        ) from None


def integrate_fixed(
    f: Derivative,
    t0: float,
    y0: np.ndarray,
    h: float,
    steps: int,
    method: str = "euler",
) -> np.ndarray:
    """Integrate ``steps`` fixed steps and return the final state.

    Convenience helper used by tests and the integrator ablation; the plant
    drives steppers directly for per-step control.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    stepper = get_integrator(method)
    t, y = t0, np.asarray(y0, dtype=float)
    for _ in range(steps):
        y = stepper(f, t, y, h)
        t += h
    return y

"""Gear and cable transmission between motors and joints.

RAVEN II joints are cable driven.  Each motor drives its joint through a
capstan reduction, and — because the cables for the distal axes are routed
over the proximal pulleys — motor motions couple weakly into neighbouring
joints.  We model the (rigid) transmission with a *joint-to-motor* matrix
``G``:

    mpos = G @ jpos          (positions)
    tau_joint = G.T @ tau_motor   (torques; power conservation)

``G`` is the per-axis gear ratio on the diagonal (rad of motor per rad of
joint for the rotational axes; rad of motor per metre of insertion for the
prismatic axis) plus small off-diagonal cable-routing coupling terms.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import DynamicsError

#: Default per-axis reductions: ~32:1 capstan for shoulder/elbow (near the
#: inertia-matched optimum for an RE40 driving the arm), 100 rad/m capstan
#: (10 mm radius drum) for insertion.
DEFAULT_GEAR_RATIOS = (32.0, 32.0, 100.0)

#: Fractional cable coupling of the insertion cable over the elbow pulley
#: and the elbow cable over the shoulder pulley.
DEFAULT_COUPLING = 0.03

#: Determinant magnitude below which ``G`` is treated as singular.
_SINGULAR_DET_EPS = 1e-12


class Transmission:
    """Rigid cable transmission with coupling between adjacent axes."""

    def __init__(
        self,
        gear_ratios: Sequence[float] = DEFAULT_GEAR_RATIOS,
        coupling: float = DEFAULT_COUPLING,
        matrix: Optional[np.ndarray] = None,
    ) -> None:
        """Build the transmission.

        Parameters
        ----------
        gear_ratios:
            Diagonal reductions per axis.
        coupling:
            Fractional coupling of each distal axis into its proximal
            neighbour (dimensionless, small).
        matrix:
            Full joint-to-motor matrix; overrides ``gear_ratios``/``coupling``
            when given.
        """
        if matrix is not None:
            g = np.asarray(matrix, dtype=float)
        else:
            ratios = np.asarray(gear_ratios, dtype=float)
            if np.any(ratios <= 0.0):
                raise DynamicsError("gear ratios must be positive")
            n = len(ratios)
            g = np.diag(ratios)
            for i in range(1, n):
                # Distal cable i rides over proximal pulley i-1.
                g[i, i - 1] = coupling * ratios[i]
        if g.ndim != 2 or g.shape[0] != g.shape[1]:
            raise DynamicsError("transmission matrix must be square")
        if abs(np.linalg.det(g)) < _SINGULAR_DET_EPS:
            raise DynamicsError("transmission matrix must be invertible")
        self._g = g
        self._g_inv = np.linalg.inv(g)

    @property
    def joint_to_motor(self) -> np.ndarray:
        """The joint-to-motor position matrix ``G`` (copy)."""
        return self._g.copy()

    @property
    def num_axes(self) -> int:
        """Number of transmission axes."""
        return self._g.shape[0]

    def motor_positions(self, jpos: np.ndarray) -> np.ndarray:
        """Motor shaft positions for joint positions ``jpos``."""
        return self._g @ np.asarray(jpos, dtype=float)

    def joint_positions(self, mpos: np.ndarray) -> np.ndarray:
        """Joint positions for motor shaft positions ``mpos``."""
        return self._g_inv @ np.asarray(mpos, dtype=float)

    def motor_velocities(self, jvel: np.ndarray) -> np.ndarray:
        """Motor shaft velocities for joint velocities ``jvel``."""
        return self._g @ np.asarray(jvel, dtype=float)

    def joint_torques(self, motor_torques: np.ndarray) -> np.ndarray:
        """Joint-space generalized forces produced by motor torques."""
        return self._g.T @ np.asarray(motor_torques, dtype=float)

    def reflected_inertia(self, rotor_inertias: Sequence[float]) -> np.ndarray:
        """Joint-space inertia contributed by the motor rotors.

        For rigid transmission, ``M_reflected = G.T @ diag(J_rotor) @ G``.
        """
        j = np.diag(np.asarray(rotor_inertias, dtype=float))
        return self._g.T @ j @ self._g

    def reflected_damping(self, rotor_dampings: Sequence[float]) -> np.ndarray:
        """Joint-space viscous damping contributed by the motor rotors."""
        b = np.diag(np.asarray(rotor_dampings, dtype=float))
        return self._g.T @ b @ self._g

"""Brushed DC motor models for the RAVEN II actuators.

The RAVEN II drives its cable transmissions with MAXON RE40 (shoulder and
elbow) and RE30 (instrument axes) brushed DC motors.  The motor controllers
on the USB interface boards are *current* controlled: a DAC count commands a
winding-current setpoint, an inner analog current loop tracks it, and the
shaft torque is ``kt * i``.

We model the closed current loop as a first-order lag with time constant
``current_loop_tau`` (the loop bandwidth of a MAXON servo amplifier is a few
kHz, far above the 1 kHz software loop), with the setpoint saturated at
``max_current``.  The rotor's mechanical dynamics (inertia, viscous
damping) are reflected into the joint-space equations by the plant via the
transmission.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MotorParameters:
    """Datasheet-style parameters of a brushed DC motor + servo amplifier.

    Attributes
    ----------
    name:
        Human-readable model name.
    torque_constant:
        ``kt`` in N*m/A.
    back_emf_constant:
        ``ke`` in V*s/rad (numerically equals ``kt`` in SI units).
    terminal_resistance:
        Winding resistance in ohms.
    terminal_inductance:
        Winding inductance in henries.
    rotor_inertia:
        Rotor inertia in kg*m^2.
    viscous_damping:
        Rotor viscous friction in N*m*s/rad.
    max_current:
        Amplifier current limit in amperes (peak).
    current_loop_tau:
        First-order time constant of the closed current loop in seconds.
    """

    name: str
    torque_constant: float
    back_emf_constant: float
    terminal_resistance: float
    terminal_inductance: float
    rotor_inertia: float
    viscous_damping: float
    max_current: float
    current_loop_tau: float = 2e-4

    def __post_init__(self) -> None:
        for attr in (
            "torque_constant",
            "back_emf_constant",
            "terminal_resistance",
            "terminal_inductance",
            "rotor_inertia",
            "max_current",
            "current_loop_tau",
        ):
            if getattr(self, attr) <= 0.0:
                raise ValueError(f"{attr} must be positive")
        if self.viscous_damping < 0.0:
            raise ValueError("viscous_damping must be non-negative")

    def torque(self, current: float) -> float:
        """Shaft torque (N*m) at winding current ``current`` (A)."""
        return self.torque_constant * current

    def clamp_current(self, current: float) -> float:
        """Saturate a current setpoint at the amplifier limit."""
        limit = self.max_current
        return max(-limit, min(limit, current))

    def current_derivative(self, current: float, setpoint: float) -> float:
        """``di/dt`` of the first-order closed current loop (A/s)."""
        return (self.clamp_current(setpoint) - current) / self.current_loop_tau

    def electrical_time_constant(self) -> float:
        """Open-winding L/R time constant (s), for reference/tests."""
        return self.terminal_inductance / self.terminal_resistance

    def perturbed(self, scale: float, suffix: str = "-model") -> "MotorParameters":
        """A copy with inertia/damping/kt scaled by ``scale``.

        Used to build the *detector's* dynamic model with imperfect
        coefficients — the paper obtains its model coefficients by manual
        tuning, so model and plant never match exactly.
        """
        return MotorParameters(
            name=self.name + suffix,
            torque_constant=self.torque_constant * scale,
            back_emf_constant=self.back_emf_constant * scale,
            terminal_resistance=self.terminal_resistance,
            terminal_inductance=self.terminal_inductance,
            rotor_inertia=self.rotor_inertia * scale,
            viscous_damping=self.viscous_damping * scale,
            max_current=self.max_current,
            current_loop_tau=self.current_loop_tau,
        )


#: MAXON RE40 (150 W) — drives the shoulder and elbow axes.
MAXON_RE40 = MotorParameters(
    name="MAXON RE40",
    torque_constant=30.2e-3,
    back_emf_constant=30.2e-3,
    terminal_resistance=0.317,
    terminal_inductance=0.0823e-3,
    rotor_inertia=1.42e-5,
    viscous_damping=2.0e-6,
    max_current=6.0,
)

#: MAXON RE30 (60 W) — drives the instrument insertion axis.
MAXON_RE30 = MotorParameters(
    name="MAXON RE30",
    torque_constant=25.9e-3,
    back_emf_constant=25.9e-3,
    terminal_resistance=0.611,
    terminal_inductance=0.119e-3,
    rotor_inertia=3.35e-6,
    viscous_damping=1.0e-6,
    max_current=4.0,
)

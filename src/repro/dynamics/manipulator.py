"""Link (joint) dynamics of the 3-DOF RAVEN II positioning arm.

Following the paper (Section IV.A.1), only the first three degrees of
freedom — shoulder rotation, elbow rotation and tool insertion — are
modelled dynamically; they are the positioning joints that dominate the
end-effector position.

The mechanism is spherical, so the moving masses are compactly described by
point masses riding on the tool axis plus constant link inertias about the
joint axes:

- link 2's centre of mass sits a fixed distance ``r2`` from the RCM along
  the tool-axis direction ``u(q1, q2)``;
- the instrument (plus carriage) of mass ``m3`` sits at the insertion depth
  ``d`` along the same direction.

With point positions ``p_k = f_k(q)`` and Jacobians ``J_k = dp_k/dq``, the
standard Lagrangian form follows exactly:

    M(q)        = M0 + sum_k m_k J_k^T J_k
    C(q, qdot)qdot = sum_k m_k J_k^T (Jdot_k qdot)
    g(q)        = -sum_k m_k J_k^T gravity_vector

``Jdot_k qdot`` is evaluated by a directional finite difference of the
analytic Jacobian along ``qdot`` (exact as the step goes to zero; the step
used is far below any scale that matters at surgical velocities).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.dynamics.friction import FrictionModel
from repro.kinematics.jacobian import position_jacobian
from repro.kinematics.spherical_arm import ArmGeometry, SphericalArm

#: Gravitational acceleration vector in the world frame (z up), m/s^2.
GRAVITY = np.array([0.0, 0.0, -9.81])

#: Step used for the directional finite difference of the Jacobian.
_JDOT_EPS = 1e-6

#: Joint-velocity norm below which Coriolis terms are treated as zero
#: (avoids dividing by a vanishing speed in the finite difference).
_SPEED_EPS = 1e-12


def _solve3(m: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve the symmetric 3x3 system ``m @ x = b`` by Cramer's rule.

    ~5x faster than ``np.linalg.solve`` at this size; the inertia matrix is
    positive definite so the determinant is safely bounded away from zero.
    """
    a00, a01, a02 = m[0]
    a10, a11, a12 = m[1]
    a20, a21, a22 = m[2]
    c00 = a11 * a22 - a12 * a21
    c01 = a12 * a20 - a10 * a22
    c02 = a10 * a21 - a11 * a20
    det = a00 * c00 + a01 * c01 + a02 * c02
    b0, b1, b2 = b
    x0 = (
        b0 * c00
        + a01 * (a12 * b2 - b1 * a22)
        + a02 * (b1 * a21 - a11 * b2)
    ) / det
    x1 = (
        a00 * (b1 * a22 - a12 * b2)
        + b0 * c01
        + a02 * (a10 * b2 - b1 * a20)
    ) / det
    x2 = (
        a00 * (a11 * b2 - b1 * a21)
        + a01 * (b1 * a20 - a10 * b2)
        + b0 * c02
    ) / det
    return np.array([x0, x1, x2])


@dataclass(frozen=True)
class ManipulatorParameters:
    """Inertial parameters of one positioning arm.

    Attributes
    ----------
    base_inertias:
        Constant link inertias about the three joint axes: ``I1`` about the
        base axis, ``I2`` about the joint-2 axis (kg*m^2), and a small
        carriage mass term for the prismatic axis (kg).
    link2_mass:
        Mass lumped at ``link2_com_radius`` along the tool axis (kg).
    link2_com_radius:
        Distance of link-2's lumped mass from the RCM (m).
    instrument_mass:
        Mass of the instrument + carriage riding at the insertion depth (kg).
    """

    base_inertias: np.ndarray = field(
        default_factory=lambda: np.array([8.0e-3, 5.0e-3, 0.05])
    )
    link2_mass: float = 0.35
    link2_com_radius: float = 0.10
    instrument_mass: float = 0.15

    def __post_init__(self) -> None:
        inertias = np.asarray(self.base_inertias, dtype=float)
        if inertias.shape != (3,) or np.any(inertias <= 0.0):
            raise ValueError("base_inertias must be three positive values")
        object.__setattr__(self, "base_inertias", inertias)
        if self.link2_mass <= 0.0 or self.instrument_mass <= 0.0:
            raise ValueError("masses must be positive")
        if self.link2_com_radius <= 0.0:
            raise ValueError("link2_com_radius must be positive")

    def scaled(self, scale: float) -> "ManipulatorParameters":
        """A copy with masses/inertias scaled (model-mismatch studies)."""
        return ManipulatorParameters(
            base_inertias=self.base_inertias * scale,
            link2_mass=self.link2_mass * scale,
            link2_com_radius=self.link2_com_radius,
            instrument_mass=self.instrument_mass * scale,
        )


class ManipulatorDynamics:
    """Computes M(q), Coriolis and gravity forces for the positioning arm."""

    def __init__(
        self,
        params: Optional[ManipulatorParameters] = None,
        geometry: Optional[ArmGeometry] = None,
        friction: Optional[FrictionModel] = None,
        include_coriolis: bool = True,
        include_gravity: bool = True,
    ) -> None:
        self.params = params or ManipulatorParameters()
        self.arm = SphericalArm(geometry)
        self.friction = friction or FrictionModel()
        self.include_coriolis = include_coriolis
        self.include_gravity = include_gravity
        self._m0 = np.diag(self.params.base_inertias).astype(float)

    # -- point-mass Jacobians -------------------------------------------------

    def _instrument_jacobian(self, q: np.ndarray) -> np.ndarray:
        """Jacobian of the instrument point mass at depth ``q[2]``."""
        return position_jacobian(self.arm, q)

    def _link2_jacobian(self, q: np.ndarray) -> np.ndarray:
        """Jacobian of link 2's lumped mass (fixed radius, no d column)."""
        q_fixed = np.array([q[0], q[1], self.params.link2_com_radius])
        jac = position_jacobian(self.arm, q_fixed)
        jac[:, 2] = 0.0  # link-2 COM does not move with insertion
        return jac

    # -- dynamics terms -------------------------------------------------------

    def mass_matrix(self, q: np.ndarray) -> np.ndarray:
        """Joint-space inertia matrix M(q) of the links (without rotors)."""
        p = self.params
        j3 = self._instrument_jacobian(q)
        j2 = self._link2_jacobian(q)
        m = np.diag(p.base_inertias).astype(float)
        m += p.instrument_mass * (j3.T @ j3)
        m += p.link2_mass * (j2.T @ j2)
        return m

    def coriolis_force(self, q: np.ndarray, qdot: np.ndarray) -> np.ndarray:
        """Coriolis/centrifugal generalized force ``C(q, qdot) @ qdot``."""
        if not self.include_coriolis:
            return np.zeros(3)
        p = self.params
        qdot = np.asarray(qdot, dtype=float)
        speed = float(np.linalg.norm(qdot))
        if speed < _SPEED_EPS:
            return np.zeros(3)
        eps = _JDOT_EPS / speed
        q_ahead = np.asarray(q, dtype=float) + eps * qdot
        force = np.zeros(3)
        for mass, jac_fn in (
            (p.instrument_mass, self._instrument_jacobian),
            (p.link2_mass, self._link2_jacobian),
        ):
            jac = jac_fn(q)
            jdot_qdot = (jac_fn(q_ahead) - jac) @ qdot / eps
            force += mass * (jac.T @ jdot_qdot)
        return force

    def gravity_force(self, q: np.ndarray) -> np.ndarray:
        """Gravity generalized force (put on the LHS of the EOM)."""
        if not self.include_gravity:
            return np.zeros(3)
        p = self.params
        j3 = self._instrument_jacobian(q)
        j2 = self._link2_jacobian(q)
        return -(
            p.instrument_mass * (j3.T @ GRAVITY)
            + p.link2_mass * (j2.T @ GRAVITY)
        )

    def friction_force(self, qdot: np.ndarray) -> np.ndarray:
        """Joint friction generalized force opposing motion."""
        return self.friction.torque(qdot)

    def acceleration(
        self,
        q: np.ndarray,
        qdot: np.ndarray,
        tau: np.ndarray,
        extra_inertia: Optional[np.ndarray] = None,
        extra_damping: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Joint accelerations under applied joint torques ``tau``.

        ``extra_inertia``/``extra_damping`` let the plant add the motor
        rotors' reflected inertia and damping without re-deriving the EOM.

        This is the hot path of every derivative evaluation, so the point-
        mass Jacobians are computed once and shared between the inertia,
        Coriolis and gravity terms (the split ``mass_matrix`` /
        ``coriolis_force`` / ``gravity_force`` methods remain for tests and
        offline analysis).
        """
        p = self.params
        q = np.asarray(q, dtype=float)
        qdot = np.asarray(qdot, dtype=float)
        j3 = self._instrument_jacobian(q)
        j2 = self._link2_jacobian(q)

        m = self._m0 + p.instrument_mass * (j3.T @ j3) + p.link2_mass * (j2.T @ j2)
        if extra_inertia is not None:
            m = m + extra_inertia

        rhs = np.asarray(tau, dtype=float) - self.friction_force(qdot)

        if self.include_gravity:
            # J.T @ (0, 0, -9.81) is just -9.81 times the third row of J.
            rhs += (GRAVITY[2] * p.instrument_mass) * j3[2, :]
            rhs += (GRAVITY[2] * p.link2_mass) * j2[2, :]

        if self.include_coriolis:
            speed = float(np.linalg.norm(qdot))
            if speed > _SPEED_EPS:
                eps = _JDOT_EPS / speed
                q_ahead = q + eps * qdot
                j3a = self._instrument_jacobian(q_ahead)
                j2a = self._link2_jacobian(q_ahead)
                rhs -= p.instrument_mass * (j3.T @ ((j3a - j3) @ qdot / eps))
                rhs -= p.link2_mass * (j2.T @ ((j2a - j2) @ qdot / eps))

        if extra_damping is not None:
            rhs = rhs - extra_damping @ qdot
        return _solve3(m, rhs)

    def gravity_compensation(self, q: np.ndarray) -> np.ndarray:
        """Joint torques that exactly cancel gravity at pose ``q``."""
        return self.gravity_force(q)

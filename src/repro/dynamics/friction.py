"""Joint friction model: viscous plus smoothed Coulomb friction.

Cable-driven joints have significant Coulomb friction.  A discontinuous
``sign(qdot)`` term would make the ODEs stiff at zero crossings, so the
Coulomb component is smoothed with ``tanh(qdot / v_eps)`` — standard
practice for fixed-step simulation of robot dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class FrictionModel:
    """Per-joint viscous + smoothed-Coulomb friction.

    Attributes
    ----------
    viscous:
        Viscous coefficients (N*m*s/rad, or N*s/m for the prismatic joint).
    coulomb:
        Coulomb magnitudes (N*m, or N for the prismatic joint).
    smoothing_velocity:
        Velocity scale of the tanh smoothing (rad/s or m/s).
    """

    viscous: np.ndarray = field(
        default_factory=lambda: np.array([0.08, 0.08, 2.0])
    )
    coulomb: np.ndarray = field(
        default_factory=lambda: np.array([0.05, 0.05, 0.8])
    )
    smoothing_velocity: float = 1e-2

    def __post_init__(self) -> None:
        v = np.asarray(self.viscous, dtype=float)
        c = np.asarray(self.coulomb, dtype=float)
        if v.shape != c.shape:
            raise ValueError("viscous and coulomb must have the same shape")
        if np.any(v < 0.0) or np.any(c < 0.0):
            raise ValueError("friction coefficients must be non-negative")
        if self.smoothing_velocity <= 0.0:
            raise ValueError("smoothing_velocity must be positive")
        object.__setattr__(self, "viscous", v)
        object.__setattr__(self, "coulomb", c)

    def torque(self, qdot: Sequence[float]) -> np.ndarray:
        """Friction generalized force opposing motion (same sign as ``qdot``).

        The caller subtracts this from the applied torque.
        """
        qdot = np.asarray(qdot, dtype=float)
        return self.viscous * qdot + self.coulomb * np.tanh(
            qdot / self.smoothing_velocity
        )

    def scaled(self, scale: float) -> "FrictionModel":
        """A copy with all coefficients scaled (for model-mismatch studies)."""
        return FrictionModel(
            viscous=self.viscous * scale,
            coulomb=self.coulomb * scale,
            smoothing_velocity=self.smoothing_velocity,
        )

"""The coupled motor + manipulator plant of one RAVEN II arm.

This is the "physical robot" of the simulation framework (Figure 7(a) of
the paper): it receives the same DAC commands the control software sends to
the USB boards, integrates the motor and link ODEs, and exposes motor-shaft
positions for the encoders to read back.

State vector (9 elements): ``[q (3), qdot (3), i (3)]`` — joint positions,
joint velocities and motor winding currents.  Motor positions/velocities
are slaved to the joints through the rigid transmission.

The plant also models the PLC-controlled fail-safe brakes: while engaged
(Pedal-Up / E-STOP states) the joints are locked and DAC commands produce
no motion — which is why the paper's attacker must wait for "Pedal Down".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import constants
from repro.dynamics.integrators import get_integrator
from repro.dynamics.manipulator import ManipulatorDynamics
from repro.dynamics.motor import MAXON_RE30, MAXON_RE40, MotorParameters
from repro.dynamics.transmission import Transmission
from repro.errors import DynamicsError

#: Default motor fit-out: RE40 on shoulder and elbow, RE30 on insertion.
DEFAULT_MOTORS = (MAXON_RE40, MAXON_RE40, MAXON_RE30)


@dataclass
class PlantState:
    """Snapshot of the plant state at one instant."""

    time: float
    jpos: np.ndarray
    jvel: np.ndarray
    currents: np.ndarray
    mpos: np.ndarray
    mvel: np.ndarray
    brakes_engaged: bool

    def copy(self) -> "PlantState":
        """Deep copy of the snapshot."""
        return PlantState(
            time=self.time,
            jpos=self.jpos.copy(),
            jvel=self.jvel.copy(),
            currents=self.currents.copy(),
            mpos=self.mpos.copy(),
            mvel=self.mvel.copy(),
            brakes_engaged=self.brakes_engaged,
        )


def dac_to_current(dac_values: Sequence[float]) -> np.ndarray:
    """Convert DAC counts to current setpoints (A)."""
    dac = np.asarray(dac_values, dtype=float)
    return dac / constants.DAC_FULL_SCALE * constants.DAC_FULL_SCALE_CURRENT_A


def current_to_dac(currents: Sequence[float]) -> np.ndarray:
    """Convert current setpoints (A) to (float) DAC counts."""
    cur = np.asarray(currents, dtype=float)
    return cur / constants.DAC_FULL_SCALE_CURRENT_A * constants.DAC_FULL_SCALE


class RavenPlant:
    """Forward-simulates one arm: DAC commands in, joint/motor state out."""

    def __init__(
        self,
        dynamics: Optional[ManipulatorDynamics] = None,
        motors: Sequence[MotorParameters] = DEFAULT_MOTORS,
        transmission: Optional[Transmission] = None,
        integrator: str = "rk4",
        substeps: int = 2,
        initial_jpos: Optional[np.ndarray] = None,
    ) -> None:
        """Create the plant.

        Parameters
        ----------
        dynamics:
            Link dynamics; a default RAVEN-like arm when omitted.
        motors:
            One :class:`MotorParameters` per axis.
        transmission:
            Motor-joint transmission; default RAVEN-like ratios.
        integrator:
            Stepper used to advance the plant ODEs (the *plant* defaults to
            RK4 with substeps as ground truth; the real-time *detector
            model* makes its own cheaper choice).
        substeps:
            Integration substeps per 1 ms control period.
        initial_jpos:
            Starting joint vector; defaults to the mid-workspace pose.
        """
        if len(motors) != 3:
            raise DynamicsError("exactly three motors are required")
        self.dynamics = dynamics or ManipulatorDynamics()
        self.motors = tuple(motors)
        self.transmission = transmission or Transmission()
        self._stepper = get_integrator(integrator)
        self.integrator_name = integrator
        if substeps < 1:
            raise DynamicsError("substeps must be >= 1")
        self.substeps = substeps

        self._reflected_inertia = self.transmission.reflected_inertia(
            [m.rotor_inertia for m in self.motors]
        )
        self._reflected_damping = self.transmission.reflected_damping(
            [m.viscous_damping for m in self.motors]
        )
        self._kt = np.array([m.torque_constant for m in self.motors])
        self._tau_i = np.array([m.current_loop_tau for m in self.motors])
        self._i_max = np.array([m.max_current for m in self.motors])

        if initial_jpos is None:
            initial_jpos = np.array([0.0, 0.0, constants.JOINT3_NEUTRAL_M])
        self._time = 0.0
        self._y = np.concatenate(
            [np.asarray(initial_jpos, dtype=float), np.zeros(3), np.zeros(3)]
        )
        self.brakes_engaged = True
        #: Seconds for the fail-safe power-off brakes to fully clamp after
        #: an engage request (see :data:`repro.constants.BRAKE_ENGAGE_DELAY_S`).
        self.brake_delay_s = constants.BRAKE_ENGAGE_DELAY_S
        self._brake_countdown: Optional[float] = None

    # -- state access ---------------------------------------------------------

    @property
    def jpos(self) -> np.ndarray:
        """Joint positions (rad, rad, m)."""
        return self._y[0:3].copy()

    @property
    def jvel(self) -> np.ndarray:
        """Joint velocities."""
        return self._y[3:6].copy()

    @property
    def currents(self) -> np.ndarray:
        """Motor winding currents (A)."""
        return self._y[6:9].copy()

    @property
    def mpos(self) -> np.ndarray:
        """Motor shaft positions (rad)."""
        return self.transmission.motor_positions(self._y[0:3])

    @property
    def mvel(self) -> np.ndarray:
        """Motor shaft velocities (rad/s)."""
        return self.transmission.motor_velocities(self._y[3:6])

    @property
    def time(self) -> float:
        """Simulated plant time (s)."""
        return self._time

    def snapshot(self) -> PlantState:
        """Immutable snapshot of the current state."""
        return PlantState(
            time=self._time,
            jpos=self.jpos,
            jvel=self.jvel,
            currents=self.currents,
            mpos=self.mpos,
            mvel=self.mvel,
            brakes_engaged=self.brakes_engaged,
        )

    def set_state(self, jpos: np.ndarray, jvel: Optional[np.ndarray] = None) -> None:
        """Force the joint state (used for homing and test setup)."""
        self._y[0:3] = np.asarray(jpos, dtype=float)
        self._y[3:6] = 0.0 if jvel is None else np.asarray(jvel, dtype=float)
        self._y[6:9] = 0.0

    def engage_brakes(self) -> None:
        """Start engaging the fail-safe power-off brakes.

        Idempotent: repeated calls while the brakes are closing do not
        restart the countdown.  Motor power is cut immediately; the joints
        lock after :attr:`brake_delay_s` seconds of coasting.
        """
        if self.brakes_engaged or self._brake_countdown is not None:
            return
        if self.brake_delay_s <= 0.0:
            self._lock_brakes()
        else:
            self._brake_countdown = self.brake_delay_s

    def _lock_brakes(self) -> None:
        self.brakes_engaged = True
        self._brake_countdown = None
        self._y[3:6] = 0.0
        self._y[6:9] = 0.0

    def release_brakes(self) -> None:
        """Release the brakes (PLC does this on entering Pedal Down)."""
        self.brakes_engaged = False
        self._brake_countdown = None

    @property
    def brakes_engaging(self) -> bool:
        """Whether an engage request is pending (brakes still closing)."""
        return self._brake_countdown is not None

    # -- simulation -----------------------------------------------------------

    def _derivative(self, setpoints: np.ndarray, i0: np.ndarray, t0: float):
        """ODE right-hand side for the mechanical state ``[q, qdot]``.

        The closed current loops are linear first-order systems driven by a
        setpoint held constant over the control period, so their response
        ``i(t) = sp + (i0 - sp) * exp(-(t - t0) / tau)`` is evaluated
        analytically inside the derivative.  This removes the only stiff
        mode from the ODE and lets both the plant and the 1 ms Euler
        detector model integrate the mechanics alone.
        """
        transmission = self.transmission
        dynamics = self.dynamics
        kt = self._kt
        refl_m = self._reflected_inertia
        refl_b = self._reflected_damping
        tau_i = self._tau_i

        def f(t: float, y: np.ndarray) -> np.ndarray:
            cur = setpoints + (i0 - setpoints) * np.exp(-(t - t0) / tau_i)
            tau_joint = transmission.joint_torques(kt * cur)
            qddot = dynamics.acceleration(
                y[0:3],
                y[3:6],
                tau_joint,
                extra_inertia=refl_m,
                extra_damping=refl_b,
            )
            return np.concatenate([y[3:6], qddot])

        return f

    def step(
        self, dac_values: Sequence[float], dt: float = constants.CONTROL_PERIOD_S
    ) -> PlantState:
        """Advance the plant by one control period under ``dac_values``.

        When the brakes are engaged the joints stay locked and the DAC
        command has no mechanical effect (the motors are also powered off).
        While the brakes are *closing* the arm coasts: motors are unpowered
        (zero current setpoint) but the mechanism keeps moving under its
        momentum, friction and gravity until the clamp completes.
        """
        if self.brakes_engaged:
            self._time += dt
            return self.snapshot()
        if self._brake_countdown is not None:
            dac_values = np.zeros(3)
            self._brake_countdown -= dt
        setpoints = dac_to_current(dac_values)
        setpoints = np.clip(setpoints, -self._i_max, self._i_max)
        i0 = self._y[6:9].copy()
        t0 = self._time
        f = self._derivative(setpoints, i0, t0)
        h = dt / self.substeps
        y = self._y[0:6]
        t = t0
        for _ in range(self.substeps):
            y = self._stepper(f, t, y, h)
            t += h
        self._y[0:6] = y
        self._y[6:9] = setpoints + (i0 - setpoints) * np.exp(-dt / self._tau_i)
        self._time = t0 + dt
        if self._brake_countdown is not None and self._brake_countdown <= 0.0:
            self._lock_brakes()
        return self.snapshot()

"""Hardware models: USB interface boards, motor controllers, encoders, PLC.

These are the components below the software/hardware boundary in
Figure 1(b) of the paper.  Two properties are modelled faithfully because
the attack depends on them:

- every USB packet written by the control software carries the robot's
  operational state and the watchdog square wave in Byte 0 (the side
  channel the offline analysis mines), and
- the USB boards do **not** verify packet integrity, so commands modified
  after the software safety checks are executed unchecked (the TOCTOU
  vulnerability of attack scenario B).

Public API
----------
- :mod:`repro.hw.usb_packet` — packet encode/decode.
- :class:`UsbBoard` — the 8-channel USB interface board.
- :class:`MotorController` — DAC-to-motor execution.
- :class:`EncoderBank` — quadrature encoder quantization.
- :class:`Plc` — safety PLC: watchdog monitor, brakes, E-STOP latch.
"""

from repro.hw.usb_packet import (
    COMMAND_PACKET_SIZE,
    FEEDBACK_PACKET_SIZE,
    CommandPacket,
    FeedbackPacket,
    decode_command_packet,
    decode_feedback_packet,
    encode_command_packet,
    encode_feedback_packet,
)
from repro.hw.encoder import EncoderBank
from repro.hw.motor_controller import MotorController
from repro.hw.plc import Plc
from repro.hw.usb_board import UsbBoard

__all__ = [
    "COMMAND_PACKET_SIZE",
    "FEEDBACK_PACKET_SIZE",
    "CommandPacket",
    "EncoderBank",
    "FeedbackPacket",
    "MotorController",
    "Plc",
    "UsbBoard",
    "decode_command_packet",
    "decode_feedback_packet",
    "encode_command_packet",
    "encode_feedback_packet",
]

"""Motor controllers: latch DAC commands and drive the plant.

The motor controllers on the USB interface boards convert the latest DAC
command to a winding-current setpoint and hold it for the next control
period (zero-order hold).  They execute whatever they are given — the
current clamp in the servo amplifier is the only hardware-side limit,
mirroring the real system where "a corrupted or incorrect motor command can
pass to the motors".
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import constants
from repro.dynamics.plant import PlantState, RavenPlant


class MotorController:
    """Zero-order-hold DAC execution on the physical plant."""

    def __init__(self, plant: RavenPlant) -> None:
        self.plant = plant
        self._latched_dac = np.zeros(3)
        self._powered = True

    @property
    def latched_dac(self) -> np.ndarray:
        """The DAC command currently held for execution."""
        return self._latched_dac.copy()

    @property
    def powered(self) -> bool:
        """Whether motor power is on (PLC can cut it in E-STOP)."""
        return self._powered

    def latch(self, dac_values: Sequence[float]) -> None:
        """Latch a new DAC command (first three channels are the motors)."""
        dac = np.asarray(dac_values, dtype=float)[:3]
        self._latched_dac = dac

    def power_off(self) -> None:
        """Cut motor power (PLC E-STOP); zero command until power returns."""
        self._powered = False
        self._latched_dac = np.zeros(3)

    def power_on(self) -> None:
        """Restore motor power (operator cleared the E-STOP)."""
        self._powered = True

    def tick(self, dt: float = constants.CONTROL_PERIOD_S) -> PlantState:
        """Execute the held command on the plant for one control period."""
        dac = self._latched_dac if self._powered else np.zeros(3)
        return self.plant.step(dac, dt)

"""USB packet formats between the control software and the USB I/O boards.

Command packets (software -> board), 18 bytes, as in Figure 5 of the paper:

    Byte 0      operational-state nibble | watchdog square wave in bit 4
    Bytes 1-16  eight 16-bit big-endian signed DAC commands
    Byte 17     additive checksum of bytes 0-16

Feedback packets (board -> software), 26 bytes:

    Byte 0      state echo | watchdog echo (bit 4)
    Bytes 1-24  eight 24-bit big-endian signed encoder counts
    Byte 25     additive checksum of bytes 0-24

The checksum exists but the USB board never verifies it on received
command packets — the integrity gap the paper's scenario-B attack rides
through.  The *decoder* reports checksum validity so honest parties (and
the detector) may check it, while the board deliberately ignores it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro import constants
from repro.control.state_machine import RobotState
from repro.errors import PacketError

#: Size of a command packet (bytes).
COMMAND_PACKET_SIZE = constants.USB_PACKET_SIZE

#: Size of a feedback packet (bytes).
FEEDBACK_PACKET_SIZE = 26

_INT16_MIN, _INT16_MAX = -(1 << 15), (1 << 15) - 1
_INT24_MIN, _INT24_MAX = -(1 << 23), (1 << 23) - 1


def _checksum(data: bytes) -> int:
    return sum(data) & 0xFF


def _state_byte(state: RobotState, watchdog: bool) -> int:
    value = state.byte_value
    if watchdog:
        value |= 1 << constants.USB_WATCHDOG_BIT
    return value


@dataclass(frozen=True)
class CommandPacket:
    """Decoded command packet."""

    raw_state_byte: int
    state: RobotState
    watchdog: bool
    dac_values: List[int]
    checksum_ok: bool


@dataclass(frozen=True)
class FeedbackPacket:
    """Decoded feedback packet."""

    raw_state_byte: int
    state: RobotState
    watchdog: bool
    encoder_counts: List[int]
    checksum_ok: bool


def encode_command_packet(
    state: RobotState, watchdog: bool, dac_values: Sequence[int]
) -> bytes:
    """Encode a command packet.

    ``dac_values`` may have up to 8 channels; missing channels are zero.

    Raises
    ------
    PacketError
        If a DAC value does not fit in a signed 16-bit field.
    """
    if len(dac_values) > constants.USB_NUM_CHANNELS:
        raise PacketError(f"at most {constants.USB_NUM_CHANNELS} DAC channels")
    payload = bytearray(COMMAND_PACKET_SIZE)
    payload[constants.USB_STATE_BYTE] = _state_byte(state, watchdog)
    for channel, value in enumerate(dac_values):
        value = int(value)
        if not (_INT16_MIN <= value <= _INT16_MAX):
            raise PacketError(f"DAC value {value} out of int16 range")
        offset = constants.USB_DAC_OFFSET + 2 * channel
        payload[offset : offset + 2] = value.to_bytes(2, "big", signed=True)
    payload[constants.USB_CHECKSUM_OFFSET] = _checksum(
        bytes(payload[: constants.USB_CHECKSUM_OFFSET])
    )
    return bytes(payload)


def decode_command_packet(data: bytes) -> CommandPacket:
    """Decode a command packet (reports, but does not enforce, the checksum)."""
    if len(data) != COMMAND_PACKET_SIZE:
        raise PacketError(
            f"command packet must be {COMMAND_PACKET_SIZE} bytes, got {len(data)}"
        )
    raw_state = data[constants.USB_STATE_BYTE]
    state = RobotState.from_byte(raw_state)
    watchdog = bool(raw_state & (1 << constants.USB_WATCHDOG_BIT))
    dac_values = []
    for channel in range(constants.USB_NUM_CHANNELS):
        offset = constants.USB_DAC_OFFSET + 2 * channel
        dac_values.append(int.from_bytes(data[offset : offset + 2], "big", signed=True))
    checksum_ok = data[constants.USB_CHECKSUM_OFFSET] == _checksum(
        data[: constants.USB_CHECKSUM_OFFSET]
    )
    return CommandPacket(
        raw_state_byte=raw_state,
        state=state,
        watchdog=watchdog,
        dac_values=dac_values,
        checksum_ok=checksum_ok,
    )


def encode_feedback_packet(
    state: RobotState, watchdog: bool, encoder_counts: Sequence[int]
) -> bytes:
    """Encode a feedback packet with up to 8 encoder channels."""
    if len(encoder_counts) > constants.USB_NUM_CHANNELS:
        raise PacketError(f"at most {constants.USB_NUM_CHANNELS} encoder channels")
    payload = bytearray(FEEDBACK_PACKET_SIZE)
    payload[0] = _state_byte(state, watchdog)
    for channel, value in enumerate(encoder_counts):
        value = int(value)
        if not (_INT24_MIN <= value <= _INT24_MAX):
            raise PacketError(f"encoder count {value} out of int24 range")
        offset = 1 + 3 * channel
        payload[offset : offset + 3] = value.to_bytes(3, "big", signed=True)
    payload[FEEDBACK_PACKET_SIZE - 1] = _checksum(
        bytes(payload[: FEEDBACK_PACKET_SIZE - 1])
    )
    return bytes(payload)


def decode_feedback_packet(data: bytes) -> FeedbackPacket:
    """Decode a feedback packet."""
    if len(data) != FEEDBACK_PACKET_SIZE:
        raise PacketError(
            f"feedback packet must be {FEEDBACK_PACKET_SIZE} bytes, got {len(data)}"
        )
    raw_state = data[0]
    state = RobotState.from_byte(raw_state)
    watchdog = bool(raw_state & (1 << constants.USB_WATCHDOG_BIT))
    counts = []
    for channel in range(constants.USB_NUM_CHANNELS):
        offset = 1 + 3 * channel
        counts.append(int.from_bytes(data[offset : offset + 3], "big", signed=True))
    checksum_ok = data[FEEDBACK_PACKET_SIZE - 1] == _checksum(
        data[: FEEDBACK_PACKET_SIZE - 1]
    )
    return FeedbackPacket(
        raw_state_byte=raw_state,
        state=state,
        watchdog=watchdog,
        encoder_counts=counts,
        checksum_ok=checksum_ok,
    )

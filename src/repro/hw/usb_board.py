"""The custom 8-channel USB interface board.

The board sits between the control software and the motor controllers/PLC
(Figure 1(b)).  It appears to the control process as a file descriptor:
``write`` delivers a command packet, ``read`` returns a feedback packet
with the encoder counts.

Security-relevant behaviour reproduced from the paper:

- the board does **not** verify the integrity of received command packets
  (the checksum is ignored), so bytes modified after the software safety
  checks are executed as-is;
- every command packet carries the operational state and watchdog in
  Byte 0, which the board forwards to the PLC — and which any wrapper
  around ``write`` can observe (the state side channel).

An optional *guard* hook runs before a command packet is executed; the
dynamic-model detector of Section IV installs itself there, the paper's
suggested "last computational component before the motor controllers".

An optional *DAC fault* hook (:attr:`UsbBoard.dac_fault`) corrupts the DAC
values **after** the guard decision, on their way into the motor
controllers — modelling output-hardware faults (stuck-at channels, driver
saturation) that no software component, detector included, can observe
directly.  :mod:`repro.testing.physfaults` installs it; production pays
one attribute check.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.errors import PacketError
from repro.hw.encoder import EncoderBank
from repro.hw.motor_controller import MotorController
from repro.hw.plc import Plc
from repro.hw.usb_packet import (
    CommandPacket,
    decode_command_packet,
    encode_feedback_packet,
)

#: A guard receives the decoded packet and the raw bytes and returns True to
#: allow execution, False to block it.
Guard = Callable[[CommandPacket, bytes], bool]


class UsbBoard:
    """One USB interface board driving three motor channels."""

    def __init__(
        self,
        motor_controller: MotorController,
        plc: Plc,
        encoders: Optional[EncoderBank] = None,
        guard: Optional[Guard] = None,
    ) -> None:
        self.motor_controller = motor_controller
        self.plc = plc
        self.encoders = encoders or EncoderBank()
        self.guard = guard
        #: Optional physical-fault hook applied to the DAC values actually
        #: latched into the motor controllers (post-guard).
        self.dac_fault: Optional[Callable[[Sequence[int]], Sequence[int]]] = None
        self.packets_received = 0
        self.packets_blocked = 0
        self.malformed_packets = 0
        self._last_packet: Optional[CommandPacket] = None

    # -- DeviceFile interface ---------------------------------------------------

    def fd_write(self, data: bytes) -> int:
        """Receive a command packet from the control software.

        No integrity verification is performed (the vulnerability); a
        malformed length is dropped, as real firmware drops short URBs.
        """
        try:
            packet = decode_command_packet(data)
        except PacketError:
            self.malformed_packets += 1
            return len(data)
        self.packets_received += 1
        self._last_packet = packet
        self.plc.observe_packet(packet.state, packet.watchdog)
        if self.guard is not None and not self.guard(packet, data):
            # Blocked: the motors get a null (zero-current) command for
            # this cycle instead of the suspicious one — torque-neutral,
            # so the arm holds its state apart from gravity/friction.
            self.packets_blocked += 1
            self._latch([0, 0, 0])
            return len(data)
        self._latch(packet.dac_values[:3])
        return len(data)

    def _latch(self, dac_values: Sequence[int]) -> None:
        """Latch DAC values into the motor controllers, via any DAC fault.

        A stuck or saturating output stage corrupts whatever the board
        decides to execute — including the zero command of a blocked
        packet — so the fault applies after the guard, not before.
        """
        if self.dac_fault is not None:
            dac_values = self.dac_fault(dac_values)
        self.motor_controller.latch(list(dac_values))

    def fd_read(self, max_bytes: int) -> bytes:
        """Return a feedback packet with current encoder counts."""
        counts = self.encoders.to_counts(self.motor_controller.plant.mpos)
        packet = encode_feedback_packet(
            state=self.plc.observed_state,
            watchdog=bool(self._last_packet.watchdog) if self._last_packet else False,
            encoder_counts=list(counts) + [0] * (8 - len(counts)),
        )
        return packet[:max_bytes]

    # -- diagnostics ------------------------------------------------------------

    @property
    def last_packet(self) -> Optional[CommandPacket]:
        """The most recently received command packet."""
        return self._last_packet

    def encoder_counts(self) -> List[int]:
        """Current encoder counts (test/diagnostic convenience)."""
        return list(self.encoders.to_counts(self.motor_controller.plant.mpos))

"""Bump-in-the-wire (BITW) link protection for the USB channel.

Section III.D of the paper discusses retrofitting encryption between the
control software and the hardware — "bump-in-the-wire" devices such as
serial encrypting transceivers (SEL-3021, YASIR) — and argues they "may
introduce significant overhead in the system operation and still not
eliminate the possibility of TOCTOU exploits".

This module models a BITW pair: an encryptor at the computer's USB port
and a decryptor at the interface board.  Frames are protected with a
keystream XOR (deterministic per-frame keystream derived from a key and a
frame counter — a stand-in for AES-CTR, which is not available without
third-party packages) plus a truncated HMAC-SHA256 tag, and each hop adds
the device's store-and-forward latency.

What it shows, faithfully to the paper's argument:

- a *wire-level* attacker between the BITW boxes can no longer read the
  state byte (the side channel is sealed) nor inject valid frames; but
- the paper's malware hooks ``write`` *inside the host, before the
  encryptor* — the malicious wrapper wraps the plaintext path, so BITW
  protection changes nothing about scenarios A and B; and
- every hop costs ``latency_s``, eating into the 1 ms budget.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Optional

from repro.errors import PacketError

#: Tag size appended to each protected frame.
TAG_SIZE = 8

#: Counter prefix carried with each frame (big-endian), used for the
#: keystream and replay rejection.
COUNTER_SIZE = 4


class BitwError(PacketError):
    """Raised when a protected frame fails integrity or freshness."""


def _keystream(key: bytes, counter: int, length: int) -> bytes:
    """Deterministic per-frame keystream (SHA256-based CTR stand-in)."""
    out = b""
    block = 0
    while len(out) < length:
        out += hashlib.sha256(
            key + counter.to_bytes(COUNTER_SIZE, "big") + block.to_bytes(2, "big")
        ).digest()
        block += 1
    return out[:length]


class BitwEncryptor:
    """The computer-side BITW box: seals outgoing frames."""

    def __init__(self, key: bytes, latency_s: float = 1e-4) -> None:
        if len(key) < 16:
            raise ValueError("key must be at least 16 bytes")
        if latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        self._key = key
        self.latency_s = latency_s
        self._counter = 0
        self.frames_sealed = 0

    def seal(self, frame: bytes) -> bytes:
        """Encrypt-and-authenticate one frame."""
        counter = self._counter
        self._counter += 1
        body = bytes(
            a ^ b for a, b in zip(frame, _keystream(self._key, counter, len(frame)))
        )
        header = counter.to_bytes(COUNTER_SIZE, "big")
        tag = hmac.new(self._key, header + body, hashlib.sha256).digest()[:TAG_SIZE]
        self.frames_sealed += 1
        return header + body + tag


class BitwDecryptor:
    """The board-side BITW box: verifies and opens incoming frames."""

    def __init__(self, key: bytes, latency_s: float = 1e-4) -> None:
        if len(key) < 16:
            raise ValueError("key must be at least 16 bytes")
        self._key = key
        self.latency_s = latency_s
        self._last_counter: Optional[int] = None
        self.frames_opened = 0
        self.frames_rejected = 0

    def open(self, sealed: bytes) -> bytes:
        """Verify and decrypt one frame.

        Raises
        ------
        BitwError
            On truncation, bad tag, or replayed counter.
        """
        if len(sealed) < COUNTER_SIZE + TAG_SIZE + 1:
            self.frames_rejected += 1
            raise BitwError("sealed frame too short")
        header = sealed[:COUNTER_SIZE]
        body = sealed[COUNTER_SIZE:-TAG_SIZE]
        tag = sealed[-TAG_SIZE:]
        expected = hmac.new(self._key, header + body, hashlib.sha256).digest()[
            :TAG_SIZE
        ]
        if not hmac.compare_digest(tag, expected):
            self.frames_rejected += 1
            raise BitwError("frame authentication failed")
        counter = int.from_bytes(header, "big")
        if self._last_counter is not None and counter <= self._last_counter:
            self.frames_rejected += 1
            raise BitwError(f"replayed frame counter {counter}")
        self._last_counter = counter
        self.frames_opened += 1
        return bytes(
            a ^ b for a, b in zip(body, _keystream(self._key, counter, len(body)))
        )


class BitwProtectedDevice:
    """A DeviceFile wrapper placing a BITW pair in front of a device.

    The control process writes plaintext; this wrapper models the
    encryptor at the port, the protected wire, and the decryptor at the
    device.  A wire-level tamper hook (``wire_tamper``) lets tests attack
    the *sealed* frames and observe that tampering is rejected — in
    contrast to the naked USB board, which executes anything.

    Total added latency per write: encryptor + decryptor store-and-forward
    (exposed as :attr:`round_trip_latency_s` for the real-time budget
    check; the simulation's 1 ms tick subsumes it when small enough).
    """

    def __init__(self, inner, key: bytes, latency_s: float = 1e-4, wire_tamper=None):
        self.inner = inner
        self.encryptor = BitwEncryptor(key, latency_s)
        self.decryptor = BitwDecryptor(key, latency_s)
        # Independent pair for the board-to-host (feedback) direction.
        down_key = hashlib.sha256(b"down|" + key).digest()
        self._down_enc = BitwEncryptor(down_key, latency_s)
        self._down_dec = BitwDecryptor(down_key, latency_s)
        self.wire_tamper = wire_tamper
        self.rejected_writes = 0

    @property
    def round_trip_latency_s(self) -> float:
        """Added store-and-forward latency per protected write."""
        return self.encryptor.latency_s + self.decryptor.latency_s

    # -- DeviceFile protocol -----------------------------------------------------

    def fd_write(self, data: bytes) -> int:
        sealed = self.encryptor.seal(data)
        if self.wire_tamper is not None:
            sealed = self.wire_tamper(sealed)
        try:
            plain = self.decryptor.open(sealed)
        except BitwError:
            self.rejected_writes += 1
            return len(data)  # frame dropped at the board side
        self.inner.fd_write(plain)
        return len(data)

    def fd_read(self, max_bytes: int) -> bytes:
        # Feedback path: sealed by the board-side box, opened at the host
        # box — same protection, opposite direction, independent keys.
        plain = self.inner.fd_read(max_bytes)
        sealed = self._down_enc.seal(plain)
        return self._down_dec.open(sealed)[:max_bytes]

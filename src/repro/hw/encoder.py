"""Quadrature encoder bank: motor shaft angles <-> integer counts.

The motor controllers read back encoder values from the motors; the control
software estimates current joint positions from them (Section II.B of the
paper).  Quantization to integer counts is the only measurement noise the
baseline system has; an optional count-level jitter models electrical noise.

Physical-layer faults (dropout, glitch spikes, stuck counts) enter through
the optional :attr:`EncoderBank.count_fault` hook, applied to the quantized
counts of every read — the hook point :mod:`repro.testing.physfaults` uses.
It defaults to ``None`` and costs production reads one attribute check.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro import constants

_TWO_PI = 2.0 * np.pi


class EncoderBank:
    """Converts motor shaft positions (rad) to counts and back."""

    def __init__(
        self,
        counts_per_rev: int = constants.ENCODER_COUNTS_PER_REV,
        noise_counts: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Create the bank.

        Parameters
        ----------
        counts_per_rev:
            Quadrature-decoded counts per motor revolution.
        noise_counts:
            Standard deviation of additive count noise (0 disables noise).
        rng:
            Random generator for the noise (required when noise > 0).
        """
        if counts_per_rev <= 0:
            raise ValueError("counts_per_rev must be positive")
        if noise_counts < 0:
            raise ValueError("noise_counts must be non-negative")
        if noise_counts > 0 and rng is None:
            raise ValueError("rng is required when noise_counts > 0")
        self.counts_per_rev = int(counts_per_rev)
        self.noise_counts = noise_counts
        self._rng = rng
        #: Optional physical-fault hook: maps the quantized count vector of
        #: one read to the (possibly corrupted) counts actually reported.
        self.count_fault: Optional[Callable[[np.ndarray], np.ndarray]] = None

    def to_counts(self, mpos: Sequence[float]) -> np.ndarray:
        """Quantize motor shaft angles (rad) to integer counts."""
        mpos = np.asarray(mpos, dtype=float)
        counts = mpos / _TWO_PI * self.counts_per_rev
        if self.noise_counts > 0:
            counts = counts + self._rng.normal(0.0, self.noise_counts, counts.shape)
        quantized = np.rint(counts).astype(np.int64)
        if self.count_fault is not None:
            quantized = np.asarray(
                self.count_fault(quantized), dtype=np.int64
            )
        return quantized

    def to_radians(self, counts: Sequence[int]) -> np.ndarray:
        """Convert integer counts back to motor shaft angles (rad)."""
        counts = np.asarray(counts, dtype=float)
        return counts * _TWO_PI / self.counts_per_rev

    @property
    def resolution_rad(self) -> float:
        """Angle of one encoder count (rad)."""
        return _TWO_PI / self.counts_per_rev

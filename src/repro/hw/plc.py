"""Safety PLC: watchdog monitor, fail-safe brakes, E-STOP latch.

The PLC safety processor (Figure 1(b) of the paper):

- monitors the square-wave watchdog embedded in the USB packets; if the
  software stops toggling it (after detecting an unsafe command, or after
  crashing), the PLC puts the system into E-STOP;
- controls the fail-safe power-off brakes: engaged in every state except
  Pedal Down;
- latches E-STOP until the operator presses the physical start button.

It also exposes a small state register that the control software reads
during homing — the attack-variant table of the paper includes corrupting
"robot state in PLC", which manifests as a homing failure.
"""

from __future__ import annotations

from typing import Optional

from repro.control.state_machine import RobotState
from repro.dynamics.plant import RavenPlant
from repro.hw.motor_controller import MotorController


class Plc:
    """The safety PLC supervising one arm."""

    def __init__(
        self,
        plant: RavenPlant,
        motor_controller: MotorController,
        watchdog_timeout_cycles: int = 32,
    ) -> None:
        """Create the PLC.

        Parameters
        ----------
        plant:
            The physical plant whose brakes this PLC drives.
        motor_controller:
            Motor power is cut through this controller on E-STOP.
        watchdog_timeout_cycles:
            Control cycles without a watchdog edge before the PLC declares
            software failure (must exceed the watchdog half-period).
        """
        if watchdog_timeout_cycles < 2:
            raise ValueError("watchdog_timeout_cycles must be >= 2")
        self.plant = plant
        self.motor_controller = motor_controller
        self.watchdog_timeout_cycles = watchdog_timeout_cycles
        self._last_level: Optional[bool] = None
        self._cycles_since_edge = 0
        self._estop_latched = False
        self._estop_reason: Optional[str] = None
        self._observed_state = RobotState.E_STOP
        #: Homing/state register the control software reads during INIT.
        self.state_register: int = 0

    # -- observations from USB traffic ---------------------------------------

    def observe_packet(self, state: RobotState, watchdog_level: bool) -> None:
        """Called by the USB board for every command packet it receives."""
        self._observed_state = state
        if self._last_level is None or watchdog_level != self._last_level:
            self._cycles_since_edge = 0
        self._last_level = watchdog_level

    # -- per-cycle supervision -------------------------------------------------

    def tick(self) -> None:
        """Advance one control cycle: watchdog timeout + brake management."""
        self._cycles_since_edge += 1
        if (
            not self._estop_latched
            and self._last_level is not None
            and self._cycles_since_edge > self.watchdog_timeout_cycles
        ):
            self.trigger_estop("watchdog signal lost")
        self._apply_brakes()

    def _apply_brakes(self) -> None:
        engaged_wanted = (
            self._estop_latched or self._observed_state is not RobotState.PEDAL_DOWN
        )
        if engaged_wanted and not self.plant.brakes_engaged:
            self.plant.engage_brakes()
        elif not engaged_wanted and self.plant.brakes_engaged:
            self.plant.release_brakes()

    # -- E-STOP ---------------------------------------------------------------

    def trigger_estop(self, reason: str) -> None:
        """Latch the E-STOP: brakes on, motor power off."""
        self._estop_latched = True
        self._estop_reason = reason
        self._observed_state = RobotState.E_STOP
        self.plant.engage_brakes()
        self.motor_controller.power_off()

    def clear_estop(self) -> None:
        """Operator pressed the physical start button."""
        self._estop_latched = False
        self._estop_reason = None
        self._last_level = None
        self._cycles_since_edge = 0
        self.motor_controller.power_on()

    @property
    def estop_latched(self) -> bool:
        """Whether the PLC is holding the system in E-STOP."""
        return self._estop_latched

    @property
    def estop_reason(self) -> Optional[str]:
        """Why the PLC last latched E-STOP (None when not latched)."""
        return self._estop_reason

    @property
    def observed_state(self) -> RobotState:
        """The operational state last seen in USB traffic."""
        return self._observed_state

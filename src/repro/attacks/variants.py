"""Attack variants of Table I.

Each variant targets a different layer of the control structure by
interposing a different runtime-library call (or, for the math-library
drift, by perturbing the trigonometry the kinematics use — the in-process
equivalent of an ``LD_PRELOAD`` wrapper around ``sin``/``cos``):

=====================  =======================  ==========================
Target layer           Malicious action         Observed impact (paper)
=====================  =======================  ==========================
Master console <->     change port / packet     Hijack trajectory /
control software       content (socket comm.)   unwanted state (E-STOP)
Control software       add drift to sin/cos     Unwanted state (IK-fail)
Software/hardware      change robot state       Homing failure
interface (PLC)        seen by the PLC
Software <-> physical  change motor commands /  Abrupt jump /
robot                  encoder feedback         unwanted state (E-STOP)
=====================  =======================  ==========================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import constants
from repro.attacks.malware import PedalDownTrigger
from repro.control.state_machine import RobotState
from repro.errors import ChecksumError, PacketError
from repro.kinematics.spherical_arm import ArmGeometry, SphericalArm
from repro.sysmodel.linker import SharedLibrary
from repro.sysmodel.process import Process
from repro.teleop.itp import decode_itp, encode_itp, ItpPacket


@dataclass
class VariantOutcome:
    """What a variant run produced (the "Observed Impact" column)."""

    variant: str
    impact: str
    details: str = ""


# ---------------------------------------------------------------------------
# Socket communication attacks (master console <-> control software)
# ---------------------------------------------------------------------------


def build_socket_drop_library(
    target_process: str = "r2_control", name: str = "libsock_drop.so"
) -> SharedLibrary:
    """Change of port number, modelled as loss of all console datagrams.

    After the attack activates, ``recvfrom`` never returns a packet again —
    the console's traffic goes to a port nobody reads.  The robot freezes
    at its last desired pose and the surgeon loses control (a hijack of
    the trajectory to "hold still", and unavailability).
    """
    library = SharedLibrary(name)

    def recvfrom_factory(next_recvfrom, process: Process):
        def malicious_recvfrom(fd: int, max_bytes: int):
            data = next_recvfrom(fd, max_bytes)
            if process.name != target_process:
                return data
            return None  # the rebound port receives nothing

        return malicious_recvfrom

    library.export("recvfrom", recvfrom_factory)
    return library


def build_socket_hijack_library(
    trigger: PedalDownTrigger,
    hijack_dpos_m: np.ndarray,
    target_process: str = "r2_control",
    name: str = "libsock_hijack.so",
) -> SharedLibrary:
    """Change of packet content: replace the surgeon's motion commands.

    While active, every console packet's increment is replaced with the
    attacker's own motion — the robot follows the attacker, not the
    surgeon ("hijack trajectory").
    """
    library = SharedLibrary(name)
    hijack = np.asarray(hijack_dpos_m, dtype=float)
    state = {"active": False}

    def write_factory(next_write, process: Process):
        def observing_write(fd: int, data: bytes) -> int:
            if (
                process.name == target_process
                and len(data) == constants.USB_PACKET_SIZE
            ):
                state["active"] = trigger.observe(data[constants.USB_STATE_BYTE])
            return next_write(fd, data)

        return observing_write

    def recvfrom_factory(next_recvfrom, process: Process):
        def malicious_recvfrom(fd: int, max_bytes: int):
            data = next_recvfrom(fd, max_bytes)
            if (
                data is None
                or process.name != target_process
                or len(data) != constants.ITP_PACKET_SIZE
                or not state["active"]
            ):
                return data
            try:
                packet = decode_itp(data)
            except (PacketError, ChecksumError):
                return data
            hijacked = ItpPacket(
                sequence=packet.sequence,
                pedal_down=packet.pedal_down,
                dpos=hijack.copy(),
                dquat=packet.dquat,
                mode=packet.mode,
            )
            return encode_itp(hijacked)

        return malicious_recvfrom

    library.export("write", write_factory)
    library.export("recvfrom", recvfrom_factory)
    return library


# ---------------------------------------------------------------------------
# Math-library drift (control software layer)
# ---------------------------------------------------------------------------


class DriftedTrigArm(SphericalArm):
    """A spherical arm whose trigonometry drifts over time.

    Models the Table I "Math (sin, cos): add drift to output/input"
    attack: an ``LD_PRELOAD`` wrapper around libm would skew every
    ``sin``/``cos`` the inverse kinematics evaluate.  Here the drift is
    added to the joint angles entering the tool-axis trigonometry, growing
    by ``drift_per_call`` radians per kinematics call.  The desired joint
    targets wander until IK fails or the workspace check trips.
    """

    def __init__(
        self,
        geometry: Optional[ArmGeometry] = None,
        drift_per_call: float = 2e-6,
    ) -> None:
        super().__init__(geometry)
        self.drift_per_call = drift_per_call
        self.calls = 0

    def _drift(self) -> float:
        self.calls += 1
        return self.calls * self.drift_per_call

    def tool_axis(self, q1: float, q2: float) -> np.ndarray:
        drift = self._drift()
        return super().tool_axis(q1 + drift, q2 + drift)

    def joint2_axis(self, q1: float) -> np.ndarray:
        return super().joint2_axis(q1 + self.calls * self.drift_per_call)

    #: FK/IK consistency tolerance (m).  Real control software validates
    #: inverse-kinematics solutions by running them back through forward
    #: kinematics; with drifting trigonometry the two disagree until the
    #: validation fails.
    consistency_tolerance_m = 1e-3

    def inverse(self, position, reference=None):
        """IK whose trigonometry drifts: solutions skew until IK fails."""
        from repro.errors import InverseKinematicsError

        q = super().inverse(position, reference=reference)
        drift = self._drift()
        q = np.array([q[0] + drift, q[1] + drift, q[2]])
        # Solution validation through (equally drifted) forward kinematics.
        mismatch = float(np.linalg.norm(self.forward(q) - np.asarray(position)))
        if mismatch > self.consistency_tolerance_m:
            raise InverseKinematicsError(
                f"IK solution fails FK consistency check by {mismatch:.4f} m"
            )
        return q


def install_math_drift(rig, drift_per_call: float = 2e-6) -> DriftedTrigArm:
    """Replace the controller's kinematics with the drifted version.

    Only the *control software's* view drifts; the physical plant is
    untouched, exactly as when libm is wrapped inside the control process.
    """
    drifted = DriftedTrigArm(rig.arm.geometry, drift_per_call=drift_per_call)
    rig.controller.arm = drifted
    return drifted


# ---------------------------------------------------------------------------
# PLC state corruption (software/hardware interface layer)
# ---------------------------------------------------------------------------


def build_plc_state_corruption_library(
    target_process: str = "r2_control",
    forced_state: RobotState = RobotState.E_STOP,
    name: str = "libplc_corrupt.so",
) -> SharedLibrary:
    """Corrupt the robot state the PLC sees during initialization.

    While the software reports INIT, the wrapper rewrites Byte 0 so the
    PLC observes ``forced_state`` instead.  The PLC never sees a
    consistent homing sequence, the watchdog bookkeeping desynchronizes,
    and initialization cannot complete — the paper's "Homing Failure".
    """
    library = SharedLibrary(name)
    init_byte = RobotState.INIT.byte_value
    wd_mask = 1 << constants.USB_WATCHDOG_BIT

    def write_factory(next_write, process: Process):
        def malicious_write(fd: int, data: bytes) -> int:
            if (
                process.name == target_process
                and len(data) == constants.USB_PACKET_SIZE
                and (data[constants.USB_STATE_BYTE] & ~wd_mask) == init_byte
            ):
                buf = bytearray(data)
                # Preserve the watchdog bit so only the state is forged.
                buf[constants.USB_STATE_BYTE] = forced_state.byte_value | (
                    data[constants.USB_STATE_BYTE] & wd_mask
                )
                data = bytes(buf)
            return next_write(fd, data)

        return malicious_write

    library.export("write", write_factory)
    return library


# ---------------------------------------------------------------------------
# Encoder feedback corruption (software <-> physical robot layer)
# ---------------------------------------------------------------------------


def build_encoder_corruption_library(
    trigger: PedalDownTrigger,
    offset_counts: int,
    channel: int = 0,
    target_process: str = "r2_control",
    name: str = "libenc_corrupt.so",
) -> SharedLibrary:
    """Corrupt the encoder feedback the control software reads.

    While active, the wrapper adds ``offset_counts`` to one encoder
    channel of every feedback packet.  The software believes the joint
    moved, the PID "corrects" the phantom error, and the real arm jumps —
    the feedback-side twin of scenario B.
    """
    library = SharedLibrary(name)
    from repro.hw.usb_packet import FEEDBACK_PACKET_SIZE

    def write_factory(next_write, process: Process):
        def observing_write(fd: int, data: bytes) -> int:
            if (
                process.name == target_process
                and len(data) == constants.USB_PACKET_SIZE
            ):
                trigger.observe(data[constants.USB_STATE_BYTE])
            return next_write(fd, data)

        return observing_write

    def read_factory(next_read, process: Process):
        def malicious_read(fd: int, max_bytes: int) -> bytes:
            data = next_read(fd, max_bytes)
            if (
                process.name != target_process
                or len(data) != FEEDBACK_PACKET_SIZE
                or trigger.activations == 0
                or trigger.exhausted
            ):
                return data
            buf = bytearray(data)
            lo = 1 + 3 * channel
            value = int.from_bytes(buf[lo : lo + 3], "big", signed=True)
            value += offset_counts
            buf[lo : lo + 3] = max(
                -(1 << 23), min((1 << 23) - 1, value)
            ).to_bytes(3, "big", signed=True)
            return bytes(buf)

        return malicious_read

    library.export("write", write_factory)
    library.export("read", read_factory)
    return library

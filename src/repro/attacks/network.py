"""Network-level attack baselines (Bonaci et al.).

The paper positions its host-level attacks against prior work on
*communication-channel* attacks on teleoperated surgical robots: denial of
service (delaying or dropping the surgeon's packets) and man-in-the-middle
modification of packet contents between the console and the robot.

These baselines matter for two reproduction points:

- Bonaci et al. found that DoS causes "jerky motions ... or difficulty in
  performing tasks", while *content modification was detected by the
  safety software* (over-current commands stop the robot) — i.e. the
  network surface was already partly defended, which is why the paper
  moves *inside* the host;
- the Secure-ITP extension (:mod:`repro.teleop.secure_itp`) stops the
  MITM baseline outright but does nothing against the in-host scenario-A
  wrapper — the TOCTOU argument in one experiment.

Both attacks operate on the UDP channel object (the wire), not on the
host: an on-path adversary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro import constants
from repro.errors import AttackConfigError, ChecksumError, PacketError
from repro.teleop.itp import ItpPacket, decode_itp, encode_itp
from repro.teleop.network import UdpChannel


@dataclass
class WireAttackStats:
    """What the on-path adversary did."""

    seen: int = 0
    dropped: int = 0
    delayed: int = 0
    modified: int = 0


class TamperingChannel(UdpChannel):
    """A UDP channel with an on-path adversary.

    Wraps the normal channel behaviour with an adversary callback applied
    to every datagram *on the wire*: the callback may return the datagram
    (possibly modified), ``None`` to drop it, or a ``(datagram, delay_s)``
    pair to delay it.
    """

    def __init__(
        self,
        adversary: Callable[[bytes], object],
        latency_s: float = 0.0,
        jitter_s: float = 0.0,
        loss_probability: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(
            latency_s=latency_s,
            jitter_s=jitter_s,
            loss_probability=loss_probability,
            rng=rng,
        )
        self.adversary = adversary
        self.attack_stats = WireAttackStats()

    def send(self, data: bytes, now: float) -> None:
        self.attack_stats.seen += 1
        verdict = self.adversary(data)
        if verdict is None:
            self.attack_stats.dropped += 1
            return
        if isinstance(verdict, tuple):
            data, extra_delay = verdict
            self.attack_stats.delayed += 1
            saved = self.latency_s
            self.latency_s = saved + float(extra_delay)
            try:
                super().send(data, now)
            finally:
                self.latency_s = saved
            return
        if verdict != data:
            self.attack_stats.modified += 1
        super().send(bytes(verdict), now)


def make_dos_adversary(
    rng: np.random.Generator,
    drop_probability: float = 0.5,
    delay_s: float = 0.05,
    delay_probability: float = 0.3,
    start_after: int = 400,
):
    """Denial-of-service: drop and delay console datagrams.

    Matches Bonaci et al.'s DoS experiments: the robot does not crash,
    but motion degrades because incremental commands are lost or arrive
    in bursts.
    """
    if not (0 <= drop_probability <= 1 and 0 <= delay_probability <= 1):
        raise AttackConfigError("probabilities must be within [0, 1]")
    seen = {"n": 0}

    def adversary(data: bytes):
        seen["n"] += 1
        if seen["n"] < start_after:
            return data
        roll = rng.random()
        if roll < drop_probability:
            return None
        if roll < drop_probability + delay_probability:
            return (data, delay_s)
        return data

    return adversary


def make_mitm_adversary(
    error_m: float = 2e-4,
    axis: int = 0,
    start_after: int = 400,
    fix_checksum: bool = True,
):
    """Man-in-the-middle: rewrite the motion increments on the wire.

    With ``fix_checksum`` the adversary recomputes the (plain, unkeyed)
    ITP checksum so the stock control software accepts the forged packet
    — trivially possible for plain ITP, *impossible* for Secure ITP
    because the HMAC tag is keyed.
    """
    if not (0 <= axis < 3):
        raise AttackConfigError("axis must be 0..2")
    seen = {"n": 0}

    def adversary(data: bytes):
        seen["n"] += 1
        if seen["n"] < start_after or len(data) != constants.ITP_PACKET_SIZE:
            return data
        try:
            packet = decode_itp(data, verify_checksum=False)
        except (PacketError, ChecksumError):
            return data
        dpos = packet.dpos.copy()
        dpos[axis] += error_m
        forged = ItpPacket(
            sequence=packet.sequence,
            pedal_down=packet.pedal_down,
            dpos=dpos,
            dquat=packet.dquat,
            mode=packet.mode,
        )
        out = encode_itp(forged)
        if not fix_checksum:
            out = out[:-2] + data[-2:]  # keep the (now wrong) old checksum
        return out

    return adversary


def make_blind_mitm_adversary(start_after: int = 400, flip_byte: int = 10):
    """MITM against an *authenticated* stream: blind bit-flipping.

    Without the key the adversary can only corrupt bytes; every forged
    datagram fails HMAC verification at the receiver, so this measures
    the defence, not the attack.
    """

    seen = {"n": 0}

    def adversary(data: bytes):
        seen["n"] += 1
        if seen["n"] < start_after:
            return data
        buf = bytearray(data)
        if len(buf) > flip_byte:
            buf[flip_byte] ^= 0xFF
        return bytes(buf)

    return adversary

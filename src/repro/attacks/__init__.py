"""Attack framework: the three-phase targeted attack of Section III.

- *Attack-Preparation phase*: a malicious shared library, preloaded via the
  LD_PRELOAD mechanism, wraps the ``write`` system call to eavesdrop on the
  USB packets and exfiltrate them (:mod:`repro.attacks.eavesdrop`).
- *Offline Analysis phase*: byte-pattern analysis of the captured packets
  recovers the watchdog bit and the state byte, and maps byte values to the
  operational state machine (:mod:`repro.attacks.analysis` — Figures 5-6).
- *Deployment phase*: the wrapper is modified to inject malicious commands
  when Byte 0 indicates Pedal Down (:mod:`repro.attacks.injection` —
  scenarios A and B), or one of the Table I variants
  (:mod:`repro.attacks.variants`).

:mod:`repro.attacks.campaign` sweeps injected error values and activation
periods to regenerate Table IV and Figure 9.
"""

from repro.attacks.malware import PedalDownTrigger
from repro.attacks.eavesdrop import EavesdropLogger, build_eavesdropper_library
from repro.attacks.analysis import (
    OfflineAnalysis,
    byte_cardinalities,
    byte_value_series,
    find_watchdog_bit,
    infer_state_byte,
    infer_state_sequence,
)
from repro.attacks.injection import (
    AttackRecord,
    ByteCorruptionInjection,
    DacOffsetInjection,
    UserInputInjection,
    build_scenario_a_library,
    build_scenario_b_library,
)

__all__ = [
    "AttackRecord",
    "ByteCorruptionInjection",
    "DacOffsetInjection",
    "EavesdropLogger",
    "OfflineAnalysis",
    "PedalDownTrigger",
    "UserInputInjection",
    "build_eavesdropper_library",
    "build_scenario_a_library",
    "build_scenario_b_library",
    "byte_cardinalities",
    "byte_value_series",
    "find_watchdog_bit",
    "infer_state_byte",
    "infer_state_sequence",
]

"""Offline Analysis phase: mining robot state from captured USB packets.

Reproduces Section III.B.2 of the paper.  The attacker does not know the
USB packet format, so the analysis "looks at the values of the packets byte
by byte over time to see whether there are patterns indicating a specific
byte that may contain the state information":

1. per-byte value series and cardinalities (Figure 5);
2. discovery of a periodically toggling bit — the watchdog square wave —
   inside the low-cardinality byte;
3. after removing that bit, a byte switching among 4 values in long steps
   is matched against the publicly known 4-state operational state machine
   (Figure 6), ordering states by first appearance
   (E-STOP -> Init -> Pedal Up -> Pedal Down);
4. the raw byte values meaning "Pedal Down" (both watchdog phases) become
   the deployment-phase trigger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AttackConfigError

#: The publicly documented state order during a teleoperation session.
STATE_ORDER = ("E-STOP", "Init", "Pedal Up", "Pedal Down")


def byte_value_series(packets: Sequence[bytes]) -> np.ndarray:
    """Stack packets into an (n_packets, packet_len) uint8 array.

    Raises
    ------
    AttackConfigError
        If the capture is empty or packets have inconsistent lengths.
    """
    if not packets:
        raise AttackConfigError("no packets captured")
    lengths = {len(p) for p in packets}
    if len(lengths) != 1:
        raise AttackConfigError(f"inconsistent packet lengths: {sorted(lengths)}")
    return np.frombuffer(b"".join(packets), dtype=np.uint8).reshape(
        len(packets), lengths.pop()
    )


def byte_cardinalities(series: np.ndarray) -> List[int]:
    """Number of distinct values each byte position takes."""
    return [int(len(np.unique(series[:, i]))) for i in range(series.shape[1])]


def _bit_series(series: np.ndarray, byte_index: int, bit: int) -> np.ndarray:
    return (series[:, byte_index] >> bit) & 1


def find_watchdog_bit(
    series: np.ndarray,
    byte_index: int,
    min_edges: int = 8,
    max_interval_cv: float = 0.25,
) -> Optional[int]:
    """Find a bit of ``byte_index`` that toggles like a square wave.

    A watchdog bit shows many edges at near-constant intervals.  Returns
    the bit index, or None if no bit looks periodic.

    Parameters
    ----------
    min_edges:
        Minimum number of level changes to call a bit periodic.
    max_interval_cv:
        Maximum coefficient of variation of the edge intervals.
    """
    best_bit = None
    best_cv = np.inf
    for bit in range(8):
        levels = _bit_series(series, byte_index, bit)
        edges = np.nonzero(np.diff(levels.astype(np.int8)) != 0)[0]
        if len(edges) < min_edges:
            continue
        intervals = np.diff(edges)
        if len(intervals) == 0:
            continue
        mean = float(np.mean(intervals))
        if mean <= 0:
            continue
        cv = float(np.std(intervals)) / mean
        if cv < best_cv and cv <= max_interval_cv:
            best_cv = cv
            best_bit = bit
    return best_bit


@dataclass(frozen=True)
class StateByteInference:
    """Result of the state-byte search."""

    byte_index: int
    watchdog_bit: Optional[int]
    masked_values: Tuple[int, ...]
    raw_cardinality: int
    transitions: int


def infer_state_byte(
    series: np.ndarray,
    max_states: int = 6,
    exclude: Sequence[int] = (),
) -> StateByteInference:
    """Find the byte most likely to carry the operational state.

    Heuristic, as in the paper: among bytes that are neither constant nor
    high-cardinality, remove a periodic (watchdog) bit if one exists, and
    prefer the byte whose masked value has a small alphabet (the 4 states)
    and *step-like* behaviour — few transitions relative to series length.

    Raises
    ------
    AttackConfigError
        If no byte qualifies.
    """
    n, width = series.shape
    best: Optional[StateByteInference] = None
    best_score = np.inf
    for index in range(width):
        if index in exclude:
            continue
        raw_card = len(np.unique(series[:, index]))
        if raw_card < 2 or raw_card > 2 * max_states:
            continue
        wd_bit = find_watchdog_bit(series, index)
        values = series[:, index].astype(int)
        if wd_bit is not None:
            values = values & ~(1 << wd_bit)
        masked_unique = np.unique(values)
        if not (2 <= len(masked_unique) <= max_states):
            continue
        transitions = int(np.count_nonzero(np.diff(values) != 0))
        # Step-like: each distinct value should persist for long stretches.
        score = transitions / n + 0.01 * len(masked_unique)
        if score < best_score:
            best_score = score
            best = StateByteInference(
                byte_index=index,
                watchdog_bit=wd_bit,
                masked_values=tuple(int(v) for v in masked_unique),
                raw_cardinality=raw_card,
                transitions=transitions,
            )
    if best is None:
        raise AttackConfigError("no byte matches the state-byte pattern")
    return best


def infer_state_sequence(
    series: np.ndarray, byte_index: int, watchdog_bit: Optional[int]
) -> Tuple[Dict[int, str], List[Tuple[int, int, str]]]:
    """Label masked byte values with state names by order of appearance.

    Returns ``(value -> state name, segments)`` where each segment is
    ``(start_packet, end_packet_exclusive, state_name)``.
    """
    values = series[:, byte_index].astype(int)
    if watchdog_bit is not None:
        values = values & ~(1 << watchdog_bit)
    mapping: Dict[int, str] = {}
    for value in values:
        if int(value) not in mapping:
            if len(mapping) >= len(STATE_ORDER):
                break
            mapping[int(value)] = STATE_ORDER[len(mapping)]
    segments: List[Tuple[int, int, str]] = []
    start = 0
    for i in range(1, len(values) + 1):
        if i == len(values) or values[i] != values[start]:
            name = mapping.get(int(values[start]), "?")
            segments.append((start, i, name))
            start = i
    return mapping, segments


@dataclass
class OfflineAnalysis:
    """Multi-run analysis orchestration (the attacker's notebook).

    Feed it the captured command packets of several runs (the paper uses
    nine; see Figure 6), then read off the conclusion: which byte carries
    the state, which bit is the watchdog, and which raw byte values mean
    Pedal Down.
    """

    runs: List[np.ndarray] = field(default_factory=list)

    def add_run(self, packets: Sequence[bytes]) -> None:
        """Add one run's captured command packets."""
        self.runs.append(byte_value_series(packets))

    def conclude(self) -> "AnalysisConclusion":
        """Combine the per-run inferences into a single conclusion.

        Majority vote across runs on the state byte and the watchdog bit;
        the Pedal-Down raw values are the masked value of the final state
        (last to appear) with the watchdog bit in both phases.

        Raises
        ------
        AttackConfigError
            If no runs were added or the runs disagree entirely.
        """
        if not self.runs:
            raise AttackConfigError("no runs to analyze")
        votes: Dict[Tuple[int, Optional[int]], int] = {}
        for series in self.runs:
            inference = infer_state_byte(series)
            key = (inference.byte_index, inference.watchdog_bit)
            votes[key] = votes.get(key, 0) + 1
        (byte_index, watchdog_bit), _count = max(votes.items(), key=lambda kv: kv[1])

        pedal_values: Dict[int, int] = {}
        mapping_out: Dict[int, str] = {}
        for series in self.runs:
            mapping, _segments = infer_state_sequence(series, byte_index, watchdog_bit)
            mapping_out.update(mapping)
            for value, name in mapping.items():
                if name == "Pedal Down":
                    pedal_values[value] = pedal_values.get(value, 0) + 1
        if not pedal_values:
            raise AttackConfigError("Pedal Down state never observed in captures")
        masked = max(pedal_values.items(), key=lambda kv: kv[1])[0]
        raw_values = {masked}
        if watchdog_bit is not None:
            raw_values.add(masked | (1 << watchdog_bit))
        return AnalysisConclusion(
            state_byte=byte_index,
            watchdog_bit=watchdog_bit,
            value_to_state=mapping_out,
            pedal_down_raw_values=frozenset(raw_values),
            runs_analyzed=len(self.runs),
        )


@dataclass(frozen=True)
class AnalysisConclusion:
    """What the attacker learned: the trigger recipe."""

    state_byte: int
    watchdog_bit: Optional[int]
    value_to_state: Dict[int, str]
    pedal_down_raw_values: frozenset
    runs_analyzed: int

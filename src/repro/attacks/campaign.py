"""Injection campaigns: parameter sweeps behind Table IV and Figure 9.

For each campaign cell (scenario, injected error value, activation period)
and repetition seed, two deterministic replicas of the same run execute:

- a **ground-truth** replica with the RAVEN software checks disabled and no
  detector, whose tool-tip path is compared against a same-seed fault-free
  reference run — the attack *caused an adverse impact* when the paths
  diverge by more than the 1 mm surgical-safety threshold;
- a **monitored** replica with the RAVEN checks active and the
  dynamic-model detector installed in monitor mode, from which both
  detectors' verdicts are read under identical conditions.

Fault-free repetitions (negative labels) measure the false-positive rates.
Both replicas share all random streams with the reference run (same seed),
so the comparison isolates exactly the attack's effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import constants
from repro.core.baseline import RavenBaselineDetector
from repro.core.metrics import ConfusionMatrix
from repro.core.mitigation import MitigationStrategy
from repro.core.thresholds import SafetyThresholds
from repro.sim.runner import (
    make_detector_guard,
    run_fault_free,
    run_scenario_a,
    run_scenario_b,
)
from repro.sim.trace import RunTrace

#: Tool-tip deviation from the fault-free reference that counts as an
#: adverse impact (the paper's 1 mm threshold from expert surgeons).
IMPACT_DEVIATION_M = constants.UNSAFE_JUMP_M

#: Paper-scale sweep grids (Figure 9): activation periods in ms.
PAPER_PERIODS_MS = (2, 4, 8, 16, 32, 64, 128, 256)

#: Scenario-B injected DAC error values (counts).
PAPER_ERRORS_B = (2000, 5000, 9000, 13000, 18000, 26000)

#: Scenario-A injected per-packet position errors (mm).
PAPER_ERRORS_A = (0.05, 0.1, 0.2, 0.5, 1.0, 2.0)


@dataclass(frozen=True)
class CampaignCell:
    """One (scenario, error value, activation period) sweep point."""

    scenario: str
    error_value: float
    period_ms: int

    def __post_init__(self) -> None:
        if self.scenario not in ("A", "B"):
            raise ValueError("scenario must be 'A' or 'B'")
        if self.period_ms < 1:
            raise ValueError("period_ms must be >= 1")


@dataclass
class RunOutcome:
    """Result of one campaign run (one repetition of one cell)."""

    cell: Optional[CampaignCell]
    seed: int
    label: bool
    raven_detected: bool
    model_detected: bool
    deviation_mm: float
    attack_fired: bool

    @property
    def is_fault_free(self) -> bool:
        """Whether this outcome comes from an attack-free run."""
        return self.cell is None


@dataclass
class CampaignResult:
    """All outcomes of one scenario's campaign."""

    scenario: str
    outcomes: List[RunOutcome] = field(default_factory=list)

    def confusion(self, detector: str) -> ConfusionMatrix:
        """Confusion matrix for ``detector`` in {"model", "raven"}."""
        if detector not in ("model", "raven"):
            raise ValueError("detector must be 'model' or 'raven'")
        pairs = [
            (
                o.label,
                o.model_detected if detector == "model" else o.raven_detected,
            )
            for o in self.outcomes
        ]
        return ConfusionMatrix.from_pairs(pairs)

    def cell_probabilities(self) -> Dict[CampaignCell, Dict[str, float]]:
        """Per-cell impact/detection probabilities (Figure 9 data)."""
        grouped: Dict[CampaignCell, List[RunOutcome]] = {}
        for outcome in self.outcomes:
            if outcome.cell is not None:
                grouped.setdefault(outcome.cell, []).append(outcome)
        table = {}
        for cell, runs in grouped.items():
            n = len(runs)
            table[cell] = {
                "n": n,
                "p_impact": sum(o.label for o in runs) / n,
                "p_model": sum(o.model_detected for o in runs) / n,
                "p_raven": sum(o.raven_detected for o in runs) / n,
            }
        return table


class CampaignRunner:
    """Executes injection campaigns and labels their outcomes."""

    def __init__(
        self,
        thresholds: SafetyThresholds,
        duration_s: float = 1.6,
        trajectory_name: str = "circle",
        attack_delay_cycles: int = 300,
        base_seed: int = 0,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.thresholds = thresholds
        self.duration_s = duration_s
        self.trajectory_name = trajectory_name
        self.attack_delay_cycles = attack_delay_cycles
        self.base_seed = base_seed
        self.baseline = RavenBaselineDetector()
        self._references: Dict[int, np.ndarray] = {}
        self._progress = progress or (lambda msg: None)

    # -- pieces ------------------------------------------------------------------

    def compute_reference_tip(self, seed: int) -> np.ndarray:
        """Tip-position array of the fault-free reference run for ``seed``."""
        return run_fault_free(
            seed=seed,
            trajectory_name=self.trajectory_name,
            duration_s=self.duration_s,
        ).tip_array

    def prime_references(self, references: Dict[int, np.ndarray]) -> None:
        """Install precomputed reference tip arrays (seed -> ``(n, 3)``).

        The parallel engine computes every seed's fault-free reference
        exactly once in a warm-up pass and hands the tips to each worker,
        instead of each worker re-deriving them.
        """
        self._references.update(references)

    def _reference_tip(self, seed: int) -> np.ndarray:
        """Fault-free reference tip array for ``seed`` (cached)."""
        if seed not in self._references:
            self._references[seed] = self.compute_reference_tip(seed)
        return self._references[seed]

    def _attack_runner(self, cell: CampaignCell):
        if cell.scenario == "B":
            return lambda **kw: run_scenario_b(
                error_dac=int(cell.error_value), period_ms=cell.period_ms, **kw
            )
        return lambda **kw: run_scenario_a(
            error_mm=float(cell.error_value), period_ms=cell.period_ms, **kw
        )

    def run_cell_once(self, cell: CampaignCell, seed: int) -> RunOutcome:
        """Both replicas of one repetition of ``cell``.

        All shared setup — the attack-runner closure, the common run
        parameters, and the fault-free reference tips — is derived once
        here and reused by both replicas (and, via the reference cache,
        by every other repetition with the same seed).
        """
        runner = self._attack_runner(cell)
        reference_tip = self._reference_tip(seed)
        common = dict(
            seed=seed,
            duration_s=self.duration_s,
            trajectory_name=self.trajectory_name,
            attack_delay_cycles=self.attack_delay_cycles,
        )

        # Ground truth: no RAVEN checks, no detector.
        raw = runner(raven_safety_enabled=False, guard=None, **common)
        deviation = raw.trace.max_deviation_from_tip(reference_tip)
        label = deviation > IMPACT_DEVIATION_M

        # Monitored replica: RAVEN checks + detector in monitor mode.
        guard = make_detector_guard(
            self.thresholds, strategy=MitigationStrategy.MONITOR
        )
        monitored = runner(raven_safety_enabled=True, guard=guard, **common)

        return RunOutcome(
            cell=cell,
            seed=seed,
            label=label,
            raven_detected=self.baseline.detected(monitored.trace),
            model_detected=monitored.model_detected,
            deviation_mm=deviation * 1e3,
            attack_fired=raw.record.fired,
        )

    def run_fault_free_once(self, seed: int) -> RunOutcome:
        """One attack-free repetition (negative label, for FPR)."""
        guard = make_detector_guard(
            self.thresholds, strategy=MitigationStrategy.MONITOR
        )
        trace = run_fault_free(
            seed=seed,
            trajectory_name=self.trajectory_name,
            duration_s=self.duration_s,
            guard=guard,
        )
        return RunOutcome(
            cell=None,
            seed=seed,
            label=False,
            raven_detected=self.baseline.detected(trace),
            model_detected=guard.stats.alerted,
            deviation_mm=0.0,
            attack_fired=False,
        )

    # -- whole campaigns -------------------------------------------------------------

    def plan_cells(
        self,
        scenario: str,
        error_values: Sequence[float],
        periods_ms: Sequence[int] = PAPER_PERIODS_MS,
    ) -> List[CampaignCell]:
        """The campaign grid, in deterministic sweep order."""
        return [
            CampaignCell(scenario=scenario, error_value=v, period_ms=p)
            for v in error_values
            for p in periods_ms
        ]

    def repetition_seeds(self, repetitions: int) -> List[int]:
        """The seeds used for every cell's repetitions, in order."""
        return [self.base_seed + rep for rep in range(repetitions)]

    def fault_free_seeds(self, fault_free_runs: int) -> List[int]:
        """The seeds of the attack-free (negative-label) runs, in order."""
        return [self.base_seed + 1000 + i for i in range(fault_free_runs)]

    def default_fault_free_runs(
        self, cells: Sequence[CampaignCell], repetitions: int
    ) -> int:
        """Default negative-run count: ~20% of the injection runs."""
        return max(1, len(cells) * repetitions // 5)

    def run_campaign(
        self,
        scenario: str,
        error_values: Sequence[float],
        periods_ms: Sequence[int] = PAPER_PERIODS_MS,
        repetitions: int = 20,
        fault_free_runs: int = 0,
        workers: int = 1,
    ) -> CampaignResult:
        """Sweep the full (error x period) grid with ``repetitions`` each.

        ``fault_free_runs`` adds that many attack-free negative runs,
        defaulting to roughly 20% of the injection runs when 0 is passed.
        ``workers > 1`` delegates to :class:`ParallelCampaignRunner` with
        that many processes (every run is an independent deterministic
        function of its cell and seed, so results are bit-identical) —
        the paper-scale campaigns are hours of single-core simulation
        otherwise.
        """
        if workers > 1:
            return ParallelCampaignRunner.from_runner(
                self, jobs=workers
            ).run_campaign(
                scenario,
                error_values,
                periods_ms=periods_ms,
                repetitions=repetitions,
                fault_free_runs=fault_free_runs,
            )
        cells = self.plan_cells(scenario, error_values, periods_ms)
        if fault_free_runs <= 0:
            fault_free_runs = self.default_fault_free_runs(cells, repetitions)
        result = CampaignResult(scenario=scenario)
        for ci, cell in enumerate(cells):
            for seed in self.repetition_seeds(repetitions):
                result.outcomes.append(self.run_cell_once(cell, seed))
            self._progress(
                f"[{scenario}] cell {ci + 1}/{len(cells)} "
                f"(v={cell.error_value}, d={cell.period_ms}ms) done"
            )
        for seed in self.fault_free_seeds(fault_free_runs):
            result.outcomes.append(self.run_fault_free_once(seed))
        self._progress(f"[{scenario}] campaign complete: {len(result.outcomes)} runs")
        return result


class ParallelCampaignRunner(CampaignRunner):
    """Campaign execution fanned out over ``jobs`` worker processes.

    The run plan is identical to the serial :class:`CampaignRunner` —
    the same cells, the same repetition and fault-free seeds, merged in
    the same order — and every run is a deterministic function of the
    runner configuration and its seed, so the outcome list is
    bit-identical to serial execution.  Three phases:

    1. **warm-up** — the fault-free reference trace of every repetition
       seed is computed once (in parallel) and its tip array distributed
       to the workers, instead of each worker re-deriving references;
    2. **cells** — each (cell, all repetitions) group is one task; results
       stream back in grid order, and a callback fires per completed cell
       so callers can checkpoint (cache shards) incrementally;
    3. **fault-free runs** — the negative-label runs, chunked across the
       workers.
    """

    def __init__(
        self, *args, jobs: Optional[int] = None, injector=None, **kwargs
    ) -> None:
        from repro.experiments.parallel import resolve_jobs

        super().__init__(*args, **kwargs)
        self.jobs = resolve_jobs(jobs)
        #: Optional :class:`repro.testing.faults.ChaosInjector` threaded
        #: into every worker fan-out (chaos tests only; ``None`` in
        #: production, where the engine still honours ``REPRO_CHAOS_PLAN``).
        self.injector = injector

    @classmethod
    def from_runner(
        cls, runner: CampaignRunner, jobs: Optional[int] = None, injector=None
    ) -> "ParallelCampaignRunner":
        """A parallel runner with the same configuration as ``runner``."""
        parallel = cls(
            runner.thresholds,
            duration_s=runner.duration_s,
            trajectory_name=runner.trajectory_name,
            attack_delay_cycles=runner.attack_delay_cycles,
            base_seed=runner.base_seed,
            jobs=jobs,
            injector=injector,
        )
        parallel._progress = runner._progress
        parallel._references = runner._references
        return parallel

    def _worker_config(self) -> dict:
        """Picklable construction parameters for worker-side runners."""
        return {
            "thresholds": self.thresholds.to_dict(),
            "duration_s": self.duration_s,
            "trajectory_name": self.trajectory_name,
            "attack_delay_cycles": self.attack_delay_cycles,
            "base_seed": self.base_seed,
        }

    # -- phases ------------------------------------------------------------------

    def compute_references(self, seeds: Sequence[int]) -> Dict[int, np.ndarray]:
        """Warm-up pass: fault-free reference tips for every seed, once.

        Already-cached references are not recomputed; new ones are merged
        into this runner's cache and returned for distribution to workers.
        """
        from repro.experiments.parallel import iter_tasks

        missing = [s for s in seeds if s not in self._references]
        tasks = [(self._worker_config(), seed) for seed in missing]
        for seed, tip in iter_tasks(
            _reference_worker,
            tasks,
            jobs=self.jobs,
            progress=self._progress,
            label="reference warm-up",
            injector=self.injector,
        ):
            self._references[seed] = tip
        return {s: self._references[s] for s in seeds}

    def iter_cells(
        self,
        cells: Sequence[CampaignCell],
        seeds: Sequence[int],
        references: Optional[Dict[int, np.ndarray]] = None,
    ) -> Iterator[Tuple[CampaignCell, List[RunOutcome]]]:
        """Run ``cells`` x ``seeds``, yielding per-cell outcome lists in
        grid order as they complete."""
        from repro.experiments.parallel import iter_tasks

        if references is None:
            references = self.compute_references(seeds)
        config = self._worker_config()
        tasks = [
            (
                config,
                (cell.scenario, cell.error_value, cell.period_ms),
                list(seeds),
                references,
            )
            for cell in cells
        ]
        for cell, outcomes in zip(
            cells,
            iter_tasks(
                _cell_worker,
                tasks,
                jobs=self.jobs,
                progress=self._progress,
                label="campaign cells",
                injector=self.injector,
            ),
        ):
            yield cell, outcomes

    def run_fault_free_batch(self, seeds: Sequence[int]) -> List[RunOutcome]:
        """The attack-free (negative-label) runs, chunked across workers."""
        from repro.experiments.parallel import chunked, iter_tasks

        config = self._worker_config()
        tasks = [(config, chunk) for chunk in chunked(list(seeds), self.jobs)]
        outcomes: List[RunOutcome] = []
        for batch in iter_tasks(
            _fault_free_worker,
            tasks,
            jobs=self.jobs,
            progress=self._progress,
            label="fault-free runs",
            injector=self.injector,
        ):
            outcomes.extend(batch)
        return outcomes

    # -- whole campaigns -------------------------------------------------------------

    def run_campaign(
        self,
        scenario: str,
        error_values: Sequence[float],
        periods_ms: Sequence[int] = PAPER_PERIODS_MS,
        repetitions: int = 20,
        fault_free_runs: int = 0,
        workers: int = 0,
        on_cell_done: Optional[
            Callable[[CampaignCell, List[RunOutcome]], None]
        ] = None,
    ) -> CampaignResult:
        """Parallel sweep with the serial plan and merge order.

        ``on_cell_done`` fires after each cell's repetitions complete (in
        grid order) — the cache layer uses it to write one shard per cell
        so interrupted campaigns resume instead of restarting.
        """
        if workers > 1:
            self.jobs = workers
        cells = self.plan_cells(scenario, error_values, periods_ms)
        if fault_free_runs <= 0:
            fault_free_runs = self.default_fault_free_runs(cells, repetitions)
        seeds = self.repetition_seeds(repetitions)
        references = self.compute_references(seeds)
        result = CampaignResult(scenario=scenario)
        for cell, outcomes in self.iter_cells(cells, seeds, references):
            result.outcomes.extend(outcomes)
            if on_cell_done is not None:
                on_cell_done(cell, outcomes)
        result.outcomes.extend(
            self.run_fault_free_batch(self.fault_free_seeds(fault_free_runs))
        )
        self._progress(
            f"[{scenario}] campaign complete: {len(result.outcomes)} runs "
            f"({self.jobs} jobs)"
        )
        return result


# ---------------------------------------------------------------------------
# Process-pool entry points (module-level for picklability)
# ---------------------------------------------------------------------------


def _runner_from_config(config: dict) -> CampaignRunner:
    return CampaignRunner(
        SafetyThresholds.from_dict(config["thresholds"]),
        duration_s=config["duration_s"],
        trajectory_name=config["trajectory_name"],
        attack_delay_cycles=config["attack_delay_cycles"],
        base_seed=config["base_seed"],
    )


def _reference_worker(task) -> Tuple[int, np.ndarray]:
    """Warm-up entry: one seed's fault-free reference tip array."""
    config, seed = task
    return seed, _runner_from_config(config).compute_reference_tip(seed)


def _cell_worker(task) -> List[RunOutcome]:
    """Cell entry: all repetitions of one cell, in seed order."""
    config, (scenario, error_value, period_ms), seeds, references = task
    runner = _runner_from_config(config)
    runner.prime_references(references)
    cell = CampaignCell(
        scenario=scenario, error_value=error_value, period_ms=period_ms
    )
    return [runner.run_cell_once(cell, seed) for seed in seeds]


def _fault_free_worker(task) -> List[RunOutcome]:
    """Fault-free entry: one chunk of negative-label runs, in seed order."""
    config, seeds = task
    runner = _runner_from_config(config)
    return [runner.run_fault_free_once(seed) for seed in seeds]


def table4_rows(results: Sequence[CampaignResult]) -> List[Tuple[str, str, ConfusionMatrix]]:
    """(scenario, technique, confusion) rows in Table IV's layout."""
    rows = []
    for result in results:
        rows.append((result.scenario, "Dynamic Model", result.confusion("model")))
        rows.append((result.scenario, "RAVEN", result.confusion("raven")))
    return rows

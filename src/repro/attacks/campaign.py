"""Injection campaigns: parameter sweeps behind Table IV and Figure 9.

For each campaign cell (scenario, injected error value, activation period)
and repetition seed, two deterministic replicas of the same run execute:

- a **ground-truth** replica with the RAVEN software checks disabled and no
  detector, whose tool-tip path is compared against a same-seed fault-free
  reference run — the attack *caused an adverse impact* when the paths
  diverge by more than the 1 mm surgical-safety threshold;
- a **monitored** replica with the RAVEN checks active and the
  dynamic-model detector installed in monitor mode, from which both
  detectors' verdicts are read under identical conditions.

Fault-free repetitions (negative labels) measure the false-positive rates.
Both replicas share all random streams with the reference run (same seed),
so the comparison isolates exactly the attack's effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import constants
from repro.core.baseline import RavenBaselineDetector
from repro.core.metrics import ConfusionMatrix
from repro.core.mitigation import MitigationStrategy
from repro.core.thresholds import SafetyThresholds
from repro.sim.runner import (
    make_detector_guard,
    run_fault_free,
    run_scenario_a,
    run_scenario_b,
)
from repro.sim.trace import RunTrace

#: Tool-tip deviation from the fault-free reference that counts as an
#: adverse impact (the paper's 1 mm threshold from expert surgeons).
IMPACT_DEVIATION_M = constants.UNSAFE_JUMP_M

#: Paper-scale sweep grids (Figure 9): activation periods in ms.
PAPER_PERIODS_MS = (2, 4, 8, 16, 32, 64, 128, 256)

#: Scenario-B injected DAC error values (counts).
PAPER_ERRORS_B = (2000, 5000, 9000, 13000, 18000, 26000)

#: Scenario-A injected per-packet position errors (mm).
PAPER_ERRORS_A = (0.05, 0.1, 0.2, 0.5, 1.0, 2.0)


@dataclass(frozen=True)
class CampaignCell:
    """One (scenario, error value, activation period) sweep point."""

    scenario: str
    error_value: float
    period_ms: int

    def __post_init__(self) -> None:
        if self.scenario not in ("A", "B"):
            raise ValueError("scenario must be 'A' or 'B'")
        if self.period_ms < 1:
            raise ValueError("period_ms must be >= 1")


@dataclass
class RunOutcome:
    """Result of one campaign run (one repetition of one cell)."""

    cell: Optional[CampaignCell]
    seed: int
    label: bool
    raven_detected: bool
    model_detected: bool
    deviation_mm: float
    attack_fired: bool

    @property
    def is_fault_free(self) -> bool:
        """Whether this outcome comes from an attack-free run."""
        return self.cell is None


@dataclass
class CampaignResult:
    """All outcomes of one scenario's campaign."""

    scenario: str
    outcomes: List[RunOutcome] = field(default_factory=list)

    def confusion(self, detector: str) -> ConfusionMatrix:
        """Confusion matrix for ``detector`` in {"model", "raven"}."""
        if detector not in ("model", "raven"):
            raise ValueError("detector must be 'model' or 'raven'")
        pairs = [
            (
                o.label,
                o.model_detected if detector == "model" else o.raven_detected,
            )
            for o in self.outcomes
        ]
        return ConfusionMatrix.from_pairs(pairs)

    def cell_probabilities(self) -> Dict[CampaignCell, Dict[str, float]]:
        """Per-cell impact/detection probabilities (Figure 9 data)."""
        grouped: Dict[CampaignCell, List[RunOutcome]] = {}
        for outcome in self.outcomes:
            if outcome.cell is not None:
                grouped.setdefault(outcome.cell, []).append(outcome)
        table = {}
        for cell, runs in grouped.items():
            n = len(runs)
            table[cell] = {
                "n": n,
                "p_impact": sum(o.label for o in runs) / n,
                "p_model": sum(o.model_detected for o in runs) / n,
                "p_raven": sum(o.raven_detected for o in runs) / n,
            }
        return table


class CampaignRunner:
    """Executes injection campaigns and labels their outcomes."""

    def __init__(
        self,
        thresholds: SafetyThresholds,
        duration_s: float = 1.6,
        trajectory_name: str = "circle",
        attack_delay_cycles: int = 300,
        base_seed: int = 0,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.thresholds = thresholds
        self.duration_s = duration_s
        self.trajectory_name = trajectory_name
        self.attack_delay_cycles = attack_delay_cycles
        self.base_seed = base_seed
        self.baseline = RavenBaselineDetector()
        self._references: Dict[int, RunTrace] = {}
        self._progress = progress or (lambda msg: None)

    # -- pieces ------------------------------------------------------------------

    def _reference(self, seed: int) -> RunTrace:
        """Fault-free reference trace for ``seed`` (cached)."""
        if seed not in self._references:
            self._references[seed] = run_fault_free(
                seed=seed,
                trajectory_name=self.trajectory_name,
                duration_s=self.duration_s,
            )
        return self._references[seed]

    def _attack_runner(self, cell: CampaignCell):
        if cell.scenario == "B":
            return lambda **kw: run_scenario_b(
                error_dac=int(cell.error_value), period_ms=cell.period_ms, **kw
            )
        return lambda **kw: run_scenario_a(
            error_mm=float(cell.error_value), period_ms=cell.period_ms, **kw
        )

    def run_cell_once(self, cell: CampaignCell, seed: int) -> RunOutcome:
        """Both replicas of one repetition of ``cell``."""
        runner = self._attack_runner(cell)
        common = dict(
            seed=seed,
            duration_s=self.duration_s,
            trajectory_name=self.trajectory_name,
            attack_delay_cycles=self.attack_delay_cycles,
        )

        # Ground truth: no RAVEN checks, no detector.
        raw = runner(raven_safety_enabled=False, guard=None, **common)
        deviation = raw.trace.max_deviation_from(self._reference(seed))
        label = deviation > IMPACT_DEVIATION_M

        # Monitored replica: RAVEN checks + detector in monitor mode.
        guard = make_detector_guard(
            self.thresholds, strategy=MitigationStrategy.MONITOR
        )
        monitored = runner(raven_safety_enabled=True, guard=guard, **common)

        return RunOutcome(
            cell=cell,
            seed=seed,
            label=label,
            raven_detected=self.baseline.detected(monitored.trace),
            model_detected=monitored.model_detected,
            deviation_mm=deviation * 1e3,
            attack_fired=raw.record.fired,
        )

    def run_fault_free_once(self, seed: int) -> RunOutcome:
        """One attack-free repetition (negative label, for FPR)."""
        guard = make_detector_guard(
            self.thresholds, strategy=MitigationStrategy.MONITOR
        )
        trace = run_fault_free(
            seed=seed,
            trajectory_name=self.trajectory_name,
            duration_s=self.duration_s,
            guard=guard,
        )
        return RunOutcome(
            cell=None,
            seed=seed,
            label=False,
            raven_detected=self.baseline.detected(trace),
            model_detected=guard.stats.alerted,
            deviation_mm=0.0,
            attack_fired=False,
        )

    # -- whole campaigns -------------------------------------------------------------

    def run_campaign(
        self,
        scenario: str,
        error_values: Sequence[float],
        periods_ms: Sequence[int] = PAPER_PERIODS_MS,
        repetitions: int = 20,
        fault_free_runs: int = 0,
        workers: int = 1,
    ) -> CampaignResult:
        """Sweep the full (error x period) grid with ``repetitions`` each.

        ``fault_free_runs`` adds that many attack-free negative runs,
        defaulting to roughly 20% of the injection runs when 0 is passed.
        ``workers > 1`` distributes the runs over that many processes
        (every run is an independent deterministic function of its cell
        and seed) — the paper-scale campaigns are hours of single-core
        simulation otherwise.
        """
        cells = [
            CampaignCell(scenario=scenario, error_value=v, period_ms=p)
            for v in error_values
            for p in periods_ms
        ]
        if fault_free_runs <= 0:
            fault_free_runs = max(1, len(cells) * repetitions // 5)
        if workers > 1:
            return self._run_campaign_parallel(
                scenario, cells, repetitions, fault_free_runs, workers
            )
        result = CampaignResult(scenario=scenario)
        for ci, cell in enumerate(cells):
            for rep in range(repetitions):
                seed = self.base_seed + rep
                result.outcomes.append(self.run_cell_once(cell, seed))
            self._progress(
                f"[{scenario}] cell {ci + 1}/{len(cells)} "
                f"(v={cell.error_value}, d={cell.period_ms}ms) done"
            )
        for i in range(fault_free_runs):
            result.outcomes.append(
                self.run_fault_free_once(self.base_seed + 1000 + i)
            )
        self._progress(f"[{scenario}] campaign complete: {len(result.outcomes)} runs")
        return result

    def _run_campaign_parallel(
        self,
        scenario: str,
        cells: List[CampaignCell],
        repetitions: int,
        fault_free_runs: int,
        workers: int,
    ) -> CampaignResult:
        """Fan the independent runs out over a process pool.

        Work is grouped by repetition seed so each worker reuses its
        fault-free reference run across all cells with that seed.
        """
        from concurrent.futures import ProcessPoolExecutor

        config = _RunnerConfig(
            thresholds=self.thresholds.to_dict(),
            duration_s=self.duration_s,
            trajectory_name=self.trajectory_name,
            attack_delay_cycles=self.attack_delay_cycles,
            base_seed=self.base_seed,
        )
        tasks = []
        for rep in range(repetitions):
            seed = self.base_seed + rep
            tasks.append(
                (
                    config,
                    [(c.scenario, c.error_value, c.period_ms) for c in cells],
                    seed,
                )
            )
        ff_seeds = [self.base_seed + 1000 + i for i in range(fault_free_runs)]
        chunk = max(1, len(ff_seeds) // max(1, workers))
        ff_tasks = [
            (config, None, ff_seeds[i : i + chunk])
            for i in range(0, len(ff_seeds), chunk)
        ]

        result = CampaignResult(scenario=scenario)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            done = 0
            for outcomes in pool.map(_campaign_worker, tasks + ff_tasks):
                result.outcomes.extend(outcomes)
                done += 1
                self._progress(
                    f"[{scenario}] parallel batch {done}/{len(tasks) + len(ff_tasks)} done"
                )
        self._progress(
            f"[{scenario}] campaign complete: {len(result.outcomes)} runs "
            f"({workers} workers)"
        )
        return result


@dataclass(frozen=True)
class _RunnerConfig:
    """Picklable CampaignRunner construction parameters."""

    thresholds: dict
    duration_s: float
    trajectory_name: str
    attack_delay_cycles: int
    base_seed: int


def _campaign_worker(task) -> List[RunOutcome]:
    """Process-pool entry: run one seed's cells, or a batch of fault-free
    runs (``cells is None``)."""
    config, cells, seed_or_seeds = task
    runner = CampaignRunner(
        SafetyThresholds.from_dict(config.thresholds),
        duration_s=config.duration_s,
        trajectory_name=config.trajectory_name,
        attack_delay_cycles=config.attack_delay_cycles,
        base_seed=config.base_seed,
    )
    if cells is None:
        return [runner.run_fault_free_once(seed) for seed in seed_or_seeds]
    outcomes = []
    for scenario, error_value, period_ms in cells:
        cell = CampaignCell(
            scenario=scenario, error_value=error_value, period_ms=period_ms
        )
        outcomes.append(runner.run_cell_once(cell, seed_or_seeds))
    return outcomes


def table4_rows(results: Sequence[CampaignResult]) -> List[Tuple[str, str, ConfusionMatrix]]:
    """(scenario, technique, confusion) rows in Table IV's layout."""
    rows = []
    for result in results:
        rows.append((result.scenario, "Dynamic Model", result.confusion("model")))
        rows.append((result.scenario, "RAVEN", result.confusion("raven")))
    return rows

"""Attack-Preparation phase: eavesdropping on the USB communication.

The malicious shared library exports a ``write`` symbol whose wrapper —
exactly as in Figure 4 of the paper — checks that it is running inside the
RAVEN control process and that the descriptor is a USB board, logs the
packet, forwards it to the attacker's remote server over UDP, and then
calls the original ``write``.

The wrapper changes neither control flow nor packet contents; its only
cyber-domain footprint is the extra execution time measured in Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import constants
from repro.sysmodel.linker import SharedLibrary
from repro.sysmodel.process import Process
from repro.teleop.network import ExfiltrationSink


@dataclass
class EavesdropLogger:
    """Attacker-side store of captured USB packets."""

    packets: List[bytes] = field(default_factory=list)
    call_count: int = 0

    def record(self, data: bytes) -> None:
        """Store one captured packet."""
        self.packets.append(bytes(data))

    def command_packets(self) -> List[bytes]:
        """Only the 18-byte command packets (what Figure 5 plots)."""
        return [p for p in self.packets if len(p) == constants.USB_PACKET_SIZE]

    def __len__(self) -> int:
        return len(self.packets)


def build_eavesdropper_library(
    logger: EavesdropLogger,
    sink: Optional[ExfiltrationSink] = None,
    target_process: str = "r2_control",
    name: str = "libeavesdrop.so",
) -> Tuple[SharedLibrary, EavesdropLogger]:
    """Build the preparation-phase malicious shared library.

    Parameters
    ----------
    logger:
        Where captured packets accumulate (the attacker's log file).
    sink:
        Optional remote exfiltration endpoint; every captured packet is
        also "sent over UDP" to it, reproducing the paper's forwarding
        step (and its extra wrapper latency).
    target_process:
        Only writes from this process name are captured — the real wrapper
        checks the process name so other processes' writes pass untouched.
    """
    library = SharedLibrary(name)

    def write_factory(next_write, process: Process):
        def malicious_write(fd: int, data: bytes) -> int:
            logger.call_count += 1
            if (
                process.name == target_process
                and len(data) == constants.USB_PACKET_SIZE
            ):
                logger.record(data)
                if sink is not None:
                    sink.fd_write(data)
            return next_write(fd, data)

        return malicious_write

    library.export("write", write_factory)
    return library, logger

"""Attack Deployment phase: the injection wrappers (scenarios A and B).

Scenario B — *injection of unintended motor torque commands* — exports a
``write`` wrapper that, when the trigger (Byte 0 = Pedal Down) is active,
modifies the DAC fields of the outgoing USB packet **after** the software
safety checks have passed (the TOCTOU exploit).  Two payloads are provided:

- :class:`DacOffsetInjection`: adds a chosen error value to a DAC channel —
  the parametrized attack of Table IV / Figure 9(b);
- :class:`ByteCorruptionInjection`: overwrites a raw byte with a random
  value (e.g. between 0 and 100), the blunt corruption of Section III.C.

Scenario A — *injection of unintended user inputs* — exports a ``recvfrom``
wrapper that perturbs the operator's desired-position increments after
they are received by the control software, plus a passive ``write`` wrapper
that feeds the shared Pedal-Down trigger (the malware watches the robot
state through the same side channel either way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro import constants
from repro.attacks.malware import PedalDownTrigger
from repro.errors import AttackConfigError, ChecksumError, PacketError
from repro.sysmodel.linker import SharedLibrary
from repro.sysmodel.process import Process
from repro.teleop.itp import decode_itp, encode_itp, ItpPacket

_INT16_MIN, _INT16_MAX = -(1 << 15), (1 << 15) - 1


@dataclass
class AttackRecord:
    """Summary of what an injection library actually did during a run."""

    scenario: str
    error_value: float
    period_cycles: int
    activations: int = 0
    first_active_cycle: Optional[int] = None

    @property
    def fired(self) -> bool:
        """Whether the attack activated at least once."""
        return self.activations > 0


# ---------------------------------------------------------------------------
# Scenario B payloads
# ---------------------------------------------------------------------------


class DacOffsetInjection:
    """Add ``offset_counts`` to one DAC channel of the USB packet."""

    def __init__(self, offset_counts: int, channel: int = 0) -> None:
        if not (0 <= channel < constants.USB_NUM_CHANNELS):
            raise AttackConfigError(f"bad DAC channel {channel}")
        if offset_counts == 0:
            raise AttackConfigError("offset_counts must be non-zero")
        self.offset_counts = int(offset_counts)
        self.channel = channel

    def apply(self, data: bytes) -> bytes:
        """Return the modified packet bytes (checksum left stale)."""
        buf = bytearray(data)
        lo = constants.USB_DAC_OFFSET + 2 * self.channel
        value = int.from_bytes(buf[lo : lo + 2], "big", signed=True)
        value = max(_INT16_MIN, min(_INT16_MAX, value + self.offset_counts))
        buf[lo : lo + 2] = value.to_bytes(2, "big", signed=True)
        return bytes(buf)


class ByteCorruptionInjection:
    """Overwrite one raw (non-state) byte with a random value.

    The byte position and value are drawn once, at the first activation,
    and held for the whole burst — one corruption event, sustained over
    the activation period, exactly like the paper's "inject a random value
    (e.g., between 0 and 100) to one of the bytes".
    """

    def __init__(
        self,
        rng: np.random.Generator,
        byte_index: Optional[int] = None,
        value_range: Tuple[int, int] = (0, 100),
    ) -> None:
        if byte_index is not None and byte_index == constants.USB_STATE_BYTE:
            raise AttackConfigError(
                "corrupting the state byte would break the trigger"
            )
        self.rng = rng
        self.byte_index = byte_index
        self.value_range = value_range
        self._chosen_value: Optional[int] = None

    def apply(self, data: bytes) -> bytes:
        """Return the packet with the corrupted byte."""
        if self.byte_index is None:
            # Pick the high-order byte of one of the live DAC channels
            # (channels 0-2 drive the three modelled motors): a "random
            # value between 0 and 100" written there re-commands the motor
            # to up to ~25k counts, which is what makes the arm jump.
            channel = int(self.rng.integers(0, 3))
            self.byte_index = constants.USB_DAC_OFFSET + 2 * channel
        if self._chosen_value is None:
            self._chosen_value = int(
                self.rng.integers(self.value_range[0], self.value_range[1] + 1)
            )
        buf = bytearray(data)
        buf[self.byte_index] = self._chosen_value
        return bytes(buf)


def build_scenario_b_library(
    trigger: PedalDownTrigger,
    payload,
    target_process: str = "r2_control",
    name: str = "libinject_b.so",
) -> SharedLibrary:
    """The deployment-phase library for scenario B (torque commands).

    The wrapper checks the process name and packet size, feeds Byte 0 to
    the trigger, and — while active — rewrites the DAC bytes before
    calling the original ``write``.
    """
    library = SharedLibrary(name)

    def write_factory(next_write, process: Process):
        def malicious_write(fd: int, data: bytes) -> int:
            if (
                process.name == target_process
                and len(data) == constants.USB_PACKET_SIZE
            ):
                state_byte = data[constants.USB_STATE_BYTE]
                if trigger.observe(state_byte):
                    data = payload.apply(data)
            return next_write(fd, data)

        return malicious_write

    library.export("write", write_factory)
    return library


# ---------------------------------------------------------------------------
# Scenario A payload + library
# ---------------------------------------------------------------------------


class UserInputInjection:
    """Add a position error to the operator's incremental commands.

    ``error_m`` metres are injected *per packet* along ``direction`` while
    the trigger is active, so the total commanded deviation grows with the
    activation period — matching the paper's observation that impact
    probability rises with both the injected error value and the period.
    """

    def __init__(
        self,
        error_m: float,
        direction: Optional[Sequence[float]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if error_m <= 0:
            raise AttackConfigError("error_m must be positive")
        self.error_m = float(error_m)
        if direction is None:
            rng = rng or np.random.default_rng(0)
            vec = rng.standard_normal(3)
        else:
            vec = np.asarray(direction, dtype=float)
        norm = np.linalg.norm(vec)
        if norm < 1e-12:
            raise AttackConfigError("direction must be non-zero")
        self.direction = vec / norm

    def apply(self, packet: ItpPacket) -> ItpPacket:
        """Return a copy of the console packet with the injected increment."""
        return ItpPacket(
            sequence=packet.sequence,
            pedal_down=packet.pedal_down,
            dpos=packet.dpos + self.error_m * self.direction,
            dquat=packet.dquat,
            mode=packet.mode,
        )


def build_scenario_a_library(
    trigger: PedalDownTrigger,
    payload: UserInputInjection,
    target_process: str = "r2_control",
    name: str = "libinject_a.so",
) -> SharedLibrary:
    """The deployment-phase library for scenario A (user inputs).

    Exports *two* wrappers: a passive ``write`` wrapper that feeds the
    Pedal-Down trigger from the USB side channel, and a ``recvfrom``
    wrapper that perturbs the parsed console packets while the trigger is
    active.  The modification happens after the control software has
    received (and checksum-validated) the datagram, modelling the paper's
    in-process corruption of user inputs; the re-encoded packet therefore
    carries a fresh valid checksum.
    """
    library = SharedLibrary(name)
    state = {"active": False}

    def write_factory(next_write, process: Process):
        def observing_write(fd: int, data: bytes) -> int:
            if (
                process.name == target_process
                and len(data) == constants.USB_PACKET_SIZE
            ):
                state["active"] = trigger.observe(data[constants.USB_STATE_BYTE])
            return next_write(fd, data)

        return observing_write

    def recvfrom_factory(next_recvfrom, process: Process):
        def malicious_recvfrom(fd: int, max_bytes: int):
            data = next_recvfrom(fd, max_bytes)
            if (
                data is None
                or process.name != target_process
                or len(data) != constants.ITP_PACKET_SIZE
                or not state["active"]
            ):
                return data
            try:
                packet = decode_itp(data)
            except (PacketError, ChecksumError):
                return data
            return encode_itp(payload.apply(packet))

        return malicious_recvfrom

    library.export("write", write_factory)
    library.export("recvfrom", recvfrom_factory)
    return library

"""repro — reproduction of "Targeted Attacks on Teleoperated Surgical
Robots: Dynamic Model-Based Detection and Mitigation" (DSN 2016).

The package contains a complete simulated RAVEN II surgical-robot stack
(kinematics, dynamics, control software, USB/PLC hardware, teleoperation),
a simulated Linux syscall/dynamic-linking layer, the paper's three-phase
targeted attack (eavesdrop -> offline analysis -> triggered injection),
and the paper's contribution: a real-time dynamic model-based anomaly
detector that estimates the physical consequence of every motor command
before it executes.

Quick start::

    from repro.sim import run_fault_free, train_thresholds
    from repro.sim.runner import make_detector_guard, run_scenario_b
    from repro.core import MitigationStrategy

    thresholds = train_thresholds(num_runs=20)
    guard = make_detector_guard(thresholds, MitigationStrategy.BLOCK_AND_ESTOP)
    result = run_scenario_b(seed=0, error_dac=18000, period_ms=64, guard=guard)
    print(guard.stats.alerted, result.trace.max_jump())

See ``examples/`` for complete scenarios and ``DESIGN.md`` for the system
inventory.
"""

from repro import constants, errors

__version__ = "1.0.0"

__all__ = ["constants", "errors", "__version__"]

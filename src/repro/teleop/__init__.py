"""Teleoperation: ITP protocol, master console emulator, network channel.

The desired position/orientation of the robotic arms, foot-pedal status and
control mode travel from the master console to the control software over
UDP using the Interoperable Teleoperation Protocol (ITP).  The paper's
evaluation replaces the human operator with a *master console emulator*
replaying surgical trajectories; :class:`MasterConsoleEmulator` plays that
role here.

Public API
----------
- :class:`ItpPacket`, :func:`encode_itp`, :func:`decode_itp` — the protocol.
- :class:`UdpChannel`, :class:`UdpSocket` — lossy/delaying datagram transport.
- :class:`PedalSchedule` — scripted foot-pedal events.
- :class:`MasterConsoleEmulator` — trajectory playback onto the wire.
"""

from repro.teleop.itp import ITP_MODE_CARTESIAN, ItpPacket, decode_itp, encode_itp
from repro.teleop.network import UdpChannel, UdpSocket
from repro.teleop.pedal import PedalSchedule
from repro.teleop.console import MasterConsoleEmulator

__all__ = [
    "ITP_MODE_CARTESIAN",
    "ItpPacket",
    "MasterConsoleEmulator",
    "PedalSchedule",
    "UdpChannel",
    "UdpSocket",
    "decode_itp",
    "encode_itp",
]

"""Scripted foot-pedal events for the master console emulator."""

from __future__ import annotations

from typing import Iterable, List, Tuple


class PedalSchedule:
    """Time-ordered pedal press/release events.

    The schedule is a list of ``(time_s, pressed)`` pairs; the pedal state
    at time ``t`` is that of the latest event at or before ``t`` (initially
    released).
    """

    def __init__(self, events: Iterable[Tuple[float, bool]] = ()) -> None:
        self.events: List[Tuple[float, bool]] = sorted(events, key=lambda e: e[0])

    @classmethod
    def pressed_during(cls, start: float, end: float) -> "PedalSchedule":
        """Pedal held down on ``[start, end)`` and released otherwise."""
        if end <= start:
            raise ValueError("end must be after start")
        return cls([(start, True), (end, False)])

    @classmethod
    def always_down(cls, from_time: float = 0.0) -> "PedalSchedule":
        """Pedal pressed at ``from_time`` and never released."""
        return cls([(from_time, True)])

    def state(self, t: float) -> bool:
        """Pedal state at time ``t`` (True = pressed)."""
        pressed = False
        for when, value in self.events:
            if when > t:
                break
            pressed = value
        return pressed

    def edges_between(self, t0: float, t1: float) -> List[Tuple[float, bool]]:
        """Events with ``t0 < time <= t1`` (exclusive/inclusive)."""
        return [(when, value) for when, value in self.events if t0 < when <= t1]

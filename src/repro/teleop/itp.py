"""Interoperable Teleoperation Protocol (ITP) packet codec.

ITP is the UDP-based protocol between the master console and the RAVEN
control software.  Each packet carries the surgeon's *incremental* motion
command for one control period plus foot-pedal status and control mode.

Wire format (40 bytes, big-endian):

    offset  size  field
    0       4     sequence number (uint32)
    4       1     foot pedal (0 = up, 1 = down)
    5       1     control mode (1 = Cartesian teleoperation)
    6       12    position increment, 3 x int32 nanometres
    18      16    orientation increment quaternion, 4 x int32 (Q30 fixed point)
    34      4     reserved
    38      2     additive 16-bit checksum of bytes 0-37
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import constants
from repro.errors import ChecksumError, PacketError

#: Cartesian incremental teleoperation mode.
ITP_MODE_CARTESIAN = 1

_NM_PER_M = 1e9
_Q30 = float(1 << 30)
_INT32_MIN, _INT32_MAX = -(1 << 31), (1 << 31) - 1


@dataclass(frozen=True)
class ItpPacket:
    """One console command: incremental motion + pedal + mode."""

    sequence: int
    pedal_down: bool
    dpos: np.ndarray
    dquat: np.ndarray = field(
        default_factory=lambda: np.array([1.0, 0.0, 0.0, 0.0])
    )
    mode: int = ITP_MODE_CARTESIAN

    def __post_init__(self) -> None:
        dpos = np.asarray(self.dpos, dtype=float)
        dquat = np.asarray(self.dquat, dtype=float)
        if dpos.shape != (3,):
            raise PacketError("dpos must be a 3-vector")
        if dquat.shape != (4,):
            raise PacketError("dquat must be a quaternion (w, x, y, z)")
        object.__setattr__(self, "dpos", dpos)
        object.__setattr__(self, "dquat", dquat)


def _checksum16(data: bytes) -> int:
    return sum(data) & 0xFFFF


def encode_itp(packet: ItpPacket) -> bytes:
    """Serialize an :class:`ItpPacket` to its 40-byte wire form."""
    out = bytearray(constants.ITP_PACKET_SIZE)
    out[0:4] = (packet.sequence & 0xFFFFFFFF).to_bytes(4, "big")
    out[4] = 1 if packet.pedal_down else 0
    out[5] = packet.mode & 0xFF
    for i, value in enumerate(packet.dpos):
        scaled = int(round(value * _NM_PER_M))
        if not (_INT32_MIN <= scaled <= _INT32_MAX):
            raise PacketError(f"position increment {value} m out of range")
        out[6 + 4 * i : 10 + 4 * i] = scaled.to_bytes(4, "big", signed=True)
    for i, value in enumerate(packet.dquat):
        scaled = int(round(value * _Q30))
        scaled = max(_INT32_MIN, min(_INT32_MAX, scaled))
        out[18 + 4 * i : 22 + 4 * i] = scaled.to_bytes(4, "big", signed=True)
    out[38:40] = _checksum16(bytes(out[:38])).to_bytes(2, "big")
    return bytes(out)


def decode_itp(data: bytes, verify_checksum: bool = True) -> ItpPacket:
    """Parse a 40-byte wire packet back to an :class:`ItpPacket`.

    Raises
    ------
    PacketError
        On wrong length.
    ChecksumError
        On checksum mismatch when ``verify_checksum`` is set.  Unlike the
        USB boards, the *control software* does validate console packets.
    """
    if len(data) != constants.ITP_PACKET_SIZE:
        raise PacketError(
            f"ITP packet must be {constants.ITP_PACKET_SIZE} bytes, got {len(data)}"
        )
    if verify_checksum:
        expected = _checksum16(data[:38])
        got = int.from_bytes(data[38:40], "big")
        if expected != got:
            raise ChecksumError(
                f"ITP checksum mismatch: expected {expected:#06x}, got {got:#06x}"
            )
    sequence = int.from_bytes(data[0:4], "big")
    pedal_down = bool(data[4])
    mode = data[5]
    dpos = np.array(
        [
            int.from_bytes(data[6 + 4 * i : 10 + 4 * i], "big", signed=True)
            / _NM_PER_M
            for i in range(3)
        ]
    )
    dquat = np.array(
        [
            int.from_bytes(data[18 + 4 * i : 22 + 4 * i], "big", signed=True) / _Q30
            for i in range(4)
        ]
    )
    return ItpPacket(
        sequence=sequence, pedal_down=pedal_down, dpos=dpos, dquat=dquat, mode=mode
    )


def corrupt_itp(data: bytes, byte_index: int, xor_mask: int = 0xFF) -> bytes:
    """Flip bits of one wire byte (line-noise model for fault injection).

    XORing any byte in ``[0, 38)`` breaks the additive checksum, so the
    control software's :func:`decode_itp` rejects the packet — on-the-wire
    corruption therefore manifests to the receiver as packet loss, which is
    exactly how the real ITP/UDP link degrades.  Corrupting the checksum
    bytes themselves (offsets 38-39) has the same effect.
    """
    if not data:
        return data
    out = bytearray(data)
    out[byte_index % len(out)] ^= xor_mask & 0xFF
    return bytes(out)


def clamp_increment(
    dpos: np.ndarray, limit: Optional[float] = None
) -> np.ndarray:
    """Clamp a position increment to the per-packet safety limit.

    The control software rejects/clips increments exceeding
    :data:`repro.constants.ITP_MAX_INCREMENT_M` per axis.
    """
    limit = constants.ITP_MAX_INCREMENT_M if limit is None else limit
    return np.clip(np.asarray(dpos, dtype=float), -limit, limit)

"""Datagram transport between the console and the control software.

A :class:`UdpChannel` carries datagrams with configurable fixed latency,
random jitter and loss probability — enough to study the network-level
degradation prior work focused on (Bonaci et al.'s DoS/MITM attacks) and to
drive the control software the same way the real ITP/UDP link does.

A :class:`UdpSocket` adapts one end of the channel to the
:class:`~repro.sysmodel.process.DeviceFile` protocol so the control process
receives packets via the ``recvfrom`` system call — the hook point for the
paper's scenario-A attack (injection of unintended user inputs *after* they
are received by the control software).

Beyond the channel's built-in stationary latency/jitter/loss model, an
optional per-datagram fault hook (:attr:`UdpChannel.fault`, the
:class:`ChannelFault` protocol) lets :mod:`repro.testing.physfaults` impose
*windowed, bursty* degradation — loss bursts, duplication, jitter spikes,
payload corruption — on top of (or instead of) the stationary model.
Production sends pay one attribute check.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np


class ChannelFault:
    """Protocol for per-datagram physical faults on a :class:`UdpChannel`.

    :meth:`on_send` maps one datagram to the list of ``(data, extra_delay)``
    deliveries it becomes: ``[]`` drops it, one entry passes (possibly
    delayed or corrupted), several entries duplicate it.
    """

    def on_send(
        self, data: bytes, now: float
    ) -> Sequence[Tuple[bytes, float]]:  # pragma: no cover - interface
        raise NotImplementedError


class UdpChannel:
    """One-directional datagram channel with latency, jitter and loss."""

    def __init__(
        self,
        latency_s: float = 0.0,
        jitter_s: float = 0.0,
        loss_probability: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if latency_s < 0 or jitter_s < 0:
            raise ValueError("latency and jitter must be non-negative")
        if not (0.0 <= loss_probability < 1.0):
            raise ValueError("loss_probability must be in [0, 1)")
        if (jitter_s > 0 or loss_probability > 0) and rng is None:
            raise ValueError("rng is required for jitter or loss")
        self.latency_s = latency_s
        self.jitter_s = jitter_s
        self.loss_probability = loss_probability
        self._rng = rng
        self._in_flight: List[Tuple[float, int, bytes]] = []
        self._seq = 0
        self.sent = 0
        self.dropped = 0
        #: Optional windowed/bursty fault hook (see :class:`ChannelFault`).
        self.fault: Optional[ChannelFault] = None

    def send(self, data: bytes, now: float) -> None:
        """Enqueue a datagram at time ``now``."""
        self.sent += 1
        if self.loss_probability > 0 and self._rng.random() < self.loss_probability:
            self.dropped += 1
            return
        delay = self.latency_s
        if self.jitter_s > 0:
            delay += float(self._rng.uniform(0.0, self.jitter_s))
        if self.fault is not None:
            deliveries = self.fault.on_send(data, now)
            if not deliveries:
                self.dropped += 1
                return
            for payload, extra in deliveries:
                heapq.heappush(
                    self._in_flight, (now + delay + extra, self._seq, payload)
                )
                self._seq += 1
            return
        heapq.heappush(self._in_flight, (now + delay, self._seq, data))
        self._seq += 1

    def receive(self, now: float) -> Optional[bytes]:
        """Pop the next datagram whose delivery time has arrived, else None."""
        if self._in_flight and self._in_flight[0][0] <= now:
            return heapq.heappop(self._in_flight)[2]
        return None

    def pending(self) -> int:
        """Number of datagrams still in flight."""
        return len(self._in_flight)


class UdpSocket:
    """Receiving socket bound to a channel; a DeviceFile for ``recvfrom``.

    The socket needs to know the current simulation time to honour channel
    latency; the simulation rig advances it via :meth:`set_time`.
    """

    def __init__(self, channel: UdpChannel, port: int) -> None:
        self.channel = channel
        self.port = port
        self._now = 0.0
        self.received = 0

    def set_time(self, now: float) -> None:
        """Advance the socket's notion of time (called by the rig)."""
        self._now = now

    # -- DeviceFile protocol -----------------------------------------------------

    def fd_recvfrom(self, max_bytes: int) -> Optional[bytes]:
        """Non-blocking receive; ``None`` when no datagram is deliverable."""
        data = self.channel.receive(self._now)
        if data is None:
            return None
        self.received += 1
        return data[:max_bytes]

    def fd_write(self, data: bytes) -> int:
        """Sending through the receive socket loops back onto the channel."""
        self.channel.send(data, self._now)
        return len(data)

    def fd_read(self, max_bytes: int) -> bytes:
        """``read`` on a datagram socket behaves like ``recvfrom`` or empty."""
        return self.fd_recvfrom(max_bytes) or b""


class ExfiltrationSink:
    """An attacker-side UDP endpoint that records everything sent to it.

    Used by the eavesdropping malware to "forward the logged USB
    communication to the attacker on a remote server using UDP packets".
    """

    def __init__(self) -> None:
        self.datagrams: List[bytes] = []

    # -- DeviceFile protocol -----------------------------------------------------

    def fd_write(self, data: bytes) -> int:
        self.datagrams.append(bytes(data))
        return len(data)

    def fd_read(self, max_bytes: int) -> bytes:
        return b""

    def __len__(self) -> int:
        return len(self.datagrams)


class LoopbackExfiltration:
    """Exfiltration over a *real* UDP socket to localhost.

    The in-memory :class:`ExfiltrationSink` is convenient for tests, but
    the Table II overhead measurement needs the logging wrapper to pay the
    true cost of a datagram send — which on the paper's testbed dominates
    the wrapper's overhead.  This endpoint performs an actual
    ``sendto(2)`` on the loopback interface (no external network needed).
    """

    def __init__(self) -> None:
        import socket

        self._rx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._rx.bind(("127.0.0.1", 0))
        self._rx.setblocking(False)
        self._tx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._addr = self._rx.getsockname()
        self.sent = 0

    # -- DeviceFile protocol -----------------------------------------------------

    def fd_write(self, data: bytes) -> int:
        self._tx.sendto(data, self._addr)
        self.sent += 1
        return len(data)

    def fd_read(self, max_bytes: int) -> bytes:
        try:
            return self._rx.recv(max_bytes)
        except BlockingIOError:
            return b""

    def drain(self, limit: int = 1_000_000) -> List[bytes]:
        """Receive everything currently queued on the loopback socket."""
        out = []
        for _ in range(limit):
            data = self.fd_read(65536)
            if not data:
                break
            out.append(data)
        return out

    def close(self) -> None:
        """Release both sockets."""
        self._rx.close()
        self._tx.close()

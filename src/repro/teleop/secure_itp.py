"""Secure ITP: authenticated teleoperation packets (Lee & Thuraisingham).

The paper's related work discusses *Secure ITP* — adding TLS/DTLS-style
authentication to the Interoperable Telesurgery Protocol so the console
and robot authenticate each other and packets cannot be forged in transit.
This module implements the datagram-level core of that idea:

- every ITP packet is wrapped with a truncated HMAC-SHA256 tag over the
  payload and a monotonically increasing sequence number;
- the receiver rejects bad tags and replayed/stale sequence numbers.

It exists to reproduce the paper's *negative* result as much as the
positive one:

- Secure ITP **does** stop man-in-the-middle modification of console
  traffic (:mod:`repro.attacks.network`), because a tampered datagram
  fails authentication; but
- it does **not** stop the paper's scenario-A attack, because the
  malicious ``recvfrom`` wrapper runs *inside the control process after
  the packet has been received and authenticated* — "encryption
  mechanisms ... may introduce significant overhead in the system
  operation and still not eliminate the possibility of TOCTOU exploits".
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional

from repro import constants
from repro.errors import PacketError
from repro.teleop.itp import ItpPacket, decode_itp, encode_itp

#: Bytes of the truncated HMAC-SHA256 tag appended to each packet.
TAG_SIZE = 16

#: Total size of a secured ITP datagram.
SECURE_ITP_PACKET_SIZE = constants.ITP_PACKET_SIZE + TAG_SIZE


class AuthenticationError(PacketError):
    """Raised when a secured packet fails tag or freshness verification."""


@dataclass
class SecureChannelStats:
    """Verification counters of one receiver."""

    accepted: int = 0
    bad_tag: int = 0
    replayed: int = 0
    malformed: int = 0


class SecureItpSender:
    """Console-side wrapper: sign each ITP packet before transmission."""

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError("key must be at least 16 bytes")
        self._key = key

    def seal(self, packet: ItpPacket) -> bytes:
        """Encode and authenticate one packet."""
        payload = encode_itp(packet)
        tag = hmac.new(self._key, payload, hashlib.sha256).digest()[:TAG_SIZE]
        return payload + tag


class SecureItpReceiver:
    """Robot-side wrapper: verify tag and freshness, then decode.

    Freshness uses the ITP sequence number: packets at or below the
    highest accepted sequence are rejected as replays (UDP reordering of
    a 1 kHz incremental stream is treated as loss, as the real control
    software only acts on the latest packet anyway).
    """

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError("key must be at least 16 bytes")
        self._key = key
        self._last_sequence: Optional[int] = None
        self.stats = SecureChannelStats()

    def open(self, data: bytes) -> ItpPacket:
        """Verify and decode one secured datagram.

        Raises
        ------
        AuthenticationError
            On wrong length, bad tag, or replayed sequence number.
        """
        if len(data) != SECURE_ITP_PACKET_SIZE:
            self.stats.malformed += 1
            raise AuthenticationError(
                f"secured packet must be {SECURE_ITP_PACKET_SIZE} bytes, "
                f"got {len(data)}"
            )
        payload, tag = data[: constants.ITP_PACKET_SIZE], data[constants.ITP_PACKET_SIZE :]
        expected = hmac.new(self._key, payload, hashlib.sha256).digest()[:TAG_SIZE]
        if not hmac.compare_digest(tag, expected):
            self.stats.bad_tag += 1
            raise AuthenticationError("HMAC verification failed")
        packet = decode_itp(payload)
        if self._last_sequence is not None and packet.sequence <= self._last_sequence:
            self.stats.replayed += 1
            raise AuthenticationError(
                f"stale sequence {packet.sequence} "
                f"(last accepted {self._last_sequence})"
            )
        self._last_sequence = packet.sequence
        self.stats.accepted += 1
        return packet

    def reset(self) -> None:
        """Forget the freshness state (new session)."""
        self._last_sequence = None

"""Master console emulator.

"A master console emulator that mimics the teleoperation console
functionality by generating user input packets based on previously
collected trajectories of surgical movements made by a human operator and
sends them to the RAVEN control software." (paper, Section IV.A)

Every control period the emulator samples the trajectory, forms the
incremental motion since the previous tick, stamps the pedal state from
its :class:`~repro.teleop.pedal.PedalSchedule`, and transmits the encoded
ITP packet onto the UDP channel.  Increments are only transmitted while
the pedal is down (the console is disengaged otherwise), matching the
robot's clutching behaviour.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import constants
from repro.control.trajectory import Trajectory
from repro.teleop.itp import ItpPacket, encode_itp
from repro.teleop.network import UdpChannel
from repro.teleop.pedal import PedalSchedule


class MasterConsoleEmulator:
    """Replays a trajectory as a stream of ITP packets."""

    def __init__(
        self,
        trajectory: Trajectory,
        channel: UdpChannel,
        pedal: Optional[PedalSchedule] = None,
        motion_start: float = 0.0,
    ) -> None:
        """Create the emulator.

        Parameters
        ----------
        trajectory:
            The desired tool-tip path to replay.
        channel:
            Console-to-robot UDP channel.
        pedal:
            Foot-pedal schedule; pedal always down when omitted.
        motion_start:
            Trajectory time origin: motion is held still before this time
            (lets the robot finish homing first).
        """
        self.trajectory = trajectory
        self.channel = channel
        self.pedal = pedal or PedalSchedule.always_down()
        self.motion_start = motion_start
        self._sequence = 0
        self._prev_pos: Optional[np.ndarray] = None

    def tick(self, now: float, dt: float = constants.CONTROL_PERIOD_S) -> ItpPacket:
        """Emit the packet for time ``now`` and send it on the channel."""
        pedal_down = self.pedal.state(now)
        t_traj = max(0.0, now - self.motion_start)
        pos = self.trajectory.position(t_traj, dt)
        if self._prev_pos is None or not pedal_down or t_traj <= 0.0:
            dpos = np.zeros(3)
        else:
            dpos = pos - self._prev_pos
        self._prev_pos = pos

        packet = ItpPacket(
            sequence=self._sequence, pedal_down=pedal_down, dpos=dpos
        )
        self._sequence += 1
        self.channel.send(encode_itp(packet), now)
        return packet

    @property
    def sequence(self) -> int:
        """Next sequence number to be transmitted."""
        return self._sequence

"""Anomaly detection with alarm fusion.

One alarm per variable group (motor velocity, motor acceleration, joint
velocity), each raised when any axis exceeds its learned threshold.  "In
order to reduce false alarms due to model inaccuracies and natural noise in
the trajectory, the detector fuses the alarms ... and raises an alert only
when all three variables indicate an abnormality." (paper, Section IV.C)

The fusion rule is configurable (``ALL`` is the paper's choice; ``ANY`` and
``MAJORITY`` support the fusion ablation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.estimator import StateEstimate
from repro.core.thresholds import VARIABLE_GROUPS, SafetyThresholds
from repro.errors import DetectorError


class FusionRule(enum.Enum):
    """How per-variable alarms combine into a detector alert."""

    ALL = "all"
    MAJORITY = "majority"
    ANY = "any"

    def decide(self, alarms: Dict[str, bool]) -> bool:
        """Apply the rule to the per-group alarm dict."""
        count = sum(alarms.values())
        if self is FusionRule.ALL:
            return count == len(alarms)
        if self is FusionRule.MAJORITY:
            return count * 2 > len(alarms)
        return count > 0


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of evaluating one intercepted command."""

    alert: bool
    alarms: Dict[str, bool]
    margins: Dict[str, float]

    @property
    def alarm_count(self) -> int:
        """How many variable groups alarmed."""
        return sum(self.alarms.values())


class AnomalyDetector:
    """Thresholds + fusion over estimator outputs."""

    def __init__(
        self,
        thresholds: Optional[SafetyThresholds] = None,
        fusion: FusionRule = FusionRule.ALL,
    ) -> None:
        self._thresholds = thresholds
        self.fusion = fusion
        self.evaluations = 0
        self.alerts = 0

    @property
    def thresholds(self) -> SafetyThresholds:
        """The calibrated thresholds.

        Raises
        ------
        DetectorError
            If the detector has not been calibrated.
        """
        if self._thresholds is None:
            raise DetectorError(
                "detector not calibrated: provide SafetyThresholds "
                "(see ThresholdLearner)"
            )
        return self._thresholds

    def calibrate(self, thresholds: SafetyThresholds) -> None:
        """Install (or replace) the thresholds."""
        self._thresholds = thresholds

    def evaluate(self, estimate: StateEstimate) -> DetectionResult:
        """Evaluate one command's estimated instant rates."""
        thresholds = self.thresholds
        alarms: Dict[str, bool] = {}
        margins: Dict[str, float] = {}
        for group in VARIABLE_GROUPS:
            limit = getattr(thresholds, group)
            value = np.abs(getattr(estimate, group))
            ratio = float(np.max(value / limit))
            alarms[group] = ratio > 1.0
            margins[group] = ratio
        alert = self.fusion.decide(alarms)
        self.evaluations += 1
        if alert:
            self.alerts += 1
        return DetectionResult(alert=alert, alarms=alarms, margins=margins)

    def reset_counters(self) -> None:
        """Zero the evaluation/alert counters."""
        self.evaluations = 0
        self.alerts = 0

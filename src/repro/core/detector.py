"""Anomaly detection with alarm fusion.

One alarm per variable group (motor velocity, motor acceleration, joint
velocity), each raised when any axis exceeds its learned threshold.  "In
order to reduce false alarms due to model inaccuracies and natural noise in
the trajectory, the detector fuses the alarms ... and raises an alert only
when all three variables indicate an abnormality." (paper, Section IV.C)

The fusion rule is configurable (``ALL`` is the paper's choice; ``ANY`` and
``MAJORITY`` support the fusion ablation).

For *in-situ* deployment under degraded measurements (encoder glitches,
packet jitter, model drift) the detector additionally supports an optional
M-of-N **decision window**: the fused per-cycle alarm is debounced so that
an alert is raised only when at least M of the last N evaluations alarmed.
The default (no debounce) reproduces the paper's per-cycle behaviour
bit-exactly.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimator import BatchedStateEstimate, StateEstimate
from repro.core.thresholds import VARIABLE_GROUPS, SafetyThresholds
from repro.errors import DetectorError
from repro.obs.metrics import MARGIN_RATIO_BUCKETS
from repro.obs.runtime import get_runtime


class FusionRule(enum.Enum):
    """How per-variable alarms combine into a detector alert."""

    ALL = "all"
    MAJORITY = "majority"
    ANY = "any"

    def decide(self, alarms: Dict[str, bool]) -> bool:
        """Apply the rule to the per-group alarm dict."""
        count = sum(alarms.values())
        if self is FusionRule.ALL:
            return count == len(alarms)
        if self is FusionRule.MAJORITY:
            return count * 2 > len(alarms)
        return count > 0


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of evaluating one intercepted command.

    ``alert`` is the post-debounce decision the guard acts on; ``raw_alert``
    is the undebounced per-cycle fusion outcome (identical to ``alert``
    when no decision window is configured).
    """

    alert: bool
    alarms: Dict[str, bool]
    margins: Dict[str, float]
    raw_alert: Optional[bool] = None

    @property
    def alarm_count(self) -> int:
        """How many variable groups alarmed."""
        return sum(self.alarms.values())


class AlarmDebouncer:
    """M-of-N decision window over the fused per-cycle alarm stream.

    A single glitched measurement or one cycle of model-drift margin
    overshoot should not trip the mitigation chain; requiring M alarming
    cycles out of the last N trades a bounded amount of detection latency
    (at most N control periods) for hysteresis against measurement noise.
    """

    def __init__(self, m: int, n: int) -> None:
        if n < 1:
            raise ValueError("decision window size n must be >= 1")
        if not (1 <= m <= n):
            raise ValueError("decision threshold m must be in [1, n]")
        self.m = m
        self.n = n
        self._window: Deque[bool] = deque(maxlen=n)

    def update(self, raw_alert: bool) -> bool:
        """Push one per-cycle alarm; return the debounced decision."""
        self._window.append(raw_alert)
        return sum(self._window) >= self.m

    def reset(self) -> None:
        """Forget the window (e.g. across runs or E-STOP recovery)."""
        self._window.clear()

    @property
    def window(self) -> Tuple[bool, ...]:
        """The current window contents, oldest first."""
        return tuple(self._window)

    # -- durable state (session checkpoints, see repro.fleet) ----------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the decision-window contents."""
        return {
            "m": self.m,
            "n": self.n,
            "window": [bool(v) for v in self._window],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Load a :meth:`snapshot` payload (exact inverse).

        Raises
        ------
        ValueError
            When the stored window shape differs from this debouncer's
            configuration — a session restores into an identically
            configured pipeline, never a differently shaped one.
        """
        if int(state["m"]) != self.m or int(state["n"]) != self.n:
            raise ValueError(
                f"decision-window mismatch: snapshot ({state['m']}, "
                f"{state['n']}) vs configured ({self.m}, {self.n})"
            )
        self._window = deque((bool(v) for v in state["window"]), maxlen=self.n)


class AnomalyDetector:
    """Thresholds + fusion over estimator outputs."""

    def __init__(
        self,
        thresholds: Optional[SafetyThresholds] = None,
        fusion: FusionRule = FusionRule.ALL,
        decision_window: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Create the detector.

        ``decision_window``: optional ``(m, n)`` M-of-N debounce over the
        fused alarm; ``None`` (the default) keeps the paper's per-cycle
        alerting.
        """
        self._thresholds = thresholds
        self.fusion = fusion
        self.debouncer = (
            None if decision_window is None else AlarmDebouncer(*decision_window)
        )
        self.evaluations = 0
        self.alerts = 0
        # Telemetry (REPRO_OBS): alarm-path counters and a histogram of
        # the per-cycle worst margin ratio.  All None when disabled, so
        # the evaluate() hot path pays a single is-None branch.
        obs = get_runtime()
        if obs.enabled:
            registry = obs.registry
            self._obs_evaluations = registry.counter(
                "repro_detector_evaluations_total",
                "commands evaluated by the anomaly detector",
            )
            self._obs_alerts = registry.counter(
                "repro_detector_alerts_total",
                "post-debounce detector alerts",
            )
            self._obs_margin = registry.histogram(
                "repro_detector_margin_ratio",
                "per-cycle worst margin ratio (value / threshold)",
                buckets=MARGIN_RATIO_BUCKETS,
            )
        else:
            self._obs_evaluations = None
            self._obs_alerts = None
            self._obs_margin = None

    @property
    def thresholds(self) -> SafetyThresholds:
        """The calibrated thresholds.

        Raises
        ------
        DetectorError
            If the detector has not been calibrated.
        """
        if self._thresholds is None:
            raise DetectorError(
                "detector not calibrated: provide SafetyThresholds "
                "(see ThresholdLearner)"
            )
        return self._thresholds

    def calibrate(self, thresholds: SafetyThresholds) -> None:
        """Install (or replace) the thresholds."""
        self._thresholds = thresholds

    def evaluate(self, estimate: StateEstimate) -> DetectionResult:
        """Evaluate one command's estimated instant rates."""
        thresholds = self.thresholds
        alarms: Dict[str, bool] = {}
        margins: Dict[str, float] = {}
        for group in VARIABLE_GROUPS:
            limit = getattr(thresholds, group)
            value = np.abs(getattr(estimate, group))
            ratio = float(np.max(value / limit))
            alarms[group] = ratio > 1.0
            margins[group] = ratio
        raw_alert = self.fusion.decide(alarms)
        alert = (
            raw_alert
            if self.debouncer is None
            else self.debouncer.update(raw_alert)
        )
        self.evaluations += 1
        if alert:
            self.alerts += 1
        if self._obs_evaluations is not None:
            self._obs_evaluations.inc()
            self._obs_margin.observe(max(margins.values()))
            if alert:
                self._obs_alerts.inc()
        return DetectionResult(
            alert=alert, alarms=alarms, margins=margins, raw_alert=raw_alert
        )

    def reset_counters(self) -> None:
        """Zero the evaluation/alert counters and the decision window."""
        self.evaluations = 0
        self.alerts = 0
        if self.debouncer is not None:
            self.debouncer.reset()

    # -- durable state (session checkpoints, see repro.fleet) ----------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe snapshot of counters + decision window.

        Thresholds and the fusion rule are configuration, not state — a
        restored detector is constructed from the same configuration.
        """
        return {
            "evaluations": self.evaluations,
            "alerts": self.alerts,
            "debouncer": (
                None if self.debouncer is None else self.debouncer.snapshot()
            ),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Load a :meth:`snapshot` payload (exact inverse)."""
        window = state.get("debouncer")
        if (window is None) != (self.debouncer is None):
            raise ValueError(
                "decision-window presence mismatch between snapshot and "
                "configured detector"
            )
        self.evaluations = int(state["evaluations"])
        self.alerts = int(state["alerts"])
        if self.debouncer is not None:
            self.debouncer.restore(window)


class BatchedAlarmDebouncer:
    """Per-lane M-of-N decision windows over batched alarm streams.

    One :class:`AlarmDebouncer` per lane, vectorized: a ``(lanes, n)``
    integer ring buffer whose running row sums reproduce each lane's
    ``sum(deque) >= m`` decision exactly (integer arithmetic — no rounding
    concerns).  Each lane's window advances only on its own updates, so
    two lanes alarming in the same cycle debounce independently.
    """

    def __init__(self, m: int, n: int, lanes: int) -> None:
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        if n < 1:
            raise ValueError("decision window size n must be >= 1")
        if not (1 <= m <= n):
            raise ValueError("decision threshold m must be in [1, n]")
        self.m = m
        self.n = n
        self.lanes = lanes
        self._ring = np.zeros((lanes, n), dtype=np.int64)
        self._sums = np.zeros(lanes, dtype=np.int64)
        self._pos = np.zeros(lanes, dtype=np.int64)
        self._filled = np.zeros(lanes, dtype=np.int64)

    def update(
        self, raw_alerts: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Push one per-cycle alarm per masked lane; return decisions.

        Unmasked lanes keep their window untouched and report their
        current decision (``sum >= m`` over the existing window).
        """
        raw = np.asarray(raw_alerts, dtype=np.int64)
        if mask is None:
            mask = np.ones(self.lanes, dtype=bool)
        else:
            mask = np.asarray(mask, dtype=bool)
        idx = np.nonzero(mask)[0]
        pos = self._pos[idx]
        evicted = self._ring[idx, pos]
        self._ring[idx, pos] = raw[idx]
        self._sums[idx] += raw[idx] - evicted
        self._pos[idx] = (pos + 1) % self.n
        self._filled[idx] = np.minimum(self._filled[idx] + 1, self.n)
        return self._sums >= self.m

    def reset(self) -> None:
        """Forget every lane's window."""
        self._ring[:] = 0
        self._sums[:] = 0
        self._pos[:] = 0
        self._filled[:] = 0

    def lane_window(self, lane: int) -> Tuple[bool, ...]:
        """One lane's window contents, oldest first (like ``window``)."""
        count = int(self._filled[lane])
        pos = int(self._pos[lane])
        if count < self.n:
            ordered = self._ring[lane, :count]
        else:
            ordered = np.concatenate([self._ring[lane, pos:], self._ring[lane, :pos]])
        return tuple(bool(v) for v in ordered)

    # -- durable state (session checkpoints, see repro.fleet) ----------------------

    def lane_state(self, lane: int) -> Dict[str, Any]:
        """One lane's window as a scalar :meth:`AlarmDebouncer.snapshot`.

        The payload round-trips with the scalar class in both
        directions: a lane extracted here restores into a scalar
        debouncer and vice versa.
        """
        return {
            "m": self.m,
            "n": self.n,
            "window": [bool(v) for v in self.lane_window(lane)],
        }

    def load_lane_state(self, lane: int, state: Dict[str, Any]) -> None:
        """Load one lane from a scalar snapshot payload (exact inverse).

        Raises
        ------
        ValueError
            When the stored window shape differs from this debouncer's
            configuration, mirroring :meth:`AlarmDebouncer.restore`.
        """
        if int(state["m"]) != self.m or int(state["n"]) != self.n:
            raise ValueError(
                f"decision-window mismatch: snapshot ({state['m']}, "
                f"{state['n']}) vs configured ({self.m}, {self.n})"
            )
        window = [int(bool(v)) for v in state["window"]][-self.n :]
        count = len(window)
        # Lay the window down oldest-first from slot 0; the next write
        # position and fill count then reproduce deque(maxlen=n)
        # append/evict behaviour exactly (see lane_window()).
        self._ring[lane, :] = 0
        self._ring[lane, :count] = window
        self._sums[lane] = sum(window)
        self._pos[lane] = count % self.n
        self._filled[lane] = count

    def remove_lanes(self, lanes: Sequence[int]) -> List[int]:
        """Eject ``lanes``; surviving rows keep their ring slots verbatim.

        Rows (not columns) are deleted, so a surviving lane's ring
        contents, write position and fill count — and therefore its next
        M-of-N decisions — are unchanged.  Returns the old indices of the
        surviving lanes, in order.
        """
        keep = np.ones(self.lanes, dtype=bool)
        keep[list(lanes)] = False
        if not keep.any():
            raise ValueError("cannot remove every lane; drop the batch instead")
        survivors = [i for i in range(self.lanes) if keep[i]]
        self._ring = self._ring[keep].copy()
        self._sums = self._sums[keep].copy()
        self._pos = self._pos[keep].copy()
        self._filled = self._filled[keep].copy()
        self.lanes = len(survivors)
        return survivors


class BatchedDetectionResult:
    """Per-lane detection outcomes for one batched evaluation."""

    __slots__ = ("alert", "alarms", "margins", "raw_alert")

    def __init__(
        self,
        alert: np.ndarray,
        alarms: Dict[str, np.ndarray],
        margins: Dict[str, np.ndarray],
        raw_alert: np.ndarray,
    ) -> None:
        self.alert = alert
        self.alarms = alarms
        self.margins = margins
        self.raw_alert = raw_alert

    @property
    def alarm_count(self) -> np.ndarray:
        """Per-lane count of alarming variable groups."""
        counts = np.zeros(self.alert.shape[0], dtype=np.int64)
        for flags in self.alarms.values():
            counts += flags
        return counts

    def lane(self, lane: int) -> DetectionResult:
        """Scalar :class:`DetectionResult` for one lane."""
        return DetectionResult(
            alert=bool(self.alert[lane]),
            alarms={g: bool(v[lane]) for g, v in self.alarms.items()},
            margins={g: float(v[lane]) for g, v in self.margins.items()},
            raw_alert=bool(self.raw_alert[lane]),
        )


class BatchedAnomalyDetector:
    """N detector lanes evaluated in one vectorized pass.

    Thresholds may differ per lane; the fusion rule and decision window
    shape are shared.  Evaluation and alert counters are **per lane** —
    two lanes alarming in the same batched cycle each count their own
    alert (see ``tests/test_batch_equivalence.py``).
    """

    def __init__(
        self,
        thresholds: Sequence[SafetyThresholds],
        fusion: FusionRule = FusionRule.ALL,
        decision_window: Optional[Tuple[int, int]] = None,
    ) -> None:
        if not thresholds:
            raise DetectorError("at least one lane of thresholds is required")
        self.num_lanes = len(thresholds)
        self.lane_thresholds = tuple(thresholds)
        self._limits = {
            group: np.stack(
                [np.asarray(getattr(t, group), dtype=float) for t in thresholds]
            )
            for group in VARIABLE_GROUPS
        }
        self.fusion = fusion
        self.debouncer = (
            None
            if decision_window is None
            else BatchedAlarmDebouncer(*decision_window, lanes=self.num_lanes)
        )
        self.evaluations = np.zeros(self.num_lanes, dtype=np.int64)
        self.alerts = np.zeros(self.num_lanes, dtype=np.int64)

    @classmethod
    def from_detectors(
        cls, detectors: Sequence["AnomalyDetector"]
    ) -> "BatchedAnomalyDetector":
        """Build from per-lane scalar detectors (shared fusion/window)."""
        from repro.dynamics.batch import require_homogeneous

        require_homogeneous([d.fusion for d in detectors], "fusion rule")
        windows = [
            None if d.debouncer is None else (d.debouncer.m, d.debouncer.n)
            for d in detectors
        ]
        require_homogeneous(windows, "decision window")
        return cls(
            [d.thresholds for d in detectors],
            fusion=detectors[0].fusion,
            decision_window=windows[0],
        )

    def evaluate(
        self,
        estimate: "BatchedStateEstimate",
        mask: Optional[np.ndarray] = None,
    ) -> BatchedDetectionResult:
        """Evaluate every masked lane's estimated instant rates at once."""
        if mask is None:
            mask = np.ones(self.num_lanes, dtype=bool)
        else:
            mask = np.asarray(mask, dtype=bool)
        alarms: Dict[str, np.ndarray] = {}
        margins: Dict[str, np.ndarray] = {}
        counts = np.zeros(self.num_lanes, dtype=np.int64)
        for group in VARIABLE_GROUPS:
            value = np.abs(getattr(estimate, group))
            ratio = np.max(value / self._limits[group], axis=1)
            flags = ratio > 1.0
            alarms[group] = flags
            margins[group] = ratio
            counts += flags
        total = len(VARIABLE_GROUPS)
        if self.fusion is FusionRule.ALL:
            raw_alert = counts == total
        elif self.fusion is FusionRule.MAJORITY:
            raw_alert = counts * 2 > total
        else:
            raw_alert = counts > 0
        if self.debouncer is None:
            alert = raw_alert.copy()
        else:
            alert = self.debouncer.update(raw_alert, mask)
        self.evaluations[mask] += 1
        self.alerts[mask & alert] += 1
        return BatchedDetectionResult(
            alert=alert, alarms=alarms, margins=margins, raw_alert=raw_alert
        )

    def reset_counters(self) -> None:
        """Zero every lane's counters and decision window."""
        self.evaluations[:] = 0
        self.alerts[:] = 0
        if self.debouncer is not None:
            self.debouncer.reset()

    # -- durable state (session checkpoints, see repro.fleet) ----------------------

    def lane_state(self, lane: int) -> Dict[str, Any]:
        """One lane's counters + window as a scalar
        :meth:`AnomalyDetector.snapshot` payload."""
        return {
            "evaluations": int(self.evaluations[lane]),
            "alerts": int(self.alerts[lane]),
            "debouncer": (
                None
                if self.debouncer is None
                else self.debouncer.lane_state(lane)
            ),
        }

    def load_lane_state(self, lane: int, state: Dict[str, Any]) -> None:
        """Load one lane from a scalar snapshot payload (exact inverse).

        Raises
        ------
        ValueError
            On decision-window presence mismatch, mirroring
            :meth:`AnomalyDetector.restore`.
        """
        window = state.get("debouncer")
        if (window is None) != (self.debouncer is None):
            raise ValueError(
                "decision-window presence mismatch between snapshot and "
                "configured detector"
            )
        self.evaluations[lane] = int(state["evaluations"])
        self.alerts[lane] = int(state["alerts"])
        if self.debouncer is not None:
            self.debouncer.load_lane_state(lane, window)

    def remove_lanes(self, lanes: Sequence[int]) -> List[int]:
        """Eject ``lanes`` without disturbing the surviving lanes.

        Per-lane threshold rows, evaluation/alert counters and debouncer
        ring slots are deleted row-wise, so every surviving lane's
        counters and window state — and its subsequent decisions — are
        exactly what they would have been had the ejected lane never been
        batched (``tests/test_batch_equivalence.py`` pins this).  Returns
        the old indices of the surviving lanes, in order.
        """
        keep = np.ones(self.num_lanes, dtype=bool)
        keep[list(lanes)] = False
        if not keep.any():
            raise ValueError("cannot remove every lane; drop the batch instead")
        survivors = [i for i in range(self.num_lanes) if keep[i]]
        self.lane_thresholds = tuple(self.lane_thresholds[i] for i in survivors)
        self._limits = {
            group: rows[keep].copy() for group, rows in self._limits.items()
        }
        self.evaluations = self.evaluations[keep].copy()
        self.alerts = self.alerts[keep].copy()
        if self.debouncer is not None:
            self.debouncer.remove_lanes(lanes)
        self.num_lanes = len(survivors)
        return survivors

"""Next-state estimation from intercepted DAC commands.

The estimator is the glue between the measurement stream (encoder counts,
available wherever the detector is inserted) and the dynamic model.  Each
control cycle it:

1. updates its joint-state estimate from the measured motor positions
   (positions come from the encoders; velocities from a low-pass-filtered
   finite difference of those measurements);
2. runs the dynamic model one step ahead under the intercepted DAC
   command;
3. reports the *instant* rates the paper thresholds on — the differences
   between estimated next values and current values per control period:
   motor velocity, motor acceleration and joint velocity.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import constants
from repro.core.dynamic_model import RavenDynamicModel


class StateEstimate:
    """Instant rates estimated for one intercepted command."""

    __slots__ = (
        "motor_velocity",
        "motor_acceleration",
        "joint_velocity",
        "jpos_next",
        "jvel_next",
        "elapsed_s",
    )

    def __init__(
        self,
        motor_velocity: np.ndarray,
        motor_acceleration: np.ndarray,
        joint_velocity: np.ndarray,
        jpos_next: np.ndarray,
        jvel_next: np.ndarray,
        elapsed_s: float,
    ) -> None:
        self.motor_velocity = motor_velocity
        self.motor_acceleration = motor_acceleration
        self.joint_velocity = joint_velocity
        self.jpos_next = jpos_next
        self.jvel_next = jvel_next
        self.elapsed_s = elapsed_s


class NextStateEstimator:
    """Maintains the model state and produces per-command estimates."""

    def __init__(
        self,
        model: Optional[RavenDynamicModel] = None,
        dt: float = constants.CONTROL_PERIOD_S,
        velocity_filter_alpha: float = 0.5,
    ) -> None:
        """Create the estimator.

        Parameters
        ----------
        model:
            The dynamic model; a nominal-parameter model when omitted.
        dt:
            Control period.
        velocity_filter_alpha:
            Exponential smoothing factor of the measured-velocity filter
            (1.0 = raw finite differences; smaller = smoother).
        """
        self.model = model or RavenDynamicModel()
        self.dt = dt
        if not (0.0 < velocity_filter_alpha <= 1.0):
            raise ValueError("velocity_filter_alpha must be in (0, 1]")
        self.alpha = velocity_filter_alpha
        self._jpos: Optional[np.ndarray] = None
        self._jvel = np.zeros(3)
        self._predicted_jpos: Optional[np.ndarray] = None
        self._predicted_jvel: Optional[np.ndarray] = None
        #: How many consecutive cycles the state was propagated from the
        #: model prediction alone (no trusted measurement).
        self.coast_streak = 0

    @property
    def synced(self) -> bool:
        """Whether at least one measurement has been ingested."""
        return self._jpos is not None

    @property
    def jpos(self) -> Optional[np.ndarray]:
        """Current joint-position estimate (None before first sync)."""
        return None if self._jpos is None else self._jpos.copy()

    @property
    def jvel(self) -> np.ndarray:
        """Current joint-velocity estimate."""
        return self._jvel.copy()

    def reset(self) -> None:
        """Forget all state (e.g. across E-STOP)."""
        self._jpos = None
        self._jvel = np.zeros(3)
        self._predicted_jpos = None
        self._predicted_jvel = None
        self.coast_streak = 0

    def sync(self, mpos_measured: Sequence[float]) -> None:
        """Ingest one encoder measurement (motor shaft positions, rad).

        The velocity estimate is a predictor-corrector (complementary
        filter): the dynamic model's velocity prediction from the previous
        cycle's command is corrected by the finite-differenced
        measurements.  Running the model in parallel this way makes the
        velocity estimate respond to commanded torques roughly one cycle
        *ahead* of what encoder differences alone would show — that lead
        is what lets the detector act before the physical jump completes.
        """
        jpos = self.model.transmission.joint_positions(
            np.asarray(mpos_measured, dtype=float)
        )
        if self._jpos is None:
            self._jvel = np.zeros(3)
        else:
            raw_vel = (jpos - self._jpos) / self.dt
            measured = self.alpha * raw_vel + (1.0 - self.alpha) * self._jvel
            if self._predicted_jvel is not None:
                self._jvel = 0.5 * self._predicted_jvel + 0.5 * measured
            else:
                self._jvel = measured
        self._jpos = jpos
        self._predicted_jpos = None
        self._predicted_jvel = None
        self.coast_streak = 0

    def coast(self) -> None:
        """Advance one cycle with **no trusted measurement** (degraded mode).

        The state rolls forward on the dynamic model's own prediction from
        the previous cycle's command — the measurement-free analogue of
        :meth:`sync`.  Before the first prediction (or before the first
        measurement) this is a zero-order hold.  Coasting accumulates model
        error without bound, so callers must cap consecutive coasts (see
        :class:`repro.core.pipeline.GuardSupervisor`).
        """
        if self._jpos is None:
            return  # never synced: nothing to propagate
        if self._predicted_jpos is not None:
            self._jpos = self._predicted_jpos
            self._jvel = self._predicted_jvel
        self._predicted_jpos = None
        self._predicted_jvel = None
        self.coast_streak += 1

    def estimate(self, dac_values: Sequence[float]) -> StateEstimate:
        """Estimate the instant rates produced by executing ``dac_values``.

        Raises
        ------
        RuntimeError
            If called before any measurement has been ingested.
        """
        if self._jpos is None:
            raise RuntimeError("estimator not synced: call sync() first")
        prediction = self.model.predict(self._jpos, self._jvel, dac_values)
        self._predicted_jpos = prediction.jpos
        self._predicted_jvel = prediction.jvel
        mvel_now = self.model.transmission.motor_velocities(self._jvel)
        # "Estimated instant" rates: the velocities the model predicts for
        # the next step, and the per-step velocity change (acceleration).
        # Using the predicted *next* velocities — not the position deltas —
        # makes a torque spike visible on the very first corrupted packet.
        return StateEstimate(
            motor_velocity=prediction.mvel,
            motor_acceleration=(prediction.mvel - mvel_now) / self.dt,
            joint_velocity=prediction.jvel,
            jpos_next=prediction.jpos,
            jvel_next=prediction.jvel,
            elapsed_s=prediction.elapsed_s,
        )

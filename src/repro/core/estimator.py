"""Next-state estimation from intercepted DAC commands.

The estimator is the glue between the measurement stream (encoder counts,
available wherever the detector is inserted) and the dynamic model.  Each
control cycle it:

1. updates its joint-state estimate from the measured motor positions
   (positions come from the encoders; velocities from a low-pass-filtered
   finite difference of those measurements);
2. runs the dynamic model one step ahead under the intercepted DAC
   command;
3. reports the *instant* rates the paper thresholds on — the differences
   between estimated next values and current values per control period:
   motor velocity, motor acceleration and joint velocity.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro import constants
from repro.core.dynamic_model import (
    BatchedDynamicModel,
    BatchedModelPrediction,
    RavenDynamicModel,
)


def hex_vector(values: Optional[np.ndarray]) -> Optional[List[str]]:
    """Bit-exact, JSON-safe encoding of a float vector (``None`` passes).

    ``float.hex()`` round-trips every finite float64 exactly, so snapshot
    payloads built from these survive JSON serialization without the
    last-bit drift that ``str(float)`` could reintroduce on exotic
    platforms.  The session-checkpoint layer (:mod:`repro.fleet`) builds
    on this for its bit-identical-resume guarantee.
    """
    if values is None:
        return None
    return [float(v).hex() for v in np.asarray(values, dtype=float)]


def unhex_vector(values: Optional[Sequence[str]]) -> Optional[np.ndarray]:
    """Exact inverse of :func:`hex_vector`."""
    if values is None:
        return None
    return np.array([float.fromhex(v) for v in values], dtype=float)


class StateEstimate:
    """Instant rates estimated for one intercepted command."""

    __slots__ = (
        "motor_velocity",
        "motor_acceleration",
        "joint_velocity",
        "jpos_next",
        "jvel_next",
        "elapsed_s",
    )

    def __init__(
        self,
        motor_velocity: np.ndarray,
        motor_acceleration: np.ndarray,
        joint_velocity: np.ndarray,
        jpos_next: np.ndarray,
        jvel_next: np.ndarray,
        elapsed_s: float,
    ) -> None:
        self.motor_velocity = motor_velocity
        self.motor_acceleration = motor_acceleration
        self.joint_velocity = joint_velocity
        self.jpos_next = jpos_next
        self.jvel_next = jvel_next
        self.elapsed_s = elapsed_s


class NextStateEstimator:
    """Maintains the model state and produces per-command estimates."""

    def __init__(
        self,
        model: Optional[RavenDynamicModel] = None,
        dt: float = constants.CONTROL_PERIOD_S,
        velocity_filter_alpha: float = 0.5,
    ) -> None:
        """Create the estimator.

        Parameters
        ----------
        model:
            The dynamic model; a nominal-parameter model when omitted.
        dt:
            Control period.
        velocity_filter_alpha:
            Exponential smoothing factor of the measured-velocity filter
            (1.0 = raw finite differences; smaller = smoother).
        """
        self.model = model or RavenDynamicModel()
        self.dt = dt
        if not (0.0 < velocity_filter_alpha <= 1.0):
            raise ValueError("velocity_filter_alpha must be in (0, 1]")
        self.alpha = velocity_filter_alpha
        self._jpos: Optional[np.ndarray] = None
        self._jvel = np.zeros(3)
        self._predicted_jpos: Optional[np.ndarray] = None
        self._predicted_jvel: Optional[np.ndarray] = None
        #: How many consecutive cycles the state was propagated from the
        #: model prediction alone (no trusted measurement).
        self.coast_streak = 0

    @property
    def synced(self) -> bool:
        """Whether at least one measurement has been ingested."""
        return self._jpos is not None

    @property
    def jpos(self) -> Optional[np.ndarray]:
        """Current joint-position estimate (None before first sync)."""
        return None if self._jpos is None else self._jpos.copy()

    @property
    def jvel(self) -> np.ndarray:
        """Current joint-velocity estimate."""
        return self._jvel.copy()

    def reset(self) -> None:
        """Forget all state (e.g. across E-STOP)."""
        self._jpos = None
        self._jvel = np.zeros(3)
        self._predicted_jpos = None
        self._predicted_jvel = None
        self.coast_streak = 0

    def sync(self, mpos_measured: Sequence[float]) -> None:
        """Ingest one encoder measurement (motor shaft positions, rad).

        The velocity estimate is a predictor-corrector (complementary
        filter): the dynamic model's velocity prediction from the previous
        cycle's command is corrected by the finite-differenced
        measurements.  Running the model in parallel this way makes the
        velocity estimate respond to commanded torques roughly one cycle
        *ahead* of what encoder differences alone would show — that lead
        is what lets the detector act before the physical jump completes.
        """
        jpos = self.model.transmission.joint_positions(
            np.asarray(mpos_measured, dtype=float)
        )
        if self._jpos is None:
            self._jvel = np.zeros(3)
        else:
            raw_vel = (jpos - self._jpos) / self.dt
            measured = self.alpha * raw_vel + (1.0 - self.alpha) * self._jvel
            if self._predicted_jvel is not None:
                self._jvel = 0.5 * self._predicted_jvel + 0.5 * measured
            else:
                self._jvel = measured
        self._jpos = jpos
        self._predicted_jpos = None
        self._predicted_jvel = None
        self.coast_streak = 0

    def coast(self) -> None:
        """Advance one cycle with **no trusted measurement** (degraded mode).

        The state rolls forward on the dynamic model's own prediction from
        the previous cycle's command — the measurement-free analogue of
        :meth:`sync`.  Before the first prediction (or before the first
        measurement) this is a zero-order hold.  Coasting accumulates model
        error without bound, so callers must cap consecutive coasts (see
        :class:`repro.core.pipeline.GuardSupervisor`).
        """
        if self._jpos is None:
            return  # never synced: nothing to propagate
        if self._predicted_jpos is not None:
            self._jpos = self._predicted_jpos
            self._jvel = self._predicted_jvel
        self._predicted_jpos = None
        self._predicted_jvel = None
        self.coast_streak += 1

    # -- durable state (session checkpoints, see repro.fleet) ----------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the mutable estimator state.

        Covers exactly what :meth:`restore` needs to resume
        bit-identically: the joint state, any stored one-step prediction,
        and the coast streak.  Model *parameters* are configuration, not
        state — a restored estimator must be constructed from the same
        configuration.  Floats are hex-encoded (:func:`hex_vector`) so
        the bytes survive JSON round-trips exactly.
        """
        return {
            "jpos": hex_vector(self._jpos),
            "jvel": hex_vector(self._jvel),
            "predicted_jpos": hex_vector(self._predicted_jpos),
            "predicted_jvel": hex_vector(self._predicted_jvel),
            "coast_streak": self.coast_streak,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Load a :meth:`snapshot` payload (exact inverse)."""
        self._jpos = unhex_vector(state["jpos"])
        jvel = unhex_vector(state["jvel"])
        self._jvel = np.zeros(3) if jvel is None else jvel
        self._predicted_jpos = unhex_vector(state["predicted_jpos"])
        self._predicted_jvel = unhex_vector(state["predicted_jvel"])
        self.coast_streak = int(state["coast_streak"])

    def estimate(self, dac_values: Sequence[float]) -> StateEstimate:
        """Estimate the instant rates produced by executing ``dac_values``.

        Raises
        ------
        RuntimeError
            If called before any measurement has been ingested.
        """
        if self._jpos is None:
            raise RuntimeError("estimator not synced: call sync() first")
        prediction = self.model.predict(self._jpos, self._jvel, dac_values)
        self._predicted_jpos = prediction.jpos
        self._predicted_jvel = prediction.jvel
        mvel_now = self.model.transmission.motor_velocities(self._jvel)
        # "Estimated instant" rates: the velocities the model predicts for
        # the next step, and the per-step velocity change (acceleration).
        # Using the predicted *next* velocities — not the position deltas —
        # makes a torque spike visible on the very first corrupted packet.
        return StateEstimate(
            motor_velocity=prediction.mvel,
            motor_acceleration=(prediction.mvel - mvel_now) / self.dt,
            joint_velocity=prediction.jvel,
            jpos_next=prediction.jpos,
            jvel_next=prediction.jvel,
            elapsed_s=prediction.elapsed_s,
        )


class BatchedStateEstimate:
    """Per-lane instant rates for one batched cycle (``(N, 3)`` arrays).

    Only rows whose lane was selected in the ``estimate`` mask are
    meaningful; :meth:`lane` extracts a scalar-shaped view for the
    per-lane detector.
    """

    __slots__ = (
        "motor_velocity",
        "motor_acceleration",
        "joint_velocity",
        "jpos_next",
        "jvel_next",
        "elapsed_s",
    )

    def __init__(
        self,
        motor_velocity: np.ndarray,
        motor_acceleration: np.ndarray,
        joint_velocity: np.ndarray,
        jpos_next: np.ndarray,
        jvel_next: np.ndarray,
        elapsed_s: float,
    ) -> None:
        self.motor_velocity = motor_velocity
        self.motor_acceleration = motor_acceleration
        self.joint_velocity = joint_velocity
        self.jpos_next = jpos_next
        self.jvel_next = jvel_next
        self.elapsed_s = elapsed_s

    def lane(self, lane: int) -> StateEstimate:
        """Scalar :class:`StateEstimate` for one lane (row copies)."""
        return StateEstimate(
            motor_velocity=self.motor_velocity[lane].copy(),
            motor_acceleration=self.motor_acceleration[lane].copy(),
            joint_velocity=self.joint_velocity[lane].copy(),
            jpos_next=self.jpos_next[lane].copy(),
            jvel_next=self.jvel_next[lane].copy(),
            elapsed_s=self.elapsed_s,
        )


class BatchedNextStateEstimator:
    """N estimator lanes advanced by masked batch operations.

    Mirrors :class:`NextStateEstimator` per lane, bit for bit: sync and
    coast updates are computed for every lane and applied through
    ``np.where`` selection, so a lane's state bytes after any sequence of
    masked operations equal a scalar estimator fed the same sequence.
    Lanes that were never synced hold zeros internally; their garbage
    intermediate values are computed and discarded, exactly like the dead
    branches of the scalar code path.
    """

    def __init__(
        self,
        models: Sequence[RavenDynamicModel],
        dt: float = constants.CONTROL_PERIOD_S,
        velocity_filter_alpha: float = 0.5,
    ) -> None:
        if not (0.0 < velocity_filter_alpha <= 1.0):
            raise ValueError("velocity_filter_alpha must be in (0, 1]")
        self.model = BatchedDynamicModel(models)
        self.num_lanes = self.model.num_lanes
        self.dt = dt
        self.alpha = velocity_filter_alpha
        n = self.num_lanes
        self._g = self.model.transmission.joint_to_motor
        # The transmission's own precomputed inverse — same bytes the
        # scalar estimator multiplies by in joint_positions().
        self._g_inv = self.model.transmission._g_inv
        self._jpos = np.zeros((n, 3))
        self._jvel = np.zeros((n, 3))
        self._synced = np.zeros(n, dtype=bool)
        self._predicted_jpos = np.zeros((n, 3))
        self._predicted_jvel = np.zeros((n, 3))
        self._has_prediction = np.zeros(n, dtype=bool)
        self.coast_streak = np.zeros(n, dtype=int)

    @classmethod
    def from_estimators(
        cls, estimators: Sequence[NextStateEstimator]
    ) -> "BatchedNextStateEstimator":
        """Build from per-lane scalar estimators (must be pristine)."""
        from repro.dynamics.batch import require_homogeneous

        require_homogeneous([e.dt for e in estimators], "estimator dt")
        require_homogeneous([e.alpha for e in estimators], "velocity_filter_alpha")
        for est in estimators:
            if est.synced:
                raise ValueError("lane estimators must not have ingested state yet")
        return cls(
            [e.model for e in estimators],
            dt=estimators[0].dt,
            velocity_filter_alpha=estimators[0].alpha,
        )

    @property
    def synced(self) -> np.ndarray:
        """Per-lane synced flags (copy)."""
        return self._synced.copy()

    def lane_jpos(self, lane: int) -> Optional[np.ndarray]:
        """Lane joint-position estimate (None before first sync)."""
        if not self._synced[lane]:
            return None
        return self._jpos[lane].copy()

    def lane_jvel(self, lane: int) -> np.ndarray:
        """Lane joint-velocity estimate."""
        return self._jvel[lane].copy()

    def reset(self) -> None:
        """Forget every lane's state (e.g. across E-STOP).

        Mirrors :meth:`NextStateEstimator.reset` per lane: unsynced
        lanes hold zeros internally, so zeroing everything and clearing
        the flags is byte-identical to N scalar resets.
        """
        self._jpos[:] = 0.0
        self._jvel[:] = 0.0
        self._synced[:] = False
        self._predicted_jpos[:] = 0.0
        self._predicted_jvel[:] = 0.0
        self._has_prediction[:] = False
        self.coast_streak[:] = 0

    # -- per-lane durable state (session checkpoints, see repro.fleet) -------------

    def lane_state(self, lane: int) -> Dict[str, Any]:
        """One lane's state in :meth:`NextStateEstimator.snapshot` form.

        The payload restores bit-identically into a scalar estimator (or
        back into a lane via :meth:`load_lane_state`): unsynced lanes map
        to ``jpos=None`` exactly like a scalar estimator before its first
        measurement, and prediction rows are only emitted while the lane
        actually holds one.
        """
        synced = bool(self._synced[lane])
        has_prediction = bool(self._has_prediction[lane])
        return {
            "jpos": hex_vector(self._jpos[lane]) if synced else None,
            "jvel": hex_vector(self._jvel[lane]),
            "predicted_jpos": (
                hex_vector(self._predicted_jpos[lane]) if has_prediction else None
            ),
            "predicted_jvel": (
                hex_vector(self._predicted_jvel[lane]) if has_prediction else None
            ),
            "coast_streak": int(self.coast_streak[lane]),
        }

    def load_lane_state(self, lane: int, state: Dict[str, Any]) -> None:
        """Install a scalar snapshot into one lane (inverse of
        :meth:`lane_state`).

        This is how a resumed session re-enters a batched pack: the pack
        is constructed pristine from the session's configured models,
        then each lane is loaded from its checkpoint.
        """
        jpos = unhex_vector(state["jpos"])
        self._synced[lane] = jpos is not None
        self._jpos[lane] = 0.0 if jpos is None else jpos
        jvel = unhex_vector(state["jvel"])
        self._jvel[lane] = 0.0 if jvel is None else jvel
        predicted = unhex_vector(state["predicted_jpos"])
        self._has_prediction[lane] = predicted is not None
        if predicted is None:
            self._predicted_jpos[lane] = 0.0
            self._predicted_jvel[lane] = 0.0
        else:
            self._predicted_jpos[lane] = predicted
            self._predicted_jvel[lane] = unhex_vector(state["predicted_jvel"])
        self.coast_streak[lane] = int(state["coast_streak"])

    def remove_lanes(self, lanes: Sequence[int]) -> List[int]:
        """Eject ``lanes``; surviving rows keep their exact state bytes.

        Returns the *old* indices of the surviving lanes, in order — the
        caller's old-to-new index map (survivor ``old`` becomes new lane
        ``survivors.index(old)``).  Quarantining a session out of a fleet
        pack must not disturb anyone else's estimator state; the batch
        layer's row-wise operations make the surviving rows byte-identical
        whether the ejected lane was ever present.

        Raises
        ------
        ValueError
            When asked to remove every lane — drop the whole pack instead.
        """
        keep = np.ones(self.num_lanes, dtype=bool)
        keep[list(lanes)] = False
        if not keep.any():
            raise ValueError("cannot remove every lane; drop the pack instead")
        survivors = [i for i in range(self.num_lanes) if keep[i]]
        self.model = BatchedDynamicModel([self.model.models[i] for i in survivors])
        self.num_lanes = len(survivors)
        self._jpos = self._jpos[keep].copy()
        self._jvel = self._jvel[keep].copy()
        self._synced = self._synced[keep].copy()
        self._predicted_jpos = self._predicted_jpos[keep].copy()
        self._predicted_jvel = self._predicted_jvel[keep].copy()
        self._has_prediction = self._has_prediction[keep].copy()
        self.coast_streak = self.coast_streak[keep].copy()
        return survivors

    def _full_mask(self, mask: Optional[np.ndarray]) -> np.ndarray:
        if mask is None:
            return np.ones(self.num_lanes, dtype=bool)
        return np.asarray(mask, dtype=bool)

    def sync(self, mpos_measured: np.ndarray, mask: Optional[np.ndarray] = None) -> None:
        """Ingest measurements for the masked lanes (rows of ``(N, 3)``).

        Unmasked rows of ``mpos_measured`` are ignored (they may hold
        stale values, but must be finite).
        """
        from repro.dynamics.batch import batched_matvec

        mask = self._full_mask(mask)
        mpos = np.asarray(mpos_measured, dtype=float)
        jpos = batched_matvec(self._g_inv, mpos)
        raw_vel = (jpos - self._jpos) / self.dt
        measured = self.alpha * raw_vel + (1.0 - self.alpha) * self._jvel
        corrected = np.where(
            self._has_prediction[:, None],
            0.5 * self._predicted_jvel + 0.5 * measured,
            measured,
        )
        # First sync of a lane resets its velocity, matching the scalar
        # `if self._jpos is None` branch.
        new_jvel = np.where(self._synced[:, None], corrected, 0.0)
        lane_rows = mask[:, None]
        self._jvel = np.where(lane_rows, new_jvel, self._jvel)
        self._jpos = np.where(lane_rows, jpos, self._jpos)
        self._has_prediction &= ~mask
        self.coast_streak[mask] = 0
        self._synced |= mask

    def coast(self, mask: Optional[np.ndarray] = None) -> None:
        """Advance the masked lanes one cycle without a measurement."""
        mask = self._full_mask(mask)
        # Never-synced lanes are a no-op, matching the scalar early return.
        affected = mask & self._synced
        roll = affected & self._has_prediction
        roll_rows = roll[:, None]
        self._jpos = np.where(roll_rows, self._predicted_jpos, self._jpos)
        self._jvel = np.where(roll_rows, self._predicted_jvel, self._jvel)
        self._has_prediction &= ~affected
        self.coast_streak[affected] += 1

    def estimate(
        self, dac_values: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> BatchedStateEstimate:
        """Estimate instant rates for the masked lanes under their DACs.

        The model runs over every lane (unsynced lanes propagate their
        zero placeholder state, whose results are discarded); predictions
        are stored only for masked lanes so coasting lanes keep theirs.
        """
        from repro.dynamics.batch import batched_matvec

        mask = self._full_mask(mask)
        if np.any(mask & ~self._synced):
            raise RuntimeError("estimator lane not synced: sync() it first")
        prediction = self.model.predict(self._jpos, self._jvel, dac_values)
        lane_rows = mask[:, None]
        self._predicted_jpos = np.where(lane_rows, prediction.jpos, self._predicted_jpos)
        self._predicted_jvel = np.where(lane_rows, prediction.jvel, self._predicted_jvel)
        self._has_prediction |= mask
        mvel_now = batched_matvec(self._g, self._jvel)
        return BatchedStateEstimate(
            motor_velocity=prediction.mvel,
            motor_acceleration=(prediction.mvel - mvel_now) / self.dt,
            joint_velocity=prediction.jvel,
            jpos_next=prediction.jpos,
            jvel_next=prediction.jvel,
            elapsed_s=prediction.elapsed_s,
        )

"""The RAVEN built-in safety mechanisms viewed as a detector.

Table IV and Figure 9 of the paper compare the dynamic-model detector
against "the existing detection and emergency stop (E-STOP) mechanisms in
the RAVEN II robot": the fixed-threshold DAC checks in software plus the
PLC watchdog.  This module extracts, from a finished run, whether those
mechanisms "detected" the attack — i.e. whether they tripped for a reason
attributable to the commands rather than to normal operator actions.

The paper's key observation is structural and reproduced by construction
here: the RAVEN checks run *before* the ``write`` system call and compare
DAC values against fixed thresholds, so (i) scenario-B modifications are
invisible to them until the PID reacts to the already-corrupted physical
state, and (ii) commands under the threshold pass even when their physical
consequence is an abrupt jump.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.trace import RunTrace

#: PLC / state-machine E-STOP reasons that count as a *detection* by the
#: robot's own mechanisms (as opposed to e.g. a scripted pedal release).
_DETECTION_REASON_FRAGMENTS = (
    "DAC channel",
    "outside workspace",
    "watchdog signal lost",
    "IK failure",
)


class RavenBaselineDetector:
    """Post-hoc extraction of the RAVEN safety mechanisms' verdict."""

    def detected(self, trace: "RunTrace") -> bool:
        """Whether the robot's own mechanisms tripped during the run."""
        for reason in trace.estop_reasons:
            if reason and any(f in reason for f in _DETECTION_REASON_FRAGMENTS):
                return True
        return bool(trace.safety_trip_cycles)

    def first_detection_cycle(self, trace: "RunTrace") -> int:
        """Cycle of the first safety trip; -1 when none occurred."""
        if trace.safety_trip_cycles:
            return trace.safety_trip_cycles[0]
        return -1

"""Binary-classification metrics used in Table IV of the paper.

Accuracy (ACC), true-positive rate (TPR), false-positive rate (FPR) and
F1-score, computed from a confusion matrix over experiment runs: a
*positive* run is one whose attack caused (or would cause, absent
mitigation) an adverse impact on the physical system; a detector's
*prediction* is whether it raised an alert during the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple


@dataclass(frozen=True)
class ConfusionMatrix:
    """Counts of (label, prediction) pairs."""

    tp: int = 0
    fp: int = 0
    tn: int = 0
    fn: int = 0

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[bool, bool]]) -> "ConfusionMatrix":
        """Build from ``(label, predicted)`` pairs."""
        tp = fp = tn = fn = 0
        for label, predicted in pairs:
            if label and predicted:
                tp += 1
            elif label and not predicted:
                fn += 1
            elif not label and predicted:
                fp += 1
            else:
                tn += 1
        return cls(tp=tp, fp=fp, tn=tn, fn=fn)

    @property
    def total(self) -> int:
        """Total number of runs."""
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        """(TP + TN) / total; 0 when empty."""
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def tpr(self) -> float:
        """TP / (TP + FN) — recall; 0 when no positives."""
        positives = self.tp + self.fn
        return self.tp / positives if positives else 0.0

    @property
    def fpr(self) -> float:
        """FP / (FP + TN); 0 when no negatives."""
        negatives = self.fp + self.tn
        return self.fp / negatives if negatives else 0.0

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 0 when nothing predicted positive."""
        predicted = self.tp + self.fp
        return self.tp / predicted if predicted else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall; 0 when undefined."""
        p, r = self.precision, self.tpr
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0

    def __add__(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        return ConfusionMatrix(
            tp=self.tp + other.tp,
            fp=self.fp + other.fp,
            tn=self.tn + other.tn,
            fn=self.fn + other.fn,
        )


def classification_report(matrix: ConfusionMatrix, name: str = "detector") -> str:
    """Human-readable one-line report in the paper's Table IV format."""
    return (
        f"{name}: ACC {matrix.accuracy * 100:5.1f}  "
        f"TPR {matrix.tpr * 100:5.1f}  "
        f"FPR {matrix.fpr * 100:5.1f}  "
        f"F1 {matrix.f1 * 100:5.1f}  "
        f"(n={matrix.total})"
    )

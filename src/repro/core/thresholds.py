"""Threshold learning from fault-free runs.

"The thresholds used for detecting anomalies are learned through measuring
the maximum instant velocities of each of the variables over 600 fault-free
runs of the model with two different trajectories containing sufficient
variability in the movement.  To eliminate the sensitivity of sample
statistics to outliers and possible noise in measurements, we chose values
between the 99.8-99.9th percentiles of instant velocity as the threshold
for each variable." (paper, Section IV.C)

:class:`ThresholdLearner` pools the per-cycle instant rates produced by the
estimator across fault-free runs and takes a per-variable percentile; a
multiplicative margin can widen the thresholds when lower false-alarm rates
are preferred over sensitivity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Union

import numpy as np

from repro import constants
from repro.core.estimator import StateEstimate
from repro.errors import DetectorError

#: The three monitored variable groups, in the paper's order.
VARIABLE_GROUPS = ("motor_velocity", "motor_acceleration", "joint_velocity")


@dataclass(frozen=True)
class SafetyThresholds:
    """Per-axis alarm thresholds for the three monitored variable groups."""

    motor_velocity: np.ndarray
    motor_acceleration: np.ndarray
    joint_velocity: np.ndarray
    percentile: float = 99.85
    margin: float = 1.0

    def __post_init__(self) -> None:
        for group in VARIABLE_GROUPS:
            value = np.asarray(getattr(self, group), dtype=float)
            if value.shape != (3,):
                raise DetectorError(f"{group} threshold must have 3 axes")
            if np.any(value <= 0.0):
                raise DetectorError(f"{group} thresholds must be positive")
            object.__setattr__(self, group, value)

    def scaled(self, factor: float) -> "SafetyThresholds":
        """Thresholds uniformly scaled by ``factor`` (ablation use)."""
        return SafetyThresholds(
            motor_velocity=self.motor_velocity * factor,
            motor_acceleration=self.motor_acceleration * factor,
            joint_velocity=self.joint_velocity * factor,
            percentile=self.percentile,
            margin=self.margin * factor,
        )

    # -- persistence ------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "motor_velocity": self.motor_velocity.tolist(),
            "motor_acceleration": self.motor_acceleration.tolist(),
            "joint_velocity": self.joint_velocity.tolist(),
            "percentile": self.percentile,
            "margin": self.margin,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SafetyThresholds":
        """Inverse of :meth:`to_dict`."""
        return cls(
            motor_velocity=np.asarray(data["motor_velocity"], dtype=float),
            motor_acceleration=np.asarray(data["motor_acceleration"], dtype=float),
            joint_velocity=np.asarray(data["joint_velocity"], dtype=float),
            percentile=float(data.get("percentile", 99.85)),
            margin=float(data.get("margin", 1.0)),
        )

    def save(self, path: Union[str, Path]) -> None:
        """Write thresholds to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SafetyThresholds":
        """Read thresholds from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text()))


@dataclass
class ThresholdLearner:
    """Pools estimator outputs from fault-free runs and fits thresholds."""

    percentile: float = 0.5
    margin: float = 1.0
    _samples: dict = field(default_factory=lambda: {g: [] for g in VARIABLE_GROUPS})
    runs_observed: int = 0

    def __post_init__(self) -> None:
        if self.percentile == 0.5:
            # Default to the middle of the paper's 99.8-99.9 band.
            self.percentile = 0.5 * (
                constants.THRESHOLD_PERCENTILE_LO + constants.THRESHOLD_PERCENTILE_HI
            )
        if not (50.0 < self.percentile <= 100.0):
            raise DetectorError("percentile must be in (50, 100]")
        if self.margin <= 0.0:
            raise DetectorError("margin must be positive")

    def observe(self, estimate: StateEstimate) -> None:
        """Add one control cycle's instant rates to the pool."""
        self._samples["motor_velocity"].append(
            np.abs(estimate.motor_velocity).reshape(1, 3)
        )
        self._samples["motor_acceleration"].append(
            np.abs(estimate.motor_acceleration).reshape(1, 3)
        )
        self._samples["joint_velocity"].append(
            np.abs(estimate.joint_velocity).reshape(1, 3)
        )

    def observe_run(
        self,
        motor_velocity: np.ndarray,
        motor_acceleration: np.ndarray,
        joint_velocity: np.ndarray,
    ) -> None:
        """Add one whole run's stacked ``(cycles, 3)`` rate traces.

        The batch equivalent of calling :meth:`observe` once per cycle
        followed by :meth:`finish_run`; campaign workers hand back entire
        runs this way so the pool is built from a few array appends
        instead of thousands of per-sample Python calls.
        """
        for group, trace in (
            ("motor_velocity", motor_velocity),
            ("motor_acceleration", motor_acceleration),
            ("joint_velocity", joint_velocity),
        ):
            block = np.abs(np.asarray(trace, dtype=float)).reshape(-1, 3)
            if block.size:
                self._samples[group].append(block)
        self.runs_observed += 1

    def finish_run(self) -> None:
        """Mark the end of one fault-free run (bookkeeping only)."""
        self.runs_observed += 1

    @property
    def sample_count(self) -> int:
        """Number of cycles pooled so far."""
        return sum(block.shape[0] for block in self._samples["motor_velocity"])

    def _percentiles(self, percentiles) -> dict:
        """Per-group threshold rows at each requested percentile.

        One vectorized ``np.percentile`` call per variable group over the
        stacked sample pool computes every requested percentile at once.
        """
        if self.sample_count == 0:
            raise DetectorError("cannot fit thresholds without samples")
        return {
            group: np.atleast_2d(
                np.percentile(
                    np.vstack(self._samples[group]), percentiles, axis=0
                )
            )
            * self.margin
            for group in VARIABLE_GROUPS
        }

    def fit(self) -> SafetyThresholds:
        """Compute the per-variable percentile thresholds.

        Raises
        ------
        DetectorError
            If no samples were observed.
        """
        values = self._percentiles([self.percentile])
        return SafetyThresholds(
            motor_velocity=values["motor_velocity"][0],
            motor_acceleration=values["motor_acceleration"][0],
            joint_velocity=values["joint_velocity"][0],
            percentile=self.percentile,
            margin=self.margin,
        )

    def fit_range(self) -> List[SafetyThresholds]:
        """Thresholds at both ends of the paper's 99.8-99.9 band."""
        band = (
            constants.THRESHOLD_PERCENTILE_LO,
            constants.THRESHOLD_PERCENTILE_HI,
        )
        values = self._percentiles(list(band))
        return [
            SafetyThresholds(
                motor_velocity=values["motor_velocity"][i],
                motor_acceleration=values["motor_acceleration"][i],
                joint_velocity=values["joint_velocity"][i],
                percentile=pct,
                margin=self.margin,
            )
            for i, pct in enumerate(band)
        ]

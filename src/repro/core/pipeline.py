"""Insertion of the detector into the command path (Figure 7(b)).

The :class:`DetectorGuard` is installed as the guard hook of the USB
interface board — "the last computational component before the motor
controllers" — so it sees every DAC command *after* any malicious
modification (scenario B) and after the PID has reacted to malicious user
inputs (scenario A), but *before* execution on the physical robot.

Per intercepted command packet the guard:

1. reads the current encoder counts (the same quantized measurements the
   control software sees) and syncs the estimator;
2. while the robot is engaged (Pedal Down), runs the one-step dynamic-model
   prediction under the packet's DAC values and evaluates the fused alarm;
3. applies the configured mitigation: monitor, block (robot holds the last
   safe command), or block + PLC E-STOP.

A :class:`GuardSupervisor` wraps a guard for *in-situ* deployment, where
the measurement stream is not perfect: it screens encoder readings for
plausibility, coasts the estimator on the model's own prediction when a
measurement is missing or implausible, caps consecutive coasts, and runs a
staleness watchdog that escalates to a PLC E-STOP when command packets stop
arriving entirely.  Its health state machine:

    NOMINAL --implausible/missing measurement--> COASTING
    COASTING --trusted measurement--> NOMINAL
    COASTING --max_coast_cycles exceeded--> STALE --> (E-STOP)
    any state --staleness_timeout_cycles without packets--> STALE --> (E-STOP)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.control.state_machine import RobotState
from repro.core.detector import AnomalyDetector, DetectionResult
from repro.core.estimator import (
    NextStateEstimator,
    StateEstimate,
    hex_vector,
    unhex_vector,
)
from repro.core.mitigation import MitigationStrategy
from repro.errors import DetectorError
from repro.hw.usb_board import UsbBoard
from repro.hw.usb_packet import CommandPacket
from repro.obs.runtime import get_runtime
from repro.obs.timing import Stopwatch


class GuardHealth(enum.Enum):
    """Typed health state of the detector runtime."""

    #: Trusted measurements; full detection fidelity.
    NOMINAL = "nominal"
    #: Running on the model's own prediction (missing/implausible
    #: measurements); detection continues at reduced fidelity.
    COASTING = "coasting"
    #: Measurements or packets stopped arriving for too long; the
    #: supervisor no longer trusts its state estimate.
    STALE = "stale"
    #: The supervisor escalated to a PLC E-STOP.
    ESTOPPED = "estopped"


@dataclass
class AlertEvent:
    """One detector alert, for post-run analysis."""

    cycle: int
    state: RobotState
    result: DetectionResult
    blocked: bool


def _result_to_dict(result: DetectionResult) -> Dict[str, Any]:
    """Bit-exact serialization of a :class:`DetectionResult` (margins are
    float64, stored as ``float.hex()`` so JSON round-trips cannot drift)."""
    return {
        "alert": result.alert,
        "alarms": dict(result.alarms),
        "margins": {k: float(v).hex() for k, v in result.margins.items()},
        "raw_alert": result.raw_alert,
    }


def _result_from_dict(data: Dict[str, Any]) -> DetectionResult:
    return DetectionResult(
        alert=data["alert"],
        alarms=dict(data["alarms"]),
        margins={k: float.fromhex(v) for k, v in data["margins"].items()},
        raw_alert=data["raw_alert"],
    )


@dataclass
class GuardStats:
    """Counters accumulated over a run."""

    packets_seen: int = 0
    packets_evaluated: int = 0
    alerts: int = 0
    blocked: int = 0
    #: Alerts raised after ``max_recorded_alerts`` was reached — counted
    #: here instead of silently vanishing from ``alert_events``.
    alerts_dropped: int = 0
    #: Cycles survived on the model's own prediction (degraded mode).
    coasted_cycles: int = 0
    #: Measurements rejected by the supervisor's plausibility screen.
    implausible_measurements: int = 0
    #: Supervisor-initiated E-STOP escalations (stale measurements).
    stale_escalations: int = 0
    #: Current detector-runtime health (NOMINAL without a supervisor).
    health: GuardHealth = GuardHealth.NOMINAL
    #: ``(cycle, health)`` transition log, in order.
    health_transitions: List[Tuple[int, GuardHealth]] = field(default_factory=list)
    alert_events: List[AlertEvent] = field(default_factory=list)

    @property
    def alerted(self) -> bool:
        """Whether any alert was raised."""
        return self.alerts > 0

    @property
    def first_alert_cycle(self) -> Optional[int]:
        """Cycle index of the first alert (None if never alerted)."""
        return self.alert_events[0].cycle if self.alert_events else None

    def summary(self) -> dict:
        """Flat summary of all counters (reports, logs, robustness sweeps)."""
        return {
            "packets_seen": self.packets_seen,
            "packets_evaluated": self.packets_evaluated,
            "alerts": self.alerts,
            "alerts_recorded": len(self.alert_events),
            "alerts_dropped": self.alerts_dropped,
            "blocked": self.blocked,
            "coasted_cycles": self.coasted_cycles,
            "implausible_measurements": self.implausible_measurements,
            "stale_escalations": self.stale_escalations,
            "health": self.health.value,
            "first_alert_cycle": self.first_alert_cycle,
        }

    def record_health(self, cycle: int, health: GuardHealth) -> None:
        """Transition to ``health`` (no-op when already there)."""
        if health is self.health:
            return
        self.health = health
        self.health_transitions.append((cycle, health))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of every counter and event log."""
        return {
            "packets_seen": self.packets_seen,
            "packets_evaluated": self.packets_evaluated,
            "alerts": self.alerts,
            "blocked": self.blocked,
            "alerts_dropped": self.alerts_dropped,
            "coasted_cycles": self.coasted_cycles,
            "implausible_measurements": self.implausible_measurements,
            "stale_escalations": self.stale_escalations,
            "health": self.health.value,
            "health_transitions": [
                [cycle, health.value] for cycle, health in self.health_transitions
            ],
            "alert_events": [
                {
                    "cycle": event.cycle,
                    "state": event.state.name,
                    "result": _result_to_dict(event.result),
                    "blocked": event.blocked,
                }
                for event in self.alert_events
            ],
        }

    @classmethod
    def from_snapshot(cls, data: Dict[str, Any]) -> "GuardStats":
        """Rebuild the exact stats object :meth:`snapshot` captured."""
        return cls(
            packets_seen=data["packets_seen"],
            packets_evaluated=data["packets_evaluated"],
            alerts=data["alerts"],
            blocked=data["blocked"],
            alerts_dropped=data["alerts_dropped"],
            coasted_cycles=data["coasted_cycles"],
            implausible_measurements=data["implausible_measurements"],
            stale_escalations=data["stale_escalations"],
            health=GuardHealth(data["health"]),
            health_transitions=[
                (cycle, GuardHealth(value))
                for cycle, value in data["health_transitions"]
            ],
            alert_events=[
                AlertEvent(
                    cycle=event["cycle"],
                    state=RobotState[event["state"]],
                    result=_result_from_dict(event["result"]),
                    blocked=event["blocked"],
                )
                for event in data["alert_events"]
            ],
        )


class DetectorGuard:
    """The dynamic-model detector wired into the USB board's guard hook."""

    def __init__(
        self,
        estimator: NextStateEstimator,
        detector: AnomalyDetector,
        strategy: MitigationStrategy = MitigationStrategy.MONITOR,
        max_recorded_alerts: int = 1000,
        escalate_after_blocks: int = 50,
    ) -> None:
        """Create the guard.

        ``escalate_after_blocks``: in BLOCK mode, a run of this many
        *consecutive* blocked commands (the controller keeps producing
        alarming commands, so holding the safe state is not converging)
        escalates to a PLC E-STOP — blocking alone has no recovery path
        when the alarm condition persists.
        """
        self.estimator = estimator
        self.detector = detector
        self.strategy = strategy
        self.max_recorded_alerts = max_recorded_alerts
        self.escalate_after_blocks = escalate_after_blocks
        self.stats = GuardStats()
        self._board: Optional[UsbBoard] = None
        self._cycle = 0
        self._block_streak = 0
        # Batched execution hook (see repro.sim.batch): when set, process()
        # records the packet with the sink instead of evaluating inline;
        # the sink later runs the numeric work through the batched
        # estimator and calls _finish_evaluation() with the results.
        self._batch_sink = None
        # Forensic stash read by the flight recorder each control cycle:
        # the most recent evaluation, the estimate it was based on, the
        # DAC values the guard actually saw (post-tamper, in scenario B
        # they differ from what the controller commanded), and whether
        # the command was blocked.  All None/False on unevaluated cycles.
        self.last_evaluation: Optional[DetectionResult] = None
        self.last_estimate: Optional[StateEstimate] = None
        self.last_dac: Optional[Tuple[int, ...]] = None
        self.last_blocked = False
        # Telemetry (REPRO_OBS): guard-decision counters and evaluation
        # latency.  None when disabled — the per-packet path then pays
        # only is-None branches, keeping the disabled build overhead-free.
        obs = get_runtime()
        if obs.enabled:
            registry = obs.registry
            self._obs_packets = registry.counter(
                "repro_guard_packets_total", "command packets seen"
            )
            self._obs_alerts = registry.counter(
                "repro_guard_alerts_total", "detector alerts acted on"
            )
            self._obs_blocked = registry.counter(
                "repro_guard_blocked_total", "command packets blocked"
            )
            self._obs_eval_seconds = registry.histogram(
                "repro_guard_eval_seconds",
                "estimator + detector latency per evaluated packet",
            )
        else:
            self._obs_packets = None
            self._obs_alerts = None
            self._obs_blocked = None
            self._obs_eval_seconds = None

    def attach(self, board: UsbBoard) -> None:
        """Install this guard on a USB board."""
        self._board = board
        board.guard = self

    def reset(self) -> None:
        """Clear per-run state (estimator memory, detector counters and
        statistics)."""
        self.estimator.reset()
        self.detector.reset_counters()
        self.stats = GuardStats()
        self._cycle = 0
        self._block_streak = 0
        self.last_evaluation = None
        self.last_estimate = None
        self.last_dac = None
        self.last_blocked = False

    def tick_cycle(self, cycle: int) -> None:
        """Per-control-cycle hook from the simulation loop.

        The bare guard has no time-based behaviour; the supervisor
        overrides this with its staleness watchdog.
        """

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of all resumable guard state.

        Captures the cycle counter, block streak, statistics, estimator
        memory, and detector counters/decision window.  Configuration
        (strategy, thresholds, model parameters) is *not* state — resume
        reconstructs the guard from the same config, then restores this.
        """
        return {
            "cycle": self._cycle,
            "block_streak": self._block_streak,
            "stats": self.stats.snapshot(),
            "estimator": self.estimator.snapshot(),
            "detector": self.detector.snapshot(),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot` — resume bit-identically.

        The forensic stash (``last_evaluation`` etc.) is transient
        per-packet output, not resumable state; it is cleared here and
        repopulated on the next processed packet.
        """
        self._cycle = state["cycle"]
        self._block_streak = state["block_streak"]
        self.stats = GuardStats.from_snapshot(state["stats"])
        self.estimator.restore(state["estimator"])
        self.detector.restore(state["detector"])
        self.last_evaluation = None
        self.last_estimate = None
        self.last_dac = None
        self.last_blocked = False

    def read_measurement(self) -> np.ndarray:
        """The motor-shaft measurement the control software also sees."""
        if self._board is None:
            raise DetectorError("guard not attached to a USB board")
        return self._board.encoders.to_radians(self._board.encoder_counts()[:3])

    # -- guard protocol (called by UsbBoard.fd_write) ------------------------------

    def __call__(self, packet: CommandPacket, raw: bytes) -> bool:
        """Inspect one command packet; return True to allow execution."""
        return self.process(packet, self.read_measurement())

    def process(
        self, packet: CommandPacket, mpos: Optional[np.ndarray]
    ) -> bool:
        """Evaluate one packet against measurement ``mpos``.

        ``mpos=None`` means "no trusted measurement this cycle": the
        estimator coasts on the model's own prediction instead of syncing
        (the supervisor's degraded mode).
        """
        if self._board is None:
            raise DetectorError("guard not attached to a USB board")
        self._begin_packet(packet)
        if self._batch_sink is not None:
            # Batched execution: the estimator sync/coast/estimate and the
            # detector evaluation run later, batched across all lanes, in
            # the same per-lane order they would here.  The provisional
            # True keeps the DAC latch deferred until the sink decides.
            if mpos is None:
                self.stats.coasted_cycles += 1
            return self._batch_sink.capture(self, packet, mpos)

        if mpos is not None:
            # Same measurement stream the control software uses.
            self.estimator.sync(mpos)
        else:
            self.estimator.coast()
            self.stats.coasted_cycles += 1

        if packet.state is not RobotState.PEDAL_DOWN:
            # Brakes engaged: commands have no physical effect, and the
            # model's at-rest assumptions hold; nothing to evaluate.
            return True
        if not self.estimator.synced:
            # Coasting before the first measurement: no state to predict
            # from, so nothing can be evaluated yet.
            return True

        if self._obs_eval_seconds is not None:
            with Stopwatch() as probe:
                estimate = self.estimator.estimate(packet.dac_values[:3])
                result = self.detector.evaluate(estimate)
            self._obs_eval_seconds.observe(probe.elapsed_s)
        else:
            estimate = self.estimator.estimate(packet.dac_values[:3])
            result = self.detector.evaluate(estimate)
        return self._finish_evaluation(packet, estimate, result)

    def _begin_packet(self, packet: CommandPacket) -> None:
        """Per-packet bookkeeping shared by the inline and batched paths."""
        self._cycle += 1
        self.stats.packets_seen += 1
        self.last_evaluation = None
        self.last_estimate = None
        self.last_dac = tuple(packet.dac_values)
        self.last_blocked = False
        if self._obs_packets is not None:
            self._obs_packets.inc()

    def _finish_evaluation(
        self, packet: CommandPacket, estimate: StateEstimate, result: DetectionResult
    ) -> bool:
        """Post-evaluation decision chain (alerting, blocking, E-STOP).

        Shared verbatim between the inline path above and the batched
        sink, so mitigation semantics cannot drift between the two.
        """
        self.stats.packets_evaluated += 1
        self.last_estimate = estimate
        self.last_evaluation = result
        if not result.alert:
            self._block_streak = 0
            return True

        self.stats.alerts += 1
        if self._obs_alerts is not None:
            self._obs_alerts.inc()
        blocked = self.strategy.blocks
        self.last_blocked = blocked
        if blocked:
            self.stats.blocked += 1
            self._block_streak += 1
            if self._obs_blocked is not None:
                self._obs_blocked.inc()
        if len(self.stats.alert_events) < self.max_recorded_alerts:
            self.stats.alert_events.append(
                AlertEvent(
                    cycle=self._cycle,
                    state=packet.state,
                    result=result,
                    blocked=blocked,
                )
            )
        else:
            self.stats.alerts_dropped += 1
        if self.strategy.stops_robot:
            self._board.plc.trigger_estop("dynamic-model detector alert")
        elif blocked and self._block_streak >= self.escalate_after_blocks:
            self._board.plc.trigger_estop(
                "dynamic-model detector alert persisted; escalating to E-STOP"
            )
        return not blocked


@dataclass(frozen=True)
class SupervisorConfig:
    """Tuning of the degraded-mode supervisor.

    ``implausible_jump_rad``: largest credible motor-shaft angle change
    between consecutive measurements.  Real motion is bounded by the motor
    velocity limits (~15 rad/s x 1 ms = 0.015 rad/cycle), so anything
    orders of magnitude above it is an encoder glitch, not motion.

    ``max_coast_cycles``: consecutive model-only cycles tolerated before
    the state estimate is declared stale.  Model error accumulates while
    coasting, so this bounds how long detection runs open-loop.

    ``staleness_timeout_cycles``: control cycles without *any* command
    packet (after the first) before the supervisor assumes the control
    software or measurement path is dead.

    ``estop_on_stale``: whether STALE escalates to a PLC E-STOP (the safe
    default on a physical robot) or only records the health transition
    (useful for measurement campaigns).
    """

    implausible_jump_rad: float = 0.5
    max_coast_cycles: int = 16
    staleness_timeout_cycles: int = 64
    estop_on_stale: bool = True

    def to_dict(self) -> dict:
        return {
            "implausible_jump_rad": self.implausible_jump_rad,
            "max_coast_cycles": self.max_coast_cycles,
            "staleness_timeout_cycles": self.staleness_timeout_cycles,
            "estop_on_stale": self.estop_on_stale,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SupervisorConfig":
        return cls(**data)


class GuardSupervisor:
    """Degraded-mode runtime around a :class:`DetectorGuard`.

    Installs *itself* as the USB board's guard hook and screens every
    measurement before the wrapped guard sees it:

    - **plausibility gate** — a measurement that is non-finite or jumps
      more than ``implausible_jump_rad`` from the last trusted one is
      rejected; the guard coasts on the model's own prediction instead
      (health: COASTING), so one glitched encoder read neither corrupts
      the state estimate nor trips the alarm chain;
    - **coast cap** — after ``max_coast_cycles`` consecutive rejections
      the state estimate is stale (health: STALE) and, by default, the
      supervisor latches the PLC E-STOP: detection fidelity can no longer
      be vouched for, which on a surgical robot means *stop*;
    - **staleness watchdog** — :meth:`tick_cycle` (driven by the control
      loop) escalates the same way when command packets stop arriving
      entirely, e.g. a crashed control process or severed USB link.
    """

    def __init__(
        self,
        guard: DetectorGuard,
        config: Optional[SupervisorConfig] = None,
    ) -> None:
        self.guard = guard
        self.config = config or SupervisorConfig()
        self._board: Optional[UsbBoard] = None
        self._last_mpos: Optional[np.ndarray] = None
        self._coast_streak = 0
        self._cycle = 0
        self._last_packet_cycle: Optional[int] = None

    # -- delegation ---------------------------------------------------------------

    @property
    def stats(self) -> GuardStats:
        """The wrapped guard's statistics (shared object)."""
        return self.guard.stats

    @property
    def health(self) -> GuardHealth:
        """Current health state."""
        return self.stats.health

    @property
    def last_evaluation(self) -> Optional[DetectionResult]:
        """The wrapped guard's most recent evaluation (flight recorder)."""
        return self.guard.last_evaluation

    @property
    def last_estimate(self) -> Optional[StateEstimate]:
        """The wrapped guard's most recent state estimate."""
        return self.guard.last_estimate

    @property
    def last_dac(self) -> Optional[Tuple[int, ...]]:
        """DAC values of the last packet the wrapped guard inspected."""
        return self.guard.last_dac

    @property
    def last_blocked(self) -> bool:
        """Whether the last inspected packet was blocked."""
        return self.guard.last_blocked

    def attach(self, board: UsbBoard) -> None:
        """Install the supervisor (not the bare guard) on a USB board."""
        self._board = board
        self.guard._board = board
        board.guard = self

    def reset(self) -> None:
        """Clear supervisor and guard per-run state."""
        self.guard.reset()
        self._last_mpos = None
        self._coast_streak = 0
        self._cycle = 0
        self._last_packet_cycle = None

    #: Schema version of :meth:`snapshot` payloads.  Bump on any layout
    #: change so stores reject snapshots they cannot faithfully restore.
    SNAPSHOT_VERSION = 1

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of supervisor + wrapped guard state."""
        return {
            "version": self.SNAPSHOT_VERSION,
            "config": self.config.to_dict(),
            "cycle": self._cycle,
            "last_packet_cycle": self._last_packet_cycle,
            "coast_streak": self._coast_streak,
            "last_mpos": hex_vector(self._last_mpos),
            "guard": self.guard.snapshot(),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot` — resume bit-identically.

        Raises :class:`ValueError` when the snapshot schema version or the
        supervisor config does not match: restoring state produced under a
        different plausibility gate or coast cap would silently change
        every subsequent health decision.
        """
        if state["version"] != self.SNAPSHOT_VERSION:
            raise ValueError(
                f"supervisor snapshot version {state['version']} != "
                f"supported {self.SNAPSHOT_VERSION}"
            )
        if state["config"] != self.config.to_dict():
            raise ValueError(
                "supervisor snapshot was taken under a different config; "
                "rebuild the supervisor with the stored config to restore"
            )
        self._cycle = state["cycle"]
        self._last_packet_cycle = state["last_packet_cycle"]
        self._coast_streak = state["coast_streak"]
        self._last_mpos = unhex_vector(state["last_mpos"])
        self.guard.restore(state["guard"])

    # -- degraded-mode machinery -------------------------------------------------

    def _plausible(self, mpos: np.ndarray) -> bool:
        if not np.all(np.isfinite(mpos)):
            return False
        if self._last_mpos is None:
            return True
        jump = float(np.max(np.abs(mpos - self._last_mpos)))
        return jump <= self.config.implausible_jump_rad

    def _escalate_stale(self, reason: str) -> None:
        self.stats.record_health(self._cycle, GuardHealth.STALE)
        self.stats.stale_escalations += 1
        if self.config.estop_on_stale and self._board is not None:
            self._board.plc.trigger_estop(reason)
            self.stats.record_health(self._cycle, GuardHealth.ESTOPPED)

    def tick_cycle(self, cycle: int) -> None:
        """Staleness watchdog, driven once per control cycle by the rig."""
        self._cycle = cycle
        if self._last_packet_cycle is None:
            return  # no packet seen yet: the software may still be starting
        if self.stats.health in (GuardHealth.STALE, GuardHealth.ESTOPPED):
            return
        if cycle - self._last_packet_cycle > self.config.staleness_timeout_cycles:
            self._escalate_stale(
                "detector supervisor: command/measurement stream stale"
            )

    # -- guard protocol -----------------------------------------------------------

    def __call__(self, packet: CommandPacket, raw: bytes) -> bool:
        """Screen the measurement, then delegate to the wrapped guard."""
        if self._board is None:
            raise DetectorError("supervisor not attached to a USB board")
        self._last_packet_cycle = self._cycle
        if self.stats.health is GuardHealth.ESTOPPED:
            # Read no encoders post-escalation: the encoder-noise RNG must
            # not advance on cycles the PLC already holds.
            return self._reject_estopped(packet)
        return self.process(packet, self.guard.read_measurement())

    def process(self, packet: CommandPacket, mpos: Optional[np.ndarray]) -> bool:
        """Measurement-supplied entry point (fleet/telemetry deployments).

        ``mpos`` is the motor-shaft measurement accompanying this packet,
        or ``None`` when the telemetry frame carried no measurement; both
        run through the same plausibility gate / coast / escalation
        machinery as the on-board path.
        """
        self._last_packet_cycle = self._cycle
        if self.stats.health is GuardHealth.ESTOPPED:
            return self._reject_estopped(packet)

        if mpos is not None and self._plausible(mpos):
            self._last_mpos = mpos
            self._coast_streak = 0
            if self.stats.health is GuardHealth.COASTING:
                self.stats.record_health(self._cycle, GuardHealth.NOMINAL)
            return self.guard.process(packet, mpos)

        # Degraded mode: reject the measurement, coast on the model.  Only
        # an actual reading counts as implausible; a missing one is pure
        # coasting.
        if mpos is not None:
            self.stats.implausible_measurements += 1
        self._coast_streak += 1
        self.stats.record_health(self._cycle, GuardHealth.COASTING)
        if self._coast_streak > self.config.max_coast_cycles:
            self._escalate_stale(
                "detector supervisor: measurements implausible for "
                f"{self._coast_streak} consecutive cycles"
            )
            return not self.config.estop_on_stale
        return self.guard.process(packet, None)

    def _reject_estopped(self, packet: CommandPacket) -> bool:
        # Post-escalation packets are not evaluated; the PLC holds the
        # robot and the operator must clear the E-STOP.  Clear the
        # forensic stash so the flight recorder does not attribute a
        # stale evaluation to these cycles.
        self.guard.last_evaluation = None
        self.guard.last_estimate = None
        self.guard.last_dac = tuple(packet.dac_values)
        self.guard.last_blocked = True
        return False

"""Insertion of the detector into the command path (Figure 7(b)).

The :class:`DetectorGuard` is installed as the guard hook of the USB
interface board — "the last computational component before the motor
controllers" — so it sees every DAC command *after* any malicious
modification (scenario B) and after the PID has reacted to malicious user
inputs (scenario A), but *before* execution on the physical robot.

Per intercepted command packet the guard:

1. reads the current encoder counts (the same quantized measurements the
   control software sees) and syncs the estimator;
2. while the robot is engaged (Pedal Down), runs the one-step dynamic-model
   prediction under the packet's DAC values and evaluates the fused alarm;
3. applies the configured mitigation: monitor, block (robot holds the last
   safe command), or block + PLC E-STOP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.control.state_machine import RobotState
from repro.core.detector import AnomalyDetector, DetectionResult
from repro.core.estimator import NextStateEstimator
from repro.core.mitigation import MitigationStrategy
from repro.errors import DetectorError
from repro.hw.usb_board import UsbBoard
from repro.hw.usb_packet import CommandPacket


@dataclass
class AlertEvent:
    """One detector alert, for post-run analysis."""

    cycle: int
    state: RobotState
    result: DetectionResult
    blocked: bool


@dataclass
class GuardStats:
    """Counters accumulated over a run."""

    packets_seen: int = 0
    packets_evaluated: int = 0
    alerts: int = 0
    blocked: int = 0
    alert_events: List[AlertEvent] = field(default_factory=list)

    @property
    def alerted(self) -> bool:
        """Whether any alert was raised."""
        return self.alerts > 0

    @property
    def first_alert_cycle(self) -> Optional[int]:
        """Cycle index of the first alert (None if never alerted)."""
        return self.alert_events[0].cycle if self.alert_events else None


class DetectorGuard:
    """The dynamic-model detector wired into the USB board's guard hook."""

    def __init__(
        self,
        estimator: NextStateEstimator,
        detector: AnomalyDetector,
        strategy: MitigationStrategy = MitigationStrategy.MONITOR,
        max_recorded_alerts: int = 1000,
        escalate_after_blocks: int = 50,
    ) -> None:
        """Create the guard.

        ``escalate_after_blocks``: in BLOCK mode, a run of this many
        *consecutive* blocked commands (the controller keeps producing
        alarming commands, so holding the safe state is not converging)
        escalates to a PLC E-STOP — blocking alone has no recovery path
        when the alarm condition persists.
        """
        self.estimator = estimator
        self.detector = detector
        self.strategy = strategy
        self.max_recorded_alerts = max_recorded_alerts
        self.escalate_after_blocks = escalate_after_blocks
        self.stats = GuardStats()
        self._board: Optional[UsbBoard] = None
        self._cycle = 0
        self._block_streak = 0

    def attach(self, board: UsbBoard) -> None:
        """Install this guard on a USB board."""
        self._board = board
        board.guard = self

    def reset(self) -> None:
        """Clear per-run state (estimator memory and statistics)."""
        self.estimator.reset()
        self.stats = GuardStats()
        self._cycle = 0
        self._block_streak = 0

    # -- guard protocol (called by UsbBoard.fd_write) ------------------------------

    def __call__(self, packet: CommandPacket, raw: bytes) -> bool:
        """Inspect one command packet; return True to allow execution."""
        if self._board is None:
            raise DetectorError("guard not attached to a USB board")
        self._cycle += 1
        self.stats.packets_seen += 1

        # Same measurement stream the control software uses.
        mpos = self._board.encoders.to_radians(self._board.encoder_counts()[:3])
        self.estimator.sync(mpos)

        if packet.state is not RobotState.PEDAL_DOWN:
            # Brakes engaged: commands have no physical effect, and the
            # model's at-rest assumptions hold; nothing to evaluate.
            return True

        estimate = self.estimator.estimate(packet.dac_values[:3])
        result = self.detector.evaluate(estimate)
        self.stats.packets_evaluated += 1
        if not result.alert:
            self._block_streak = 0
            return True

        self.stats.alerts += 1
        blocked = self.strategy.blocks
        if blocked:
            self.stats.blocked += 1
            self._block_streak += 1
        if len(self.stats.alert_events) < self.max_recorded_alerts:
            self.stats.alert_events.append(
                AlertEvent(
                    cycle=self._cycle,
                    state=packet.state,
                    result=result,
                    blocked=blocked,
                )
            )
        if self.strategy.stops_robot:
            self._board.plc.trigger_estop("dynamic-model detector alert")
        elif blocked and self._block_streak >= self.escalate_after_blocks:
            self._board.plc.trigger_estop(
                "dynamic-model detector alert persisted; escalating to E-STOP"
            )
        return not blocked

"""Dynamic model-based detection and mitigation (the paper's Section IV).

The framework intercepts every DAC command on its way from the control
software to the motor controllers, estimates — with a real-time dynamic
model of the robot — the motor and joint state that executing the command
would produce in the next control period, and raises an alarm *before
execution* when the estimated instant motor acceleration, motor velocity
and joint velocity all exceed thresholds learned from fault-free runs.

Public API
----------
- :class:`RavenDynamicModel` — the real-time parallel model.
- :class:`NextStateEstimator`, :class:`StateEstimate` — one-step prediction.
- :class:`BatchedDynamicModel`, :class:`BatchedNextStateEstimator`,
  :class:`BatchedAnomalyDetector` — N-lane vectorized counterparts,
  bit-identical per lane (see :mod:`repro.dynamics.batch`).
- :class:`ThresholdLearner`, :class:`SafetyThresholds` — percentile learning.
- :class:`AnomalyDetector`, :class:`DetectionResult` — alarm fusion.
- :class:`DetectorGuard`, :class:`MitigationStrategy` — USB-board insertion.
- :class:`GuardSupervisor`, :class:`SupervisorConfig`, :class:`GuardHealth`
  — degraded-mode runtime (measurement plausibility screen, model coasting,
  staleness watchdog).
- :class:`RavenBaselineDetector` — the robot's built-in checks, as a
  comparable detector.
- :mod:`repro.core.metrics` — ACC/TPR/FPR/F1.
"""

from repro.core.dynamic_model import (
    BatchedDynamicModel,
    BatchedModelPrediction,
    ModelPrediction,
    RavenDynamicModel,
)
from repro.core.estimator import (
    BatchedNextStateEstimator,
    BatchedStateEstimate,
    NextStateEstimator,
    StateEstimate,
)
from repro.core.thresholds import SafetyThresholds, ThresholdLearner
from repro.core.detector import (
    AlarmDebouncer,
    AnomalyDetector,
    BatchedAlarmDebouncer,
    BatchedAnomalyDetector,
    BatchedDetectionResult,
    DetectionResult,
    FusionRule,
)
from repro.core.mitigation import MitigationStrategy
from repro.core.pipeline import (
    DetectorGuard,
    GuardHealth,
    GuardStats,
    GuardSupervisor,
    SupervisorConfig,
)
from repro.core.baseline import RavenBaselineDetector
from repro.core.metrics import ConfusionMatrix, classification_report

__all__ = [
    "AlarmDebouncer",
    "AnomalyDetector",
    "BatchedAlarmDebouncer",
    "BatchedAnomalyDetector",
    "BatchedDetectionResult",
    "BatchedDynamicModel",
    "BatchedModelPrediction",
    "BatchedNextStateEstimator",
    "BatchedStateEstimate",
    "ConfusionMatrix",
    "DetectionResult",
    "DetectorGuard",
    "FusionRule",
    "GuardHealth",
    "GuardStats",
    "GuardSupervisor",
    "SupervisorConfig",
    "MitigationStrategy",
    "ModelPrediction",
    "NextStateEstimator",
    "RavenBaselineDetector",
    "RavenDynamicModel",
    "SafetyThresholds",
    "StateEstimate",
    "ThresholdLearner",
    "classification_report",
]

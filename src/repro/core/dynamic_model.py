"""The real-time dynamic model of the RAVEN II physical system.

This is the software module the paper describes in Section IV.A.1: it
"mimics the dynamical behavior of the robotic actuators" by modelling the
MAXON DC motors and the first three (positioning) manipulator joints, and
estimates — within a fraction of the 1 ms control period — the next motor
and joint positions produced by a DAC command.

Differences from the ground-truth plant (:class:`repro.dynamics.RavenPlant`),
mirroring the paper's setup:

- the model integrates with a single fixed step per control period
  (explicit Euler by default; RK4 for the Figure-8 comparison) instead of
  the plant's sub-stepped RK4;
- the closed current loop is treated as instantaneous (``i = setpoint``),
  which is what makes a 1 ms Euler step stable;
- its coefficients are *tuned approximations*, not the plant's exact
  parameters — the paper obtains them "via manual tuning"; the
  ``parameter_error`` knob scales inertial/friction coefficients to model
  that imperfection.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import constants
from repro.dynamics.friction import FrictionModel
from repro.dynamics.integrators import get_integrator
from repro.dynamics.manipulator import ManipulatorDynamics, ManipulatorParameters
from repro.dynamics.motor import MotorParameters
from repro.dynamics.plant import DEFAULT_MOTORS, dac_to_current
from repro.dynamics.transmission import Transmission
from repro.obs.runtime import get_runtime
from repro.obs.timing import Stopwatch


class ModelPrediction:
    """Next-step state predicted from one DAC command."""

    __slots__ = ("jpos", "jvel", "mpos", "mvel", "elapsed_s")

    def __init__(
        self,
        jpos: np.ndarray,
        jvel: np.ndarray,
        mpos: np.ndarray,
        mvel: np.ndarray,
        elapsed_s: float,
    ) -> None:
        self.jpos = jpos
        self.jvel = jvel
        self.mpos = mpos
        self.mvel = mvel
        self.elapsed_s = elapsed_s


class RavenDynamicModel:
    """One-step-ahead model of motors + positioning joints."""

    def __init__(
        self,
        motors: Sequence[MotorParameters] = DEFAULT_MOTORS,
        manipulator_params: Optional[ManipulatorParameters] = None,
        transmission: Optional[Transmission] = None,
        friction: Optional[FrictionModel] = None,
        integrator: str = "euler",
        parameter_error: float = 1.0,
        dt: float = constants.CONTROL_PERIOD_S,
    ) -> None:
        """Create the model.

        Parameters
        ----------
        motors, manipulator_params, transmission, friction:
            Physical description; defaults match the nominal plant.
        integrator:
            Stepper used per control period (``euler`` or ``rk4``; the
            paper compares exactly these two in Figure 8).
        parameter_error:
            Multiplicative error applied to the model's inertial
            parameters, with the friction coefficients skewed the
            *opposite* way (``2 - parameter_error``) so the errors do not
            cancel in the equations of motion — 1.0 means a perfect model;
            the paper's manually tuned model corresponds to a few percent
            of error.
        dt:
            Step size; the paper uses the 1 ms control period.
        """
        params = manipulator_params or ManipulatorParameters()
        friction = friction or FrictionModel()
        if parameter_error != 1.0:
            params = params.scaled(parameter_error)
            friction = friction.scaled(max(0.1, 2.0 - parameter_error))
        self.dynamics = ManipulatorDynamics(params=params, friction=friction)
        self.motors = tuple(motors)
        self.transmission = transmission or Transmission()
        self._stepper = get_integrator(integrator)
        self.integrator_name = integrator
        self.dt = dt

        self._kt = np.array([m.torque_constant for m in self.motors])
        self._i_max = np.array([m.max_current for m in self.motors])
        self._refl_m = self.transmission.reflected_inertia(
            [m.rotor_inertia for m in self.motors]
        )
        self._refl_b = self.transmission.reflected_damping(
            [m.viscous_damping for m in self.motors]
        )
        #: Cumulative wall-clock statistics of :meth:`predict` (Figure 8).
        self.predict_calls = 0
        self.predict_seconds = 0.0
        # Telemetry (REPRO_OBS): per-prediction latency histogram.  None
        # when disabled, so the hot path pays one is-None branch.
        obs = get_runtime()
        self._predict_hist = (
            obs.registry.histogram(
                "repro_model_predict_seconds",
                "one-step dynamic-model prediction latency",
            )
            if obs.enabled
            else None
        )

    # -- state-to-state prediction ------------------------------------------------

    def step(
        self, jpos: np.ndarray, jvel: np.ndarray, dac_values: Sequence[float]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Integrate one control period from ``(jpos, jvel)`` under ``dac``.

        Returns the next ``(jpos, jvel)``.  No timing bookkeeping — use
        :meth:`predict` for the instrumented path.
        """
        setpoints = np.clip(dac_to_current(dac_values), -self._i_max, self._i_max)
        tau_joint = self.transmission.joint_torques(self._kt * setpoints)
        dynamics = self.dynamics
        refl_m, refl_b = self._refl_m, self._refl_b

        def f(_t: float, y: np.ndarray) -> np.ndarray:
            qddot = dynamics.acceleration(
                y[0:3], y[3:6], tau_joint, extra_inertia=refl_m, extra_damping=refl_b
            )
            return np.concatenate([y[3:6], qddot])

        y = self._stepper(f, 0.0, np.concatenate([jpos, jvel]), self.dt)
        return y[0:3], y[3:6]

    def predict(
        self, jpos: np.ndarray, jvel: np.ndarray, dac_values: Sequence[float]
    ) -> ModelPrediction:
        """One-step prediction with wall-clock instrumentation.

        The elapsed time per call is what Figure 8 reports as
        "Avg. Time/Step"; it must stay well below the 1 ms real-time
        budget for the detector to run in-line with the control loop.
        """
        with Stopwatch() as probe:
            jpos_next, jvel_next = self.step(jpos, jvel, dac_values)
        elapsed = probe.elapsed_s
        self.predict_calls += 1
        self.predict_seconds += elapsed
        if self._predict_hist is not None:
            self._predict_hist.observe(elapsed)
        return ModelPrediction(
            jpos=jpos_next,
            jvel=jvel_next,
            mpos=self.transmission.motor_positions(jpos_next),
            mvel=self.transmission.motor_velocities(jvel_next),
            elapsed_s=elapsed,
        )

    def apply_parameter_drift(
        self, inertia_scale: float, friction_scale: Optional[float] = None
    ) -> None:
        """Drift the model's physical coefficients in place (bounded).

        Models the slow divergence between the manually tuned model and the
        real robot (wear, payload changes, temperature): inertial
        parameters scale by ``inertia_scale`` and friction coefficients by
        ``friction_scale`` (defaults to ``inertia_scale``).  Scales are
        clamped to ``[0.5, 2.0]`` — physical drift is bounded; anything
        beyond that band is a configuration error, not drift.
        """
        inertia_scale = float(np.clip(inertia_scale, 0.5, 2.0))
        friction_scale = float(
            np.clip(
                inertia_scale if friction_scale is None else friction_scale,
                0.5,
                2.0,
            )
        )
        dynamics = self.dynamics
        self.dynamics = ManipulatorDynamics(
            params=dynamics.params.scaled(inertia_scale),
            friction=dynamics.friction.scaled(friction_scale),
            include_coriolis=dynamics.include_coriolis,
            include_gravity=dynamics.include_gravity,
        )

    @property
    def mean_predict_seconds(self) -> float:
        """Average wall-clock seconds per prediction so far."""
        if self.predict_calls == 0:
            return 0.0
        return self.predict_seconds / self.predict_calls

    def reset_timing(self) -> None:
        """Clear the wall-clock statistics."""
        self.predict_calls = 0
        self.predict_seconds = 0.0


class BatchedModelPrediction:
    """Next-step states predicted for every lane of a batch."""

    __slots__ = ("jpos", "jvel", "mpos", "mvel", "elapsed_s")

    def __init__(
        self,
        jpos: np.ndarray,
        jvel: np.ndarray,
        mpos: np.ndarray,
        mvel: np.ndarray,
        elapsed_s: float,
    ) -> None:
        self.jpos = jpos
        self.jvel = jvel
        self.mpos = mpos
        self.mvel = mvel
        self.elapsed_s = elapsed_s

    def lane(self, lane: int) -> ModelPrediction:
        """Scalar-shaped prediction for one lane (row copies)."""
        return ModelPrediction(
            jpos=self.jpos[lane].copy(),
            jvel=self.jvel[lane].copy(),
            mpos=self.mpos[lane].copy(),
            mvel=self.mvel[lane].copy(),
            elapsed_s=self.elapsed_s,
        )


class BatchedDynamicModel:
    """N independent :class:`RavenDynamicModel` lanes stepped in one shot.

    Wraps the per-lane scalar models (which stay authoritative for
    configuration, drift and telemetry) and evaluates their one-step
    predictions through :mod:`repro.dynamics.batch`, bit-identical to
    calling each scalar model in a loop.  Lanes may differ in
    ``parameter_error`` and drift state; integrator and step size must be
    shared.
    """

    def __init__(self, models: Sequence[RavenDynamicModel]) -> None:
        from repro.dynamics.batch import (
            BatchedManipulatorDynamics,
            get_batch_integrator,
            require_homogeneous,
        )

        if not models:
            raise ValueError("at least one lane model is required")
        require_homogeneous([m.integrator_name for m in models], "model integrator")
        require_homogeneous([m.dt for m in models], "model dt")
        require_homogeneous([m.motors for m in models], "model motors")
        require_homogeneous(
            [m.transmission.joint_to_motor for m in models], "model transmission"
        )
        self.models = list(models)
        self.num_lanes = len(models)
        first = models[0]
        self.transmission = first.transmission
        self.integrator_name = first.integrator_name
        self.dt = first.dt
        self._g = self.transmission.joint_to_motor
        self._kt = first._kt
        self._i_max = first._i_max
        self._refl_m = first._refl_m
        self._refl_b = first._refl_b
        self._stepper = get_batch_integrator(first.integrator_name)
        # Per-lane dynamics parameters, refreshed lazily when a lane's
        # scalar model rebuilds its ManipulatorDynamics (parameter drift).
        self.dynamics = BatchedManipulatorDynamics([m.dynamics for m in models])
        self._lane_dynamics = [m.dynamics for m in models]
        self.predict_calls = 0
        self.predict_seconds = 0.0

    def refresh_parameters(self) -> None:
        """Pick up per-lane parameter drift.

        ``RavenDynamicModel.apply_parameter_drift`` replaces the lane's
        ``dynamics`` object, so an identity check per lane is enough to
        notice and restack just the drifted rows.
        """
        for lane, model in enumerate(self.models):
            if model.dynamics is not self._lane_dynamics[lane]:
                self.dynamics.refresh_lane(lane, model.dynamics)
                self._lane_dynamics[lane] = model.dynamics

    def step(
        self, jpos: np.ndarray, jvel: np.ndarray, dac_values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Integrate every lane one control period under its DAC row."""
        from repro.dynamics.batch import batched_dac_to_current, batched_matvec

        setpoints = np.clip(
            batched_dac_to_current(dac_values), -self._i_max, self._i_max
        )
        tau_joint = batched_matvec(self._g.T, self._kt * setpoints)
        dynamics = self.dynamics
        refl_m, refl_b = self._refl_m, self._refl_b

        def f(_t: float, y: np.ndarray) -> np.ndarray:
            qddot = dynamics.acceleration(
                y[:, 0:3],
                y[:, 3:6],
                tau_joint,
                extra_inertia=refl_m,
                extra_damping=refl_b,
            )
            return np.concatenate([y[:, 3:6], qddot], axis=1)

        y = self._stepper(f, 0.0, np.concatenate([jpos, jvel], axis=1), self.dt)
        return y[:, 0:3], y[:, 3:6]

    def predict(
        self, jpos: np.ndarray, jvel: np.ndarray, dac_values: np.ndarray
    ) -> BatchedModelPrediction:
        """One-step prediction for all lanes with batch-level timing."""
        from repro.dynamics.batch import batched_matvec

        with Stopwatch() as probe:
            jpos_next, jvel_next = self.step(jpos, jvel, dac_values)
        elapsed = probe.elapsed_s
        self.predict_calls += 1
        self.predict_seconds += elapsed
        return BatchedModelPrediction(
            jpos=jpos_next,
            jvel=jvel_next,
            mpos=batched_matvec(self._g, jpos_next),
            mvel=batched_matvec(self._g, jvel_next),
            elapsed_s=elapsed,
        )

"""Mitigation strategies applied when the detector raises an alert.

"Upon detection of potential adverse impact on the physical system, the
impact of attacks can be mitigated by either correcting the malicious
control command by forcing the robot to stay in a previously safe state or
stopping the commands from execution and put the control software into a
safe state (E-STOP)." (paper, Section IV.C)
"""

from __future__ import annotations

import enum


class MitigationStrategy(enum.Enum):
    """What the guard does with a command that triggered an alert."""

    #: Log the alert but let the command through (evaluation mode — used
    #: for the Table IV / Figure 9 measurement campaigns).
    MONITOR = "monitor"

    #: Block the command; the motor controllers keep holding the last safe
    #: command, i.e. the robot stays in the previously safe state.
    BLOCK = "block"

    #: Block the command and latch the PLC E-STOP (safe halt).
    BLOCK_AND_ESTOP = "block_and_estop"

    @property
    def blocks(self) -> bool:
        """Whether the strategy prevents execution of the command."""
        return self is not MitigationStrategy.MONITOR

    @property
    def stops_robot(self) -> bool:
        """Whether the strategy also halts the robot."""
        return self is MitigationStrategy.BLOCK_AND_ESTOP

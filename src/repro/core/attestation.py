"""Remote software attestation of the control process (Coble et al.).

The paper's related work cites "secure software attestation for military
telesurgical robot systems": a verifier periodically challenges the robot
host to prove its software configuration — loaded code, configuration
files, link state — hashes to a known-good measurement.

This module attests the part of the simulated host the malware actually
changes: the process's **resolved symbol table** and the system's
**preload configuration** (LD_PRELOAD / /etc/ld.so.preload).  A clean
process measures to the enrolled baseline; a process linked against a
malicious shared library does not.

It also reproduces the paper's two criticisms (Section III.D):

- attestation is *periodic*: malware installed (or activated) between
  scans owns the TOCTOU window until the next scan — quantified by
  :meth:`AttestationMonitor.detection_latency_cycles`;
- each scan costs real time on the attested host (measured per scan), a
  budget the 1 ms control loop does not have to spare.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs.timing import Stopwatch
from repro.sysmodel.linker import SystemEnvironment
from repro.sysmodel.process import Process
from repro.sysmodel.syscalls import SYSCALL_NAMES


def _measure_process(process: Process, environment: SystemEnvironment) -> str:
    """Hash the process's link state and the system preload lists."""
    h = hashlib.sha256()
    h.update(process.name.encode())
    for symbol in SYSCALL_NAMES:
        fn = process.symbol(symbol)
        # A preloaded wrapper is a different function object, defined in a
        # different module/qualname, than the real syscall closure.
        h.update(symbol.encode())
        h.update(fn.__module__.encode())
        h.update(fn.__qualname__.encode())
    for library in environment.preload_list(user="surgeon"):
        h.update(library.name.encode())
        h.update(",".join(sorted(library.exports())).encode())
    return h.hexdigest()


@dataclass
class AttestationReport:
    """Result of one attestation scan."""

    cycle: int
    measurement: str
    trusted: bool
    elapsed_s: float


@dataclass
class AttestationMonitor:
    """Periodic attestation of the control process.

    Enroll the known-good measurement on a clean system, then call
    :meth:`tick` every control cycle; a scan runs every
    ``period_cycles`` cycles.
    """

    process: Process
    environment: SystemEnvironment
    period_cycles: int = 1000
    _baseline: Optional[str] = None
    _cycle: int = 0
    reports: List[AttestationReport] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.period_cycles < 1:
            raise ValueError("period_cycles must be >= 1")

    def enroll(self) -> str:
        """Record the current (presumed clean) measurement as baseline."""
        self._baseline = _measure_process(self.process, self.environment)
        return self._baseline

    @property
    def enrolled(self) -> bool:
        """Whether a baseline measurement exists."""
        return self._baseline is not None

    def scan(self) -> AttestationReport:
        """Run one attestation scan immediately.

        Raises
        ------
        RuntimeError
            If no baseline has been enrolled.
        """
        if self._baseline is None:
            raise RuntimeError("attestation baseline not enrolled")
        with Stopwatch() as probe:
            measurement = _measure_process(self.process, self.environment)
        elapsed = probe.elapsed_s
        report = AttestationReport(
            cycle=self._cycle,
            measurement=measurement,
            trusted=measurement == self._baseline,
            elapsed_s=elapsed,
        )
        self.reports.append(report)
        return report

    def tick(self) -> Optional[AttestationReport]:
        """Advance one control cycle; scan when the period elapses."""
        self._cycle += 1
        if self._cycle % self.period_cycles == 0:
            return self.scan()
        return None

    # -- analysis ---------------------------------------------------------------

    @property
    def compromised_detected(self) -> bool:
        """Whether any scan so far failed."""
        return any(not r.trusted for r in self.reports)

    def first_untrusted_cycle(self) -> Optional[int]:
        """Cycle of the first failing scan (None if all passed)."""
        for report in self.reports:
            if not report.trusted:
                return report.cycle
        return None

    def detection_latency_cycles(self, infection_cycle: int) -> Optional[int]:
        """Cycles between infection and the first failing scan.

        This is the TOCTOU window the paper warns about: everything the
        malware does inside it is already done when attestation notices.
        """
        first = self.first_untrusted_cycle()
        if first is None:
            return None
        return max(0, first - infection_cycle)

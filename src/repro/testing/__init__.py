"""Chaos engineering and golden-trace tooling for the execution engine.

The paper's claim — detection runs *before* corrupted commands reach the
robot — makes the reproduction's own pipeline reliability part of the
result: a campaign runner that silently drops shards or diverges between
serial and parallel modes corrupts Table IV / Figure 9 exactly like a
TOCTOU attack corrupts DAC commands.  This package applies the paper's
own fault-injection discipline to the execution engine itself:

- :mod:`repro.testing.faults` — a seedable, deterministic fault plan
  (:class:`FaultPlan`) and injector (:class:`ChaosInjector`) that make
  engine workers raise, crash (SIGKILL), or hang at chosen task indices
  and attempts, and corrupt cache shards (truncate, bit-flip, delete,
  stale meta) the moment they are written;
- :mod:`repro.testing.golden` — golden-trace fingerprints
  (:class:`GoldenStore`) pinning canonical simulation outputs so serial,
  parallel, and resumed-from-interrupt execution stay bit-identical.

Production paths pay nothing for any of this: the engine consults the
injector hook only when a ``REPRO_CHAOS_PLAN`` environment variable or an
explicit ``injector=`` argument is present.
"""

from repro.testing.differential import (
    EquivalenceReport,
    LaneOutcome,
    LaneRecipe,
    assert_equivalent,
    run_differential,
)
from repro.testing.faults import (
    CACHE_FAULT_KINDS,
    FLEET_FAULT_KINDS,
    TASK_FAULT_KINDS,
    ChaosFault,
    ChaosInjector,
    FaultPlan,
    FaultSpec,
)
from repro.testing.golden import GoldenStore, campaign_fingerprint

__all__ = [
    "CACHE_FAULT_KINDS",
    "FLEET_FAULT_KINDS",
    "TASK_FAULT_KINDS",
    "ChaosFault",
    "ChaosInjector",
    "EquivalenceReport",
    "FaultPlan",
    "FaultSpec",
    "GoldenStore",
    "LaneOutcome",
    "LaneRecipe",
    "assert_equivalent",
    "campaign_fingerprint",
    "run_differential",
]

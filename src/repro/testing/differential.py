"""Differential equivalence harness for batched multi-rig execution.

The batched execution path (:mod:`repro.sim.batch`) promises *bit
identity*: running N rigs as one ``(N, ...)`` batch must produce, per
lane, exactly the :class:`repro.sim.trace.RunTrace` the scalar
:class:`repro.sim.rig.SurgicalRig` produces from the same seeds — down
to the last float64 bit, alarm cycle, blocked packet and E-STOP reason.

This module is the referee.  A :class:`LaneRecipe` describes one lane as
a *factory*: guards, preload libraries and channels are stateful, so the
scalar and the batched run each build fresh objects from the same
recipe.  :func:`run_differential` executes both sides and returns an
:class:`EquivalenceReport` whose :meth:`~EquivalenceReport.assert_equal`
raises with a per-lane, per-field diff of the trace fingerprints on any
mismatch.

``tests/test_batch_equivalence.py`` drives this over fault-free runs,
scenario A/B attacks under every mitigation strategy, physical-fault
plans and supervisor degraded modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.pipeline import DetectorGuard, GuardSupervisor
from repro.sim.batch import BatchedSurgicalRig, LaneSpec
from repro.sim.trace import RunTrace

#: Builds a fresh (spec, trigger, record) triple — or a bare LaneSpec —
#: for one lane.  Must return *new* stateful objects on every call.
LaneFactory = Callable[[], Union[LaneSpec, Tuple]]

#: GuardStats counters compared between the scalar and batched run.
_STAT_FIELDS = (
    "packets_seen",
    "packets_evaluated",
    "alerts",
    "blocked",
    "coasted_cycles",
    "implausible_measurements",
    "stale_escalations",
    "alerts_dropped",
)


@dataclass
class LaneRecipe:
    """One lane of a differential run, as a reproducible factory.

    ``factory`` returns either a bare :class:`LaneSpec` or a
    ``(spec, trigger, record)`` triple as produced by
    :func:`repro.sim.runner.scenario_a_lane` /
    :func:`~repro.sim.runner.scenario_b_lane`; when a trigger/record pair
    is present the trace is finalized with it after the run, so attack
    bookkeeping (first active cycle, activation count) participates in
    the fingerprint comparison.
    """

    name: str
    factory: LaneFactory

    def materialize(self) -> Tuple[LaneSpec, Optional[object], Optional[object]]:
        made = self.factory()
        if isinstance(made, LaneSpec):
            return made, None, None
        spec, trigger, record = made
        return spec, trigger, record


@dataclass
class LaneOutcome:
    """One side's observable result for one lane."""

    trace: RunTrace
    fingerprint: dict
    guard_stats: Dict[str, int] = field(default_factory=dict)


@dataclass
class EquivalenceReport:
    """Scalar-vs-batched comparison over all lanes of one differential run."""

    names: List[str]
    scalar: List[LaneOutcome]
    batched: List[LaneOutcome]

    @property
    def mismatches(self) -> List[str]:
        """Human-readable description of every differing lane/field."""
        problems: List[str] = []
        for name, sc, ba in zip(self.names, self.scalar, self.batched):
            for key in sc.fingerprint:
                got = ba.fingerprint.get(key)
                if sc.fingerprint[key] != got:
                    problems.append(
                        f"lane {name!r}: fingerprint[{key!r}] "
                        f"scalar={sc.fingerprint[key]!r} batched={got!r}"
                    )
            for key in sc.guard_stats:
                got = ba.guard_stats.get(key)
                if sc.guard_stats[key] != got:
                    problems.append(
                        f"lane {name!r}: guard.{key} "
                        f"scalar={sc.guard_stats[key]} batched={got}"
                    )
        return problems

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    def assert_equal(self) -> None:
        """Raise ``AssertionError`` with the full per-lane diff on mismatch."""
        problems = self.mismatches
        if problems:
            raise AssertionError(
                "batched execution diverged from scalar:\n  "
                + "\n  ".join(problems)
            )


def _guard_stats(spec: LaneSpec) -> Dict[str, int]:
    guard = spec.guard
    if guard is None:
        return {}
    stats = guard.stats
    counters = {name: getattr(stats, name) for name in _STAT_FIELDS}
    if isinstance(guard, GuardSupervisor):
        counters["health"] = guard.health.value
    inner = guard.guard if isinstance(guard, GuardSupervisor) else guard
    if isinstance(inner, DetectorGuard):
        detector = inner.detector
        counters["detector_evaluations"] = detector.evaluations
        counters["detector_alerts"] = detector.alerts
    return counters


def _finalize_attack(trace: RunTrace, trigger, record) -> None:
    if trigger is None:
        return
    from repro.sim.runner import _finalize

    _finalize(trace, trigger, record)


def run_scalar(recipes: Sequence[LaneRecipe]) -> List[LaneOutcome]:
    """Run every lane alone through the ordinary scalar rig."""
    outcomes = []
    for recipe in recipes:
        spec, trigger, record = recipe.materialize()
        trace = spec.build().run()
        _finalize_attack(trace, trigger, record)
        outcomes.append(
            LaneOutcome(
                trace=trace,
                fingerprint=trace.fingerprint(),
                guard_stats=_guard_stats(spec),
            )
        )
    return outcomes


def run_batched(recipes: Sequence[LaneRecipe]) -> List[LaneOutcome]:
    """Run all lanes together through one :class:`BatchedSurgicalRig`."""
    made = [recipe.materialize() for recipe in recipes]
    rig = BatchedSurgicalRig([spec for spec, _, _ in made])
    traces = rig.run()
    outcomes = []
    for trace, (spec, trigger, record) in zip(traces, made):
        _finalize_attack(trace, trigger, record)
        outcomes.append(
            LaneOutcome(
                trace=trace,
                fingerprint=trace.fingerprint(),
                guard_stats=_guard_stats(spec),
            )
        )
    return outcomes


def run_differential(recipes: Sequence[LaneRecipe]) -> EquivalenceReport:
    """Execute both sides from fresh objects and compare lane by lane."""
    return EquivalenceReport(
        names=[recipe.name for recipe in recipes],
        scalar=run_scalar(recipes),
        batched=run_batched(recipes),
    )


def assert_equivalent(recipes: Sequence[LaneRecipe]) -> EquivalenceReport:
    """:func:`run_differential` + :meth:`EquivalenceReport.assert_equal`."""
    report = run_differential(recipes)
    report.assert_equal()
    return report

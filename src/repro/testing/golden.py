"""Golden-trace fingerprints and the differential regression store.

A *golden trace* is a small, canonical simulation output pinned as a
JSON fingerprint under ``tests/golden/``.  Fingerprints hash the raw
float64 bytes of every per-cycle array
(:meth:`repro.sim.trace.RunTrace.fingerprint`) or the canonical JSON of
every campaign outcome (:func:`campaign_fingerprint`), so two runs match
**iff** they are bit-identical.  The suite uses one golden per scenario
to assert three differential invariants at once:

- serial vs parallel execution produce the same bytes;
- a fresh campaign and one resumed from an interrupt produce the same
  bytes;
- today's code produces the same bytes as the commit that recorded the
  golden (Euler vs itself, across platforms).

``pytest --update-golden`` re-records every golden a test touches —
review the diff like any other code change, because it *is* the result
changing.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Sequence


def canonical_json_digest(obj: Any) -> str:
    """Short digest of ``obj``'s canonical (sorted-key) JSON form."""
    canonical = json.dumps(obj, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def outcomes_fingerprint(outcomes: Sequence[Any]) -> Dict[str, Any]:
    """Order-sensitive digest of a list of campaign :class:`RunOutcome`.

    Uses the cache layer's own serialization, so the fingerprint covers
    exactly the fields Table IV / Figure 9 are computed from, and float
    values round-trip bit-exactly through ``repr``.
    """
    from repro.experiments.campaigns import _outcome_to_dict

    dicts = [_outcome_to_dict(o) for o in outcomes]
    return {
        "runs": len(dicts),
        "outcomes_sha256": canonical_json_digest(dicts),
    }


def campaign_fingerprint(result: Any) -> Dict[str, Any]:
    """Fingerprint of one :class:`CampaignResult` (scenario + outcomes)."""
    fp = {"scenario": result.scenario}
    fp.update(outcomes_fingerprint(result.outcomes))
    return fp


class GoldenStore:
    """Loads, compares, and (on request) re-records golden fingerprints.

    ``check(name, actual)`` is the whole API surface a test needs: it
    fails with a field-by-field diff when ``actual`` drifts from the
    stored golden, and rewrites the golden instead when the store was
    opened with ``update=True`` (the ``--update-golden`` pytest flag).
    """

    def __init__(self, directory: Path, update: bool = False) -> None:
        self.directory = Path(directory)
        self.update = update

    def path(self, name: str) -> Path:
        return self.directory / f"{name}.json"

    def load(self, name: str) -> Dict[str, Any]:
        return json.loads(self.path(name).read_text())

    def save(self, name: str, data: Dict[str, Any]) -> Path:
        path = self.path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
        return path

    def check(self, name: str, actual: Dict[str, Any]) -> None:
        """Assert ``actual`` matches the stored golden (or re-record it)."""
        path = self.path(name)
        if self.update:
            self.save(name, actual)
            return
        if not path.exists():
            raise AssertionError(
                f"golden {path} does not exist; record it with "
                f"`pytest --update-golden` and commit the file"
            )
        expected = self.load(name)
        if actual == expected:
            return
        lines = [f"golden trace {name!r} drifted:"]
        for key in sorted(set(expected) | set(actual)):
            want, got = expected.get(key, "<absent>"), actual.get(key, "<absent>")
            if want != got:
                lines.append(f"  {key}: golden={want!r} actual={got!r}")
        lines.append(
            "if the change is intentional, re-record with "
            "`pytest --update-golden` and commit the diff"
        )
        raise AssertionError("\n".join(lines))

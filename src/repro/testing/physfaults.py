"""Physical-layer fault injection for the simulated rig.

Where :mod:`repro.testing.faults` stresses the *execution engine* (worker
crashes, cache corruption), this module stresses the *simulated robot
itself* — the everyday degradation an in-situ deployment of the paper's
detector must survive on a real RAVEN II:

- **encoder faults** (``encoder_dropout`` / ``encoder_glitch`` /
  ``encoder_stuck``) corrupt the quantized counts of every encoder read,
  via :attr:`repro.hw.encoder.EncoderBank.count_fault`;
- **DAC faults** (``dac_stuck`` / ``dac_saturate``) corrupt the values the
  USB board latches into the motor controllers *after* the guard decision,
  via :attr:`repro.hw.usb_board.UsbBoard.dac_fault` — output-stage faults
  no software layer can see directly;
- **network faults** (``packet_loss`` / ``packet_duplicate`` /
  ``packet_jitter`` / ``itp_corrupt``) impose windowed bursts on the
  console->robot UDP link via :attr:`repro.teleop.network.UdpChannel.fault`
  (``itp_corrupt`` flips wire bytes with
  :func:`repro.teleop.itp.corrupt_itp`, which the receiver's checksum
  turns into loss);
- **model faults** (``model_drift``) apply bounded inertia/friction drift
  to the *detector's* dynamic model via
  :meth:`repro.core.dynamic_model.RavenDynamicModel.apply_parameter_drift`
  — the plant stays nominal, only the model's view of it degrades.

A :class:`PhysFaultPlan` is seedable and JSON-serializable (the sibling of
:class:`~repro.testing.faults.FaultPlan`); per-cycle fault decisions are a
pure function of ``(plan seed, subsystem, control cycle)``, so the same
plan reproduces the same degradation regardless of how many times a
subsystem is read within a cycle or which process executes the run.

The injector reaches the rig either through ``RigConfig.phys_faults`` or
the ``REPRO_PHYS_FAULT_PLAN`` environment variable naming a saved plan
file.  With neither present the rig never imports this module and the
simulation is bit-identical to a build without it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import constants
from repro.envcfg import env_str
from repro.teleop.itp import corrupt_itp
from repro.teleop.network import ChannelFault

#: Environment variable naming a saved :class:`PhysFaultPlan` JSON file.
PLAN_ENV_VAR = "REPRO_PHYS_FAULT_PLAN"

#: Fault kinds per subsystem.
ENCODER_FAULT_KINDS = ("encoder_dropout", "encoder_glitch", "encoder_stuck")
DAC_FAULT_KINDS = ("dac_stuck", "dac_saturate")
NETWORK_FAULT_KINDS = (
    "packet_loss",
    "packet_duplicate",
    "packet_jitter",
    "itp_corrupt",
)
MODEL_FAULT_KINDS = ("model_drift",)

PHYS_FAULT_KINDS = (
    ENCODER_FAULT_KINDS + DAC_FAULT_KINDS + NETWORK_FAULT_KINDS + MODEL_FAULT_KINDS
)

#: Default encoder glitch magnitude (counts): far outside one cycle of real
#: motion, so the supervisor's plausibility screen can reject it.
DEFAULT_GLITCH_COUNTS = 2000.0

#: Default jitter-burst spread (seconds) at intensity 1.0.
DEFAULT_JITTER_S = 0.02

#: Default relative inertia/friction drift of the model at intensity 1.0.
DEFAULT_DRIFT_FRACTION = 0.4

#: Stable subsystem ids for the per-cycle RNG keying.
_SUBSYS_ENCODER = 0
_SUBSYS_DAC = 1
_SUBSYS_NETWORK = 2


@dataclass(frozen=True)
class PhysFaultSpec:
    """One physical fault, active during ``[start_s, stop_s)``.

    ``intensity`` is the per-cycle firing probability for stochastic kinds
    (dropout, glitch, loss, duplicate, corrupt) and the severity scale for
    continuous kinds (saturate, jitter, drift); ``value`` overrides the
    kind's default magnitude (glitch counts, stuck DAC counts, saturation
    limit, jitter seconds, drift fraction).  ``axis`` restricts encoder/DAC
    faults to one axis/channel (``None`` = all).
    """

    kind: str
    intensity: float = 1.0
    axis: Optional[int] = None
    start_s: float = 0.0
    stop_s: Optional[float] = None
    value: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in PHYS_FAULT_KINDS:
            raise ValueError(
                f"unknown physical fault kind {self.kind!r}; "
                f"choose from {PHYS_FAULT_KINDS}"
            )
        if not (0.0 <= self.intensity <= 1.0):
            raise ValueError("intensity must be in [0, 1]")
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.stop_s is not None and self.stop_s <= self.start_s:
            raise ValueError("stop_s must exceed start_s")

    def active(self, now: float) -> bool:
        """Whether the fault window covers time ``now``."""
        if now < self.start_s:
            return False
        return self.stop_s is None or now < self.stop_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "intensity": self.intensity,
            "axis": self.axis,
            "start_s": self.start_s,
            "stop_s": self.stop_s,
            "value": self.value,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PhysFaultSpec":
        return cls(
            kind=data["kind"],
            intensity=data.get("intensity", 1.0),
            axis=data.get("axis"),
            start_s=data.get("start_s", 0.0),
            stop_s=data.get("stop_s"),
            value=data.get("value"),
        )


def _kinds_of(specs: Sequence[PhysFaultSpec], kinds: Tuple[str, ...]) -> List[PhysFaultSpec]:
    return [s for s in specs if s.kind in kinds]


@dataclass
class PhysFaultPlan:
    """A deterministic, serializable set of physical-layer faults."""

    specs: List[PhysFaultSpec] = field(default_factory=list)
    seed: int = 0

    @classmethod
    def single(cls, kind: str, intensity: float = 1.0, seed: int = 0, **kwargs: Any) -> "PhysFaultPlan":
        """A plan with one fault of ``kind`` (convenience for sweeps)."""
        return cls(specs=[PhysFaultSpec(kind=kind, intensity=intensity, **kwargs)], seed=seed)

    # -- subsystem views ---------------------------------------------------------

    @property
    def encoder_specs(self) -> List[PhysFaultSpec]:
        return _kinds_of(self.specs, ENCODER_FAULT_KINDS)

    @property
    def dac_specs(self) -> List[PhysFaultSpec]:
        return _kinds_of(self.specs, DAC_FAULT_KINDS)

    @property
    def network_specs(self) -> List[PhysFaultSpec]:
        return _kinds_of(self.specs, NETWORK_FAULT_KINDS)

    @property
    def model_specs(self) -> List[PhysFaultSpec]:
        return _kinds_of(self.specs, MODEL_FAULT_KINDS)

    # -- (de)serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "specs": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PhysFaultPlan":
        return cls(
            specs=[PhysFaultSpec.from_dict(d) for d in data.get("specs", [])],
            seed=data.get("seed", 0),
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the plan as JSON (for the ``REPRO_PHYS_FAULT_PLAN`` hook)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=1))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PhysFaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))

    @classmethod
    def from_env(cls) -> Optional["PhysFaultPlan"]:
        """The plan named by ``REPRO_PHYS_FAULT_PLAN``, if any."""
        path = env_str(PLAN_ENV_VAR)
        if not path:
            return None
        return cls.load(path)


def coerce_plan(
    plan: Union["PhysFaultPlan", dict, str, Path]
) -> "PhysFaultPlan":
    """Accept a plan object, its dict form, or a path to a saved plan."""
    if isinstance(plan, PhysFaultPlan):
        return plan
    if isinstance(plan, dict):
        return PhysFaultPlan.from_dict(plan)
    return PhysFaultPlan.load(plan)


class _PhysChannelFault(ChannelFault):
    """Applies a plan's network faults to one UDP channel."""

    def __init__(self, injector: "PhysFaultInjector") -> None:
        self.injector = injector

    def on_send(self, data: bytes, now: float) -> List[Tuple[bytes, float]]:
        return self.injector.network_deliveries(data, now)


class PhysFaultInjector:
    """Wires a :class:`PhysFaultPlan` into one :class:`SurgicalRig`.

    All stochastic decisions draw from a generator keyed on
    ``(plan seed, subsystem, control cycle)``: repeated reads within one
    cycle see the same corruption (a physical fault, not resampled noise)
    and runs are reproducible across processes.
    """

    def __init__(self, plan: Union[PhysFaultPlan, dict, str, Path]) -> None:
        self.plan = coerce_plan(plan)
        self.now = 0.0
        #: Held counts per stuck-encoder spec index (latched on first
        #: active read).
        self._stuck_counts: Dict[int, np.ndarray] = {}
        # Visibility counters (diagnostics / tests).
        self.encoder_faults_fired = 0
        self.dac_faults_fired = 0
        self.packets_dropped = 0
        self.packets_duplicated = 0
        self.packets_jittered = 0
        self.packets_corrupted = 0

    # -- timekeeping -------------------------------------------------------------

    def set_time(self, now: float) -> None:
        """Advance the injector's clock (called by the rig each cycle)."""
        self.now = now

    @property
    def cycle(self) -> int:
        return int(round(self.now / constants.CONTROL_PERIOD_S))

    def _rng(self, subsystem: int, cycle: Optional[int] = None) -> np.random.Generator:
        key = (self.plan.seed, subsystem, self.cycle if cycle is None else cycle)
        return np.random.default_rng(np.random.SeedSequence(entropy=key))

    # -- rig installation --------------------------------------------------------

    def install(self, rig) -> None:
        """Attach every configured fault family to ``rig``'s components."""
        plan = self.plan
        if plan.encoder_specs:
            rig.encoders.count_fault = self.encoder_hook
        if plan.dac_specs:
            rig.usb_board.dac_fault = self.dac_hook
        if plan.network_specs:
            rig.channel.fault = _PhysChannelFault(self)
        if plan.model_specs and rig.guard is not None:
            self.apply_model_faults(rig.guard)

    def apply_model_faults(self, guard) -> None:
        """Drift the detector-side dynamic model per the plan's specs.

        Accepts a bare :class:`~repro.core.pipeline.DetectorGuard` or a
        :class:`~repro.core.pipeline.GuardSupervisor` wrapping one.
        """
        inner = getattr(guard, "guard", guard)
        model = inner.estimator.model
        for spec in self.plan.model_specs:
            fraction = DEFAULT_DRIFT_FRACTION if spec.value is None else spec.value
            model.apply_parameter_drift(1.0 + spec.intensity * fraction)

    # -- encoder faults ----------------------------------------------------------

    def encoder_hook(self, counts: np.ndarray) -> np.ndarray:
        """The :attr:`EncoderBank.count_fault` implementation."""
        now = self.now
        active = [
            (i, s)
            for i, s in enumerate(self.plan.specs)
            if s.kind in ENCODER_FAULT_KINDS and s.active(now)
        ]
        if not active:
            return counts
        out = counts.copy()
        rng = self._rng(_SUBSYS_ENCODER)
        fired = False
        for index, spec in active:
            axes = range(len(out)) if spec.axis is None else (spec.axis,)
            if spec.kind == "encoder_stuck":
                held = self._stuck_counts.setdefault(index, counts.copy())
                for axis in axes:
                    out[axis] = held[axis]
                fired = True
            elif spec.kind == "encoder_dropout":
                if rng.random() < spec.intensity:
                    # The read fails: the register reports zero counts.
                    for axis in axes:
                        out[axis] = 0
                    fired = True
            elif spec.kind == "encoder_glitch":
                if rng.random() < spec.intensity:
                    magnitude = (
                        DEFAULT_GLITCH_COUNTS if spec.value is None else spec.value
                    )
                    axis = (
                        int(rng.integers(len(out)))
                        if spec.axis is None
                        else spec.axis
                    )
                    sign = 1.0 if rng.random() < 0.5 else -1.0
                    out[axis] += int(round(sign * magnitude))
                    fired = True
        if fired:
            self.encoder_faults_fired += 1
        return out

    # -- DAC faults --------------------------------------------------------------

    def dac_hook(self, dac_values: Sequence[int]) -> List[int]:
        """The :attr:`UsbBoard.dac_fault` implementation."""
        now = self.now
        out = [int(v) for v in dac_values]
        fired = False
        for spec in self.plan.dac_specs:
            if not spec.active(now):
                continue
            channels = range(len(out)) if spec.axis is None else (spec.axis,)
            if spec.kind == "dac_stuck":
                stuck = 0 if spec.value is None else int(spec.value)
                for ch in channels:
                    if out[ch] != stuck:
                        fired = True
                    out[ch] = stuck
            elif spec.kind == "dac_saturate":
                limit = (
                    int(spec.value)
                    if spec.value is not None
                    else int(
                        round(
                            (1.0 - 0.9 * spec.intensity)
                            * constants.DAC_FULL_SCALE
                        )
                    )
                )
                for ch in channels:
                    clipped = max(-limit, min(limit, out[ch]))
                    if clipped != out[ch]:
                        fired = True
                    out[ch] = clipped
        if fired:
            self.dac_faults_fired += 1
        return out

    # -- network faults ----------------------------------------------------------

    def network_deliveries(
        self, data: bytes, now: float
    ) -> List[Tuple[bytes, float]]:
        """Map one console datagram to its (possibly degraded) deliveries."""
        active = [s for s in self.plan.network_specs if s.active(now)]
        if not active:
            return [(data, 0.0)]
        cycle = int(round(now / constants.CONTROL_PERIOD_S))
        rng = self._rng(_SUBSYS_NETWORK, cycle)
        extra_delay = 0.0
        duplicated = False
        for spec in active:
            if spec.kind == "packet_loss":
                if rng.random() < spec.intensity:
                    self.packets_dropped += 1
                    return []
            elif spec.kind == "itp_corrupt":
                if rng.random() < spec.intensity:
                    data = corrupt_itp(data, int(rng.integers(len(data) or 1)))
                    self.packets_corrupted += 1
            elif spec.kind == "packet_jitter":
                spread = DEFAULT_JITTER_S if spec.value is None else spec.value
                jitter = spec.intensity * spread * float(rng.random())
                if jitter > 0:
                    extra_delay += jitter
                    self.packets_jittered += 1
            elif spec.kind == "packet_duplicate":
                if rng.random() < spec.intensity:
                    duplicated = True
        deliveries = [(data, extra_delay)]
        if duplicated:
            # The duplicate trails by one cycle, as a retransmit would.
            deliveries.append((data, extra_delay + constants.CONTROL_PERIOD_S))
            self.packets_duplicated += 1
        return deliveries

    # -- diagnostics -------------------------------------------------------------

    def summary(self) -> dict:
        """Counters of what actually fired during the run."""
        return {
            "encoder_faults_fired": self.encoder_faults_fired,
            "dac_faults_fired": self.dac_faults_fired,
            "packets_dropped": self.packets_dropped,
            "packets_duplicated": self.packets_duplicated,
            "packets_jittered": self.packets_jittered,
            "packets_corrupted": self.packets_corrupted,
        }

"""Deterministic fault injection for the execution and caching layers.

A :class:`FaultPlan` is a declarative, JSON-serializable list of
:class:`FaultSpec` entries.  Two families of faults exist:

**Task faults** (``raise`` / ``crash`` / ``hang``) fire inside engine
workers.  They are keyed on ``(task index, attempt)`` so they are
deterministic across processes without shared state: a spec with
``times=2`` fails attempts 0 and 1 of its task and lets attempt 2
succeed, which is exactly what a bounded-retry engine must survive.
``crash`` sends ``SIGKILL`` to the worker process (the parent observes a
broken pool); when the same task later executes in the parent — the
engine's serial-degradation path — the crash downgrades to an ordinary
:class:`ChaosFault` so the test process itself is never killed.

**Cache faults** (``truncate`` / ``bitflip`` / ``delete`` /
``stale_meta``) fire in the parent the moment a matching cache shard is
written, simulating torn writes, media corruption, lost files, and
stale-schema metadata.  Each spec fires at most ``times`` times, counted
in-process by the :class:`ChaosInjector`.

The injector reaches the engine either as an explicit ``injector=``
argument or via the ``REPRO_CHAOS_PLAN`` environment variable naming a
saved plan file — the hook the chaos suite uses to reach worker fan-out
buried under ``get_campaign``.  With neither present the engine never
imports this module.
"""

from __future__ import annotations

import fnmatch
import json
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.envcfg import env_str
from repro.errors import ChaosFault

#: Environment variable naming a saved :class:`FaultPlan` JSON file.
PLAN_ENV_VAR = "REPRO_CHAOS_PLAN"

#: Fault kinds that fire inside engine workers, keyed by task index.
TASK_FAULT_KINDS = ("raise", "crash", "hang")

#: Fault kinds that corrupt cache files as they are written.
CACHE_FAULT_KINDS = ("truncate", "bitflip", "delete", "stale_meta")

#: Fault kinds targeting fleet sessions (see :mod:`repro.fleet`):
#: ``session_kill`` drops a session's in-memory runtime (it must resume
#: from its store checkpoint), ``store_corrupt`` corrupts the session's
#: latest stored snapshot, ``slow_consumer`` makes the session stop
#: draining its ingest queue for ``hang_s`` fleet ticks.
FLEET_FAULT_KINDS = ("session_kill", "store_corrupt", "slow_consumer")

#: ``times`` value meaning "fire on every attempt, forever".
ALWAYS = -1


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    ``index`` targets a task position for task faults; ``match`` is an
    ``fnmatch`` pattern against the written file's name for cache faults.
    ``times`` bounds how many attempts (task faults) or writes (cache
    faults) the spec affects; :data:`ALWAYS` never stops firing.

    For fleet faults ``match`` is an ``fnmatch`` pattern against the
    session id and ``index`` is the earliest fleet tick the spec may fire
    at (``None`` = any tick); ``times`` bounds firings per spec as usual.
    """

    kind: str
    index: Optional[int] = None
    match: Optional[str] = None
    times: int = 1
    hang_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind in TASK_FAULT_KINDS:
            if self.index is None:
                raise ValueError(f"{self.kind!r} fault needs a task index")
        elif self.kind in CACHE_FAULT_KINDS:
            if self.match is None:
                raise ValueError(f"{self.kind!r} fault needs a file match pattern")
        elif self.kind in FLEET_FAULT_KINDS:
            if self.match is None:
                raise ValueError(
                    f"{self.kind!r} fault needs a session-id match pattern"
                )
        else:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from "
                f"{TASK_FAULT_KINDS + CACHE_FAULT_KINDS + FLEET_FAULT_KINDS}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "index": self.index,
            "match": self.match,
            "times": self.times,
            "hang_s": self.hang_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        return cls(
            kind=data["kind"],
            index=data.get("index"),
            match=data.get("match"),
            times=data.get("times", 1),
            hang_s=data.get("hang_s", 0.0),
        )


@dataclass
class FaultPlan:
    """A deterministic, serializable collection of faults."""

    specs: List[FaultSpec] = field(default_factory=list)
    seed: int = 0

    @classmethod
    def random_task_faults(
        cls,
        seed: int,
        n_tasks: int,
        rate: float = 0.2,
        kinds: Sequence[str] = ("raise",),
        times: int = 1,
    ) -> "FaultPlan":
        """A seeded plan faulting ~``rate`` of ``n_tasks`` task indices.

        Pure function of its arguments (a private :mod:`random` instance),
        so the same seed reproduces the same chaos everywhere.
        """
        import random

        rng = random.Random(seed)
        specs = [
            FaultSpec(kind=rng.choice(list(kinds)), index=i, times=times)
            for i in range(n_tasks)
            if rng.random() < rate
        ]
        return cls(specs=specs, seed=seed)

    # -- task faults -------------------------------------------------------------

    def task_fault(self, index: int, attempt: int) -> Optional[FaultSpec]:
        """The fault to fire for ``(index, attempt)``, if any."""
        for spec in self.specs:
            if spec.kind not in TASK_FAULT_KINDS or spec.index != index:
                continue
            if spec.times == ALWAYS or attempt < spec.times:
                return spec
        return None

    @property
    def has_task_faults(self) -> bool:
        return any(s.kind in TASK_FAULT_KINDS for s in self.specs)

    @property
    def has_cache_faults(self) -> bool:
        return any(s.kind in CACHE_FAULT_KINDS for s in self.specs)

    @property
    def has_fleet_faults(self) -> bool:
        return any(s.kind in FLEET_FAULT_KINDS for s in self.specs)

    # -- (de)serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "specs": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            specs=[FaultSpec.from_dict(d) for d in data.get("specs", [])],
            seed=data.get("seed", 0),
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the plan as JSON (for the ``REPRO_CHAOS_PLAN`` hook)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=1))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))


def _in_worker_process() -> bool:
    """Whether this process is a pool worker (not the engine's parent)."""
    return multiprocessing.parent_process() is not None


@dataclass
class FaultyCall:
    """Picklable wrapper the engine installs around its worker function.

    The engine ships tasks as ``(index, attempt, task)`` triples when
    chaos is active; the wrapper consults the plan before delegating to
    the real worker.
    """

    worker: Callable[[Any], Any]
    plan: FaultPlan

    def __call__(self, packed: Tuple[int, int, Any]) -> Any:
        index, attempt, task = packed
        spec = self.plan.task_fault(index, attempt)
        if spec is not None:
            self.fire(spec, index, attempt)
        return self.worker(task)

    def fire(self, spec: FaultSpec, index: int, attempt: int) -> None:
        if spec.kind == "hang":
            time.sleep(spec.hang_s)
            return  # hung past any deadline, then behaves normally
        if spec.kind == "crash" and _in_worker_process():
            os.kill(os.getpid(), signal.SIGKILL)
        # "raise", or a "crash" executing in the parent process (the
        # serial-degradation path), where SIGKILL would kill the caller.
        raise ChaosFault(
            f"injected {spec.kind!r} fault at task {index}, attempt {attempt}"
        )


class ChaosInjector:
    """Applies a :class:`FaultPlan` to the engine and the cache layer."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._cache_fired: Dict[int, int] = {}
        self._fleet_fired: Dict[int, int] = {}

    @classmethod
    def from_env(cls) -> Optional["ChaosInjector"]:
        """The injector named by ``REPRO_CHAOS_PLAN``, if any."""
        path = env_str(PLAN_ENV_VAR)
        if not path:
            return None
        return cls(FaultPlan.load(path))

    # -- engine hook -------------------------------------------------------------

    @property
    def wants_task_faults(self) -> bool:
        return self.plan.has_task_faults

    def wrap(self, worker: Callable[[Any], Any]) -> FaultyCall:
        """The chaos-aware worker the engine substitutes for ``worker``."""
        return FaultyCall(worker, self.plan)

    # -- cache hook --------------------------------------------------------------

    def on_file_written(self, path: Union[str, Path]) -> None:
        """Corrupt ``path`` if an unspent cache fault matches its name."""
        path = Path(path)
        for i, spec in enumerate(self.plan.specs):
            if spec.kind not in CACHE_FAULT_KINDS:
                continue
            if not fnmatch.fnmatch(path.name, spec.match):
                continue
            fired = self._cache_fired.get(i, 0)
            if spec.times != ALWAYS and fired >= spec.times:
                continue
            self._cache_fired[i] = fired + 1
            self._corrupt(path, spec)
            return

    # -- fleet hook --------------------------------------------------------------

    @property
    def wants_fleet_faults(self) -> bool:
        return self.plan.has_fleet_faults

    def fleet_fault(self, session_id: str, tick: int) -> Optional[FaultSpec]:
        """The unspent fleet fault matching ``session_id`` at ``tick``.

        Deterministic: specs are consulted in plan order, the first
        eligible one fires (its in-process counter advances), so the same
        plan against the same session schedule injects the same faults.
        """
        for i, spec in enumerate(self.plan.specs):
            if spec.kind not in FLEET_FAULT_KINDS:
                continue
            if not fnmatch.fnmatch(session_id, spec.match):
                continue
            if spec.index is not None and tick < spec.index:
                continue
            fired = self._fleet_fired.get(i, 0)
            if spec.times != ALWAYS and fired >= spec.times:
                continue
            self._fleet_fired[i] = fired + 1
            return spec
        return None

    @staticmethod
    def _corrupt(path: Path, spec: FaultSpec) -> None:
        if spec.kind == "delete":
            path.unlink()
            return
        data = path.read_bytes()
        if spec.kind == "truncate":
            path.write_bytes(data[: len(data) // 2])
        elif spec.kind == "bitflip":
            flipped = bytearray(data)
            flipped[len(flipped) // 2] ^= 0x20
            path.write_bytes(bytes(flipped))
        elif spec.kind == "stale_meta":
            payload = json.loads(data.decode())
            payload["schema"] = -1
            path.write_text(json.dumps(payload, indent=1))

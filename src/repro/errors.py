"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still distinguishing subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class KinematicsError(ReproError):
    """Raised when a kinematic computation fails (e.g. unreachable pose)."""


class InverseKinematicsError(KinematicsError):
    """Raised when inverse kinematics has no solution for a target pose."""


class WorkspaceError(KinematicsError):
    """Raised when a pose or joint vector violates workspace/joint limits."""


class DynamicsError(ReproError):
    """Raised on invalid dynamic-model configuration or state."""


class IntegrationError(DynamicsError):
    """Raised when a numerical integration step fails (NaN/Inf state)."""


class PacketError(ReproError):
    """Raised on malformed protocol packets (USB or ITP)."""


class ChecksumError(PacketError):
    """Raised when a packet checksum does not match its payload."""


class SafetyViolation(ReproError):
    """Raised by software safety checks when a command exceeds limits."""


class StateMachineError(ReproError):
    """Raised on an illegal operational state-machine transition."""


class SyscallError(ReproError):
    """Raised by the simulated system-call layer (bad fd, closed table)."""


class LinkerError(ReproError):
    """Raised by the simulated dynamic linker (unknown symbol, bad wrapper)."""


class AttackConfigError(ReproError):
    """Raised when an attack scenario is configured inconsistently."""


class DetectorError(ReproError):
    """Raised when the anomaly detector is used before calibration."""


class SimulationError(ReproError):
    """Raised when the simulation rig is wired or driven incorrectly."""


class ExecutionError(ReproError):
    """Raised by the parallel execution engine (worker fan-out, caching)."""


class TaskExecutionError(ExecutionError):
    """A task failed every attempt the engine's retry policy allowed.

    Carries the batch ``label``, the failing ``index`` within it, and the
    number of ``attempts`` made, so campaign interrupts are attributable
    to one grid cell.
    """

    def __init__(self, label: str, index: int, attempts: int, cause: BaseException):
        super().__init__(
            f"{label}[{index}] failed after {attempts} attempt(s): "
            f"{type(cause).__name__}: {cause}"
        )
        self.label = label
        self.index = index
        self.attempts = attempts


class CacheCorruptionError(ExecutionError):
    """A cache file failed validation and could not be quarantined."""


class ChaosFault(ExecutionError):
    """An error injected deliberately by the fault-injection harness."""


class FleetError(ReproError):
    """Raised by the fleet supervisor (session registry, ingest, packs)."""


class SessionStoreError(FleetError):
    """A session-store operation failed after exhausting its retry policy."""


class SnapshotIntegrityError(SessionStoreError):
    """A stored session snapshot failed its checksum or schema validation."""


class BackpressureError(FleetError):
    """An ingest queue rejected a frame because it is full (bounded queues
    shed load explicitly instead of silently dropping telemetry)."""


class ServiceError(ReproError):
    """Raised by the detection-as-a-service layer (workers, frontend)."""


class ProtocolError(ServiceError):
    """A wire message violated the service protocol (bad framing, bad
    JSON, unsupported version, or a malformed/oversized payload)."""


class WorkerUnavailableError(ServiceError):
    """A service worker could not be reached (connection refused, reset,
    or EOF mid-conversation) — the trigger for session re-homing."""

    def __init__(self, worker: str, detail: str) -> None:
        super().__init__(f"worker {worker!r} unavailable: {detail}")
        self.worker = worker

"""Simulation framework (Figure 7(a) of the paper).

Wires the master console emulator, the network channel, the control
software process (with any preloaded malicious libraries), the USB board,
the PLC and the physical plant into a single deterministic 1 kHz loop, and
records everything needed by the evaluation.

Public API
----------
- :class:`SurgicalRig`, :class:`RigConfig` — system wiring and execution.
- :class:`RunTrace` — recorded run data with impact analysis helpers.
- :mod:`repro.sim.runner` — high-level experiment entry points.
"""

from repro.sim.trace import RunTrace
from repro.sim.rig import RigConfig, SurgicalRig
from repro.sim.runner import (
    run_fault_free,
    run_model_validation,
    run_scenario_a,
    run_scenario_b,
    train_thresholds,
)

__all__ = [
    "RigConfig",
    "RunTrace",
    "SurgicalRig",
    "run_fault_free",
    "run_model_validation",
    "run_scenario_a",
    "run_scenario_b",
    "train_thresholds",
]

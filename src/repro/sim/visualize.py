"""Trajectory visualization: the graphic simulator's headless stand-in.

The paper's simulation framework includes "a graphic simulator that
animates the robot movements in real time by ... mapping robotic arms and
instruments movements to CAD models ... in a 3D virtual environment".
This module is the headless equivalent: it renders a recorded
:class:`~repro.sim.trace.RunTrace` to a standalone SVG with the three
orthographic projections of the tool-tip path, the commanded (desired)
path, and event markers (attack activation, detector alerts, E-STOPs).

Pure standard library — the SVG is assembled as text.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sim.trace import RunTrace

#: Projection planes: (title, index of abscissa, index of ordinate).
_PROJECTIONS = (("top (x-y)", 0, 1), ("front (x-z)", 0, 2), ("side (y-z)", 1, 2))

_PANEL = 260
_MARGIN = 42


def _scale(points: np.ndarray, ax: int, ay: int) -> Tuple[np.ndarray, float]:
    """Map (n, 3) points onto panel coordinates for one projection."""
    p = points[:, (ax, ay)]
    lo = p.min(axis=0)
    hi = p.max(axis=0)
    span = float(max((hi - lo).max(), 1e-6))
    scale = (_PANEL - 2 * 14) / span
    xy = (p - lo) * scale + 14
    xy[:, 1] = _PANEL - xy[:, 1]  # SVG y grows downward
    return xy, span


def _polyline(xy: np.ndarray, color: str, width: float, dash: str = "") -> str:
    pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in xy[:: max(1, len(xy) // 800)])
    dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
    return (
        f'<polyline points="{pts}" fill="none" stroke="{color}" '
        f'stroke-width="{width}"{dash_attr}/>'
    )


def _marker(xy: np.ndarray, index: int, color: str, label: str) -> str:
    index = min(max(index, 0), len(xy) - 1)
    x, y = xy[index]
    return (
        f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="{color}">'
        f"<title>{label}</title></circle>"
    )


def render_svg(
    trace: RunTrace,
    reference: Optional[RunTrace] = None,
    title: str = "tool-tip trajectory",
) -> str:
    """Render a run trace (and optional fault-free reference) to SVG text.

    Raises
    ------
    ValueError
        If the trace holds fewer than two samples.
    """
    if len(trace) < 2:
        raise ValueError("trace too short to render")
    tips = trace.tip_array
    pos_d = np.vstack(trace.pos_d)
    ref = reference.tip_array if reference is not None and len(reference) else None

    width = len(_PROJECTIONS) * (_PANEL + _MARGIN) + _MARGIN
    height = _PANEL + 2 * _MARGIN + 30
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<text x="{_MARGIN}" y="18" font-size="14">{title}</text>',
    ]

    for i, (name, ax, ay) in enumerate(_PROJECTIONS):
        ox = _MARGIN + i * (_PANEL + _MARGIN)
        oy = _MARGIN
        combined = tips if ref is None else np.vstack([tips, ref])
        # Use a shared bounding box so actual/desired/reference align.
        all_points = np.vstack([combined, pos_d])
        xy_all, span = _scale(all_points, ax, ay)
        n = len(tips)
        xy_tip = xy_all[:n]
        if ref is not None:
            xy_ref = xy_all[n : n + len(ref)]
            xy_des = xy_all[n + len(ref) :]
        else:
            xy_ref = None
            xy_des = xy_all[n:]

        parts.append(f'<g transform="translate({ox},{oy})">')
        parts.append(
            f'<rect width="{_PANEL}" height="{_PANEL}" fill="#fbfbfb" '
            f'stroke="#888"/>'
        )
        parts.append(f'<text x="4" y="-6">{name}  (span {span * 1e3:.1f} mm)</text>')
        if xy_ref is not None:
            parts.append(_polyline(xy_ref, "#9ecae1", 1.2))
        parts.append(_polyline(xy_des, "#bbbbbb", 1.0, dash="4,3"))
        parts.append(_polyline(xy_tip, "#d62728", 1.6))
        if trace.attack_first_cycle is not None:
            parts.append(
                _marker(xy_tip, trace.attack_first_cycle, "#000000", "attack start")
            )
        for cycle in trace.detector_alert_cycles[:5]:
            if cycle >= 0:
                parts.append(_marker(xy_tip, cycle, "#2ca02c", "detector alert"))
        for when, reason in trace.estop_events[:5]:
            index = int(round((when - trace.times[0]) / trace.dt))
            parts.append(_marker(xy_tip, index, "#ff7f0e", f"E-STOP: {reason}"))
        parts.append("</g>")

    legend_y = _PANEL + _MARGIN + 18
    legend = [
        ("#d62728", "actual tip"),
        ("#bbbbbb", "desired (pos_d)"),
        ("#9ecae1", "fault-free reference"),
        ("#000000", "attack start"),
        ("#2ca02c", "detector alert"),
        ("#ff7f0e", "E-STOP"),
    ]
    x = _MARGIN
    for color, label in legend:
        parts.append(f'<rect x="{x}" y="{legend_y - 9}" width="10" height="10" fill="{color}"/>')
        parts.append(f'<text x="{x + 14}" y="{legend_y}">{label}</text>')
        x += 14 + 8 * len(label) + 24
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(
    trace: RunTrace,
    path: Union[str, Path],
    reference: Optional[RunTrace] = None,
    title: str = "tool-tip trajectory",
) -> Path:
    """Render and write the SVG; returns the path written."""
    path = Path(path)
    path.write_text(render_svg(trace, reference=reference, title=title))
    return path

"""Batched execution of N independent surgical rigs in one process.

:class:`BatchedSurgicalRig` constructs N ordinary :class:`SurgicalRig`
instances (one per :class:`LaneSpec`), then rewires them so every control
cycle advances all lanes together:

- the N scalar plants are replaced by one :class:`repro.dynamics.batch
  .BatchedPlant` plus per-lane views, so the physics integrates as one
  ``(N, ...)`` operation;
- each lane's :class:`DetectorGuard` gets a *batch sink*: the guard's
  per-packet bookkeeping, supervisor screening and mitigation decisions
  stay scalar and per lane, but the numeric core (estimator sync/coast,
  one-step model prediction) runs once, batched, through
  :class:`repro.core.estimator.BatchedNextStateEstimator`;
- DAC latching onto the motor controllers is deferred within the cycle
  (the controller's USB write is its last effectful statement, so the
  deferral is invisible to the software stack) and flushed after the
  batched guard decisions, preserving the exact per-lane latch sequence —
  including zeroed latches for blocked packets and physical-layer
  ``dac_fault`` hooks firing exactly once per latch.

The result is **bit-identical per lane** to running each rig alone:
``RunTrace.fingerprint()`` of lane *i* equals the scalar run's, including
alarm cycles, blocked packets, PLC E-STOPs and degraded-mode transitions.
``tests/test_batch_equivalence.py`` enforces this with a differential
harness (:mod:`repro.testing.differential`).

Lanes may differ in seed, trajectory, pedal schedule, attack preloads,
physical-fault plans, thresholds, mitigation strategy and model parameter
error.  They must share the control period, run duration, plant
integrator/substeps and (across guarded lanes) the model integrator —
asserted at construction.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import constants
from repro.control.state_machine import RobotState
from repro.core.estimator import BatchedNextStateEstimator
from repro.core.pipeline import DetectorGuard, GuardSupervisor
from repro.dynamics.batch import BatchedPlant, require_homogeneous
from repro.errors import SimulationError
from repro.hw.usb_board import UsbBoard
from repro.hw.usb_packet import CommandPacket
from repro.obs.runtime import get_runtime
from repro.sim.rig import RigConfig, SurgicalRig
from repro.sim.trace import RunTrace
from repro.sysmodel.linker import SharedLibrary, SystemEnvironment
from repro.teleop.network import UdpChannel


@dataclass
class LaneSpec:
    """Everything needed to construct one lane's :class:`SurgicalRig`.

    Mirrors the ``SurgicalRig`` constructor.  Guard, preload libraries and
    channel objects are stateful, so a spec must not be shared between a
    scalar and a batched run — build fresh objects per run (see
    :mod:`repro.testing.differential`).
    """

    config: RigConfig
    guard: Optional[Union[DetectorGuard, GuardSupervisor]] = None
    preload_libraries: Sequence[SharedLibrary] = ()
    trajectory: Optional[object] = None
    environment: Optional[SystemEnvironment] = None
    channel: Optional[UdpChannel] = None

    def build(self) -> SurgicalRig:
        """Construct the lane's rig."""
        return SurgicalRig(
            self.config,
            trajectory=self.trajectory,
            preload_libraries=self.preload_libraries,
            guard=self.guard,
            environment=self.environment,
            channel=self.channel,
        )


class _DeferredLatchBoard:
    """Defers a USB board's DAC latches until the batch sink has decided.

    ``UsbBoard.fd_write`` calls ``board._latch(values)`` as its final act;
    this shim captures those calls in order and replays them through the
    original ``_latch`` (which applies any ``dac_fault`` hook and latches
    onto the motor controller) at flush time.  The batched guard
    coordinator can retroactively zero a pending entry when its deferred
    evaluation decides the packet is blocked — producing the same latch
    sequence, fault-hook call count and counters as the scalar path.
    """

    def __init__(self, board: UsbBoard) -> None:
        self.board = board
        self.pending: List[Sequence[float]] = []
        self._real_latch = board._latch
        board._latch = self.pending.append

    def next_index(self) -> int:
        return len(self.pending)

    def block(self, index: int) -> None:
        """Replace a pending latch with the blocked-command zero latch."""
        self.pending[index] = [0, 0, 0]
        self.board.packets_blocked += 1

    def flush(self) -> None:
        # Mutate in place: ``board._latch`` is bound to this exact list's
        # ``append``, so rebinding ``self.pending`` would orphan it.
        pending = self.pending[:]
        self.pending.clear()
        for values in pending:
            self._real_latch(values)

    def detach(self) -> None:
        self.flush()
        self.board._latch = self._real_latch


@dataclass
class _Capture:
    """One deferred guard evaluation (one packet on one lane)."""

    lane: int  # guarded-lane index (into the batched estimator)
    guard: DetectorGuard
    packet: CommandPacket
    mpos: Optional[np.ndarray]
    latch_board: _DeferredLatchBoard
    latch_index: int


class _BatchGuardCoordinator:
    """The batch sink shared by all guarded lanes of one batched rig.

    Collects each lane's per-packet capture during the cycle's controller
    phase, then — in :meth:`finalize` — runs the estimator work batched
    and replays each lane's decision chain in its original order:

    1. batched ``sync`` for lanes with a trusted measurement, batched
       ``coast`` for lanes in degraded mode;
    2. one batched one-step model prediction for the lanes that evaluate
       this cycle (Pedal Down and synced);
    3. per lane, the scalar ``detector.evaluate`` (thresholds, fusion and
       decision windows stay per-lane state) and the guard's mitigation
       chain via ``DetectorGuard._finish_evaluation``;
    4. blocked packets retroactively zero their deferred DAC latch.
    """

    def __init__(
        self,
        guards: Sequence[DetectorGuard],
        latch_boards: Dict[int, _DeferredLatchBoard],
    ) -> None:
        require_homogeneous(
            [g.estimator.model.integrator_name for g in guards], "model integrator"
        )
        self.guards = list(guards)
        self.estimator = BatchedNextStateEstimator.from_estimators(
            [g.estimator for g in guards]
        )
        self._lane_of = {id(g): i for i, g in enumerate(guards)}
        self._latch_boards = latch_boards
        self._captures: List[List[_Capture]] = [[] for _ in guards]
        for guard in guards:
            guard._batch_sink = self

    def capture(
        self, guard: DetectorGuard, packet: CommandPacket, mpos: Optional[np.ndarray]
    ) -> bool:
        """Record one packet for deferred batched evaluation.

        Called from ``DetectorGuard.process`` (after its per-packet
        bookkeeping) in place of the inline sync/estimate/evaluate chain.
        Returns the provisional allow; the deferred latch is adjusted in
        :meth:`finalize` if the evaluation decides to block.
        """
        lane = self._lane_of[id(guard)]
        board = self._latch_boards[lane]
        self._captures[lane].append(
            _Capture(
                lane=lane,
                guard=guard,
                packet=packet,
                mpos=mpos,
                latch_board=board,
                latch_index=board.next_index(),
            )
        )
        return True

    def finalize(self) -> None:
        """Run all deferred evaluations for this cycle, batched.

        Processes one capture per lane per round (lanes normally see
        exactly one packet per control cycle; extras queue FIFO), so a
        lane's packets are always evaluated in arrival order against the
        correct estimator state.
        """
        num = len(self.guards)
        while any(self._captures):
            self.estimator.model.refresh_parameters()
            round_caps: List[Optional[_Capture]] = [
                caps.pop(0) if caps else None for caps in self._captures
            ]
            sync_mask = np.zeros(num, dtype=bool)
            coast_mask = np.zeros(num, dtype=bool)
            mpos_rows = np.zeros((num, 3))
            for cap in round_caps:
                if cap is None:
                    continue
                if cap.mpos is not None:
                    sync_mask[cap.lane] = True
                    mpos_rows[cap.lane] = cap.mpos
                else:
                    coast_mask[cap.lane] = True
            if sync_mask.any():
                self.estimator.sync(mpos_rows, sync_mask)
            if coast_mask.any():
                self.estimator.coast(coast_mask)

            synced = self.estimator.synced
            eval_mask = np.zeros(num, dtype=bool)
            dac_rows = np.zeros((num, 3))
            for cap in round_caps:
                if cap is None:
                    continue
                if cap.packet.state is RobotState.PEDAL_DOWN and synced[cap.lane]:
                    eval_mask[cap.lane] = True
                    dac_rows[cap.lane] = np.asarray(
                        cap.packet.dac_values[:3], dtype=float
                    )
            if eval_mask.any():
                batch_estimate = self.estimator.estimate(dac_rows, eval_mask)
            for cap in round_caps:
                if cap is None or not eval_mask[cap.lane]:
                    continue
                estimate = batch_estimate.lane(cap.lane)
                result = cap.guard.detector.evaluate(estimate)
                allowed = cap.guard._finish_evaluation(cap.packet, estimate, result)
                if not allowed:
                    cap.latch_board.block(cap.latch_index)

    def detach(self) -> None:
        for guard in self.guards:
            guard._batch_sink = None


class BatchedSurgicalRig:
    """N surgical rigs advanced in lockstep by one batched step."""

    def __init__(self, specs: Sequence[LaneSpec]) -> None:
        if not specs:
            raise SimulationError("at least one lane spec is required")
        require_homogeneous([s.config.duration_s for s in specs], "duration_s")
        self.specs = list(specs)
        self.num_lanes = len(specs)
        self.rigs: List[SurgicalRig] = [spec.build() for spec in specs]

        for rig in self.rigs:
            guard = rig.guard
            if guard is not None and not isinstance(
                guard, (DetectorGuard, GuardSupervisor)
            ):
                raise SimulationError(
                    "batched execution supports DetectorGuard/GuardSupervisor "
                    f"lanes only, got {type(guard).__name__}"
                )

        # One batched plant over all lanes; each rig keeps a scalar-shaped
        # view so its PLC, motor controller and encoders are untouched.
        self.plant = BatchedPlant([rig.plant for rig in self.rigs])
        for i, rig in enumerate(self.rigs):
            view = self.plant.lane(i)
            rig.plant = view
            rig.motor_controller.plant = view
            rig.plc.plant = view

        # Deferred DAC latching + the batched guard coordinator over the
        # guarded lanes (inner guards for supervisor-wrapped lanes).
        self._guarded: List[Tuple[int, DetectorGuard]] = []
        for i, rig in enumerate(self.rigs):
            guard = rig.guard
            if guard is None:
                continue
            inner = guard.guard if isinstance(guard, GuardSupervisor) else guard
            self._guarded.append((i, inner))
        self._latch_boards: Dict[int, _DeferredLatchBoard] = {}
        self.coordinator: Optional[_BatchGuardCoordinator] = None
        if self._guarded:
            boards = {
                gi: _DeferredLatchBoard(self.rigs[i].usb_board)
                for gi, (i, _) in enumerate(self._guarded)
            }
            self._latch_boards = boards
            self.coordinator = _BatchGuardCoordinator(
                [inner for _, inner in self._guarded], boards
            )

    def run(self) -> List[RunTrace]:
        """Execute all lanes and return their traces, in lane order.

        Mirrors :meth:`SurgicalRig.run` per lane, phase by phase; the
        only reordering is the deferred guard evaluation within a cycle,
        which the control software cannot observe (see module docstring).
        """
        obs = get_runtime()
        configs = [rig.config for rig in self.rigs]
        traces: List[RunTrace] = []
        started = [False] * self.num_lanes

        for i, rig in enumerate(self.rigs):
            trace = RunTrace()
            trace.seed = configs[i].seed
            trace.label = configs[i].trajectory_name
            traces.append(trace)
            rig._now = 0.0

            def on_transition(
                old: RobotState,
                new: RobotState,
                rig: SurgicalRig = rig,
                trace: RunTrace = trace,
                lane: int = i,
            ) -> None:
                if new is RobotState.E_STOP and started[lane]:
                    reason = rig.controller.state_machine.last_estop_reason or ""
                    trace.estop_events.append((rig._now, reason))
                    obs.log_event(
                        "estop", t=rig._now, seed=rig.config.seed, reason=reason
                    )

            rig.controller.state_machine.add_listener(on_transition)

        steps = int(round(configs[0].duration_s / constants.CONTROL_PERIOD_S))
        run_span = (
            obs.tracer.span(
                "rig.batch_run",
                cat="sim",
                lanes=self.num_lanes,
                steps=steps,
            )
            if obs.enabled
            else nullcontext()
        )
        with run_span:
            for k in range(steps):
                now = k * constants.CONTROL_PERIOD_S

                # Phase 1: per-lane frontend (console, network, control
                # software).  Guarded lanes capture their packet with the
                # coordinator instead of evaluating inline.
                outs = []
                for i, rig in enumerate(self.rigs):
                    rig._now = now
                    if not started[i] and now >= configs[i].start_button_s:
                        rig.controller.press_start(now)
                        started[i] = True
                    rig.socket.set_time(now)
                    if rig.phys_injector is not None:
                        rig.phys_injector.set_time(now)
                    rig.console.tick(now)
                    out = rig.controller.tick(now)
                    if not out.safety.safe:
                        traces[i].safety_trip_cycles.append(k)
                    outs.append(out)

                # Phase 2: batched guard evaluation + deferred latch flush.
                if self.coordinator is not None:
                    self.coordinator.finalize()
                for board in self._latch_boards.values():
                    board.flush()

                # Phase 3: per-lane housekeeping (watchdogs, PLC, E-STOP
                # propagation) — same order as the scalar loop.
                for i, rig in enumerate(self.rigs):
                    if rig.guard is not None:
                        rig.guard.tick_cycle(k)
                    rig.plc.tick()
                    if (
                        rig.plc.estop_latched
                        and rig.controller.state_machine.state
                        is not RobotState.E_STOP
                    ):
                        rig.controller.state_machine.emergency_stop(
                            now, reason=f"PLC: {rig.plc.estop_reason}"
                        )

                # Phase 4: one batched plant step for all lanes.
                dac_rows = np.zeros((self.num_lanes, 3))
                for i, rig in enumerate(self.rigs):
                    mc = rig.motor_controller
                    if mc._powered:
                        dac_rows[i] = mc._latched_dac
                self.plant.step(dac_rows)

                # Phase 5: per-lane trace recording + flight recorder.
                for i, rig in enumerate(self.rigs):
                    snapshot = self.plant.lane_state(i)
                    out = outs[i]
                    traces[i].record(
                        time=now,
                        state=out.state,
                        tip_pos=rig.arm.forward(snapshot.jpos),
                        pos_d=out.pos_d,
                        jpos=snapshot.jpos,
                        jvel=snapshot.jvel,
                        mpos=snapshot.mpos,
                        dac=out.dac,
                    )
                    if rig.flight is not None:
                        rig._flight_cycle(k, now, out, snapshot)

        for i, rig in enumerate(self.rigs):
            if rig.guard is not None:
                traces[i].detector_alert_cycles = [
                    e.cycle for e in rig.guard.stats.alert_events
                ]
                if rig.guard.stats.alerts > len(traces[i].detector_alert_cycles):
                    traces[i].detector_alert_cycles.extend(
                        [-1]
                        * (
                            rig.guard.stats.alerts
                            - len(traces[i].detector_alert_cycles)
                        )
                    )
        return traces

"""Recorded run data and physical-impact analysis.

A :class:`RunTrace` stores the per-cycle state of one simulated run —
controller view (desired/actual positions, DAC commands, state) and plant
truth (joint state, tool-tip position) — plus the discrete events (E-STOPs,
safety trips, detector alerts, attack activations).

The central impact metric is the *abrupt jump*: the maximum displacement of
the true tool tip within a sliding window.  A run exhibits an adverse
impact when that jump exceeds the 1 mm surgical-safety threshold the paper
adopts from expert surgeons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro import constants
from repro.control.state_machine import RobotState


@dataclass
class RunTrace:
    """Complete record of one simulated run."""

    dt: float = constants.CONTROL_PERIOD_S
    times: List[float] = field(default_factory=list)
    states: List[RobotState] = field(default_factory=list)
    tip_pos: List[np.ndarray] = field(default_factory=list)
    pos_d: List[np.ndarray] = field(default_factory=list)
    jpos: List[np.ndarray] = field(default_factory=list)
    jvel: List[np.ndarray] = field(default_factory=list)
    mpos: List[np.ndarray] = field(default_factory=list)
    dac: List[np.ndarray] = field(default_factory=list)

    estop_events: List[Tuple[float, str]] = field(default_factory=list)
    safety_trip_cycles: List[int] = field(default_factory=list)
    detector_alert_cycles: List[int] = field(default_factory=list)
    attack_first_cycle: Optional[int] = None
    attack_activations: int = 0
    seed: Optional[int] = None
    label: str = ""

    # -- recording ---------------------------------------------------------------

    def record(
        self,
        time: float,
        state: RobotState,
        tip_pos: np.ndarray,
        pos_d: np.ndarray,
        jpos: np.ndarray,
        jvel: np.ndarray,
        mpos: np.ndarray,
        dac: np.ndarray,
    ) -> None:
        """Append one cycle."""
        self.times.append(time)
        self.states.append(state)
        self.tip_pos.append(tip_pos)
        self.pos_d.append(pos_d)
        self.jpos.append(jpos)
        self.jvel.append(jvel)
        self.mpos.append(mpos)
        self.dac.append(dac)

    # -- array views ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.times)

    @property
    def time_array(self) -> np.ndarray:
        """Times as an (n,) array."""
        return np.asarray(self.times)

    @property
    def tip_array(self) -> np.ndarray:
        """True tool-tip positions as an (n, 3) array."""
        return np.vstack(self.tip_pos) if self.tip_pos else np.empty((0, 3))

    @property
    def jpos_array(self) -> np.ndarray:
        """Joint positions as an (n, 3) array."""
        return np.vstack(self.jpos) if self.jpos else np.empty((0, 3))

    @property
    def jvel_array(self) -> np.ndarray:
        """Joint velocities as an (n, 3) array."""
        return np.vstack(self.jvel) if self.jvel else np.empty((0, 3))

    @property
    def mpos_array(self) -> np.ndarray:
        """Motor positions as an (n, 3) array."""
        return np.vstack(self.mpos) if self.mpos else np.empty((0, 3))

    @property
    def dac_array(self) -> np.ndarray:
        """DAC commands as an (n, 3) array."""
        return np.vstack(self.dac) if self.dac else np.empty((0, 3))

    @property
    def estop_reasons(self) -> List[str]:
        """All E-STOP reasons recorded during the run."""
        return [reason for _t, reason in self.estop_events]

    def detector_stream(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The detector-facing telemetry of this run, as arrays.

        Returns ``(dac, mpos, pedal_down)``: the commanded DAC values
        ``(n, 3)``, the measured motor positions ``(n, 3)``, and the
        per-cycle Pedal Down flags ``(n,)``.  This is the single
        extraction seam shared by the vectorized detector replay
        (``repro.experiments.batch.CommandStream``) and the fleet
        supervisor's telemetry frames (``repro.experiments.fleet``) — one
        recorded run can drive either without re-simulating the robot.
        """
        return (
            np.ascontiguousarray(self.dac_array, dtype=float),
            np.ascontiguousarray(self.mpos_array, dtype=float),
            np.array(
                [state is RobotState.PEDAL_DOWN for state in self.states],
                dtype=bool,
            ),
        )

    # -- impact analysis --------------------------------------------------------------

    def max_jump(
        self, window_s: float = constants.UNSAFE_JUMP_WINDOW_S
    ) -> float:
        """Maximum tool-tip displacement within any window of ``window_s``.

        This is the "abrupt jump" magnitude: how far the tip moved over a
        short horizon, computed over the whole run.
        """
        tips = self.tip_array
        if len(tips) < 2:
            return 0.0
        w = max(1, int(round(window_s / self.dt)))
        best = 0.0
        for lag in range(1, w + 1):
            if lag >= len(tips):
                break
            disp = np.linalg.norm(tips[lag:] - tips[:-lag], axis=1)
            peak = float(disp.max())
            if peak > best:
                best = peak
        return best

    def adverse_impact(
        self,
        threshold_m: float = constants.UNSAFE_JUMP_M,
        window_s: float = constants.UNSAFE_JUMP_WINDOW_S,
    ) -> bool:
        """Whether an abrupt jump beyond ``threshold_m`` occurred."""
        return self.max_jump(window_s) > threshold_m

    def max_deviation_from(self, other: "RunTrace") -> float:
        """Max tip distance from another (e.g. fault-free) trace."""
        return self.max_deviation_from_tip(other.tip_array)

    def max_deviation_from_tip(self, reference_tip: np.ndarray) -> float:
        """Max tip distance from a reference tip-position array.

        Campaign workers receive only the reference run's ``(n, 3)`` tip
        array rather than its full trace, so the deviation label can be
        computed without shipping whole traces between processes.
        """
        reference_tip = np.asarray(reference_tip, dtype=float)
        n = min(len(self), len(reference_tip))
        if n == 0:
            return 0.0
        a = self.tip_array[:n]
        b = reference_tip[:n]
        return float(np.linalg.norm(a - b, axis=1).max())

    def estop_occurred(self) -> bool:
        """Whether the run ended up (at any point) in E-STOP after start."""
        return bool(self.estop_events)

    def pedal_down_fraction(self) -> float:
        """Fraction of cycles spent engaged (Pedal Down)."""
        if not self.states:
            return 0.0
        down = sum(1 for s in self.states if s is RobotState.PEDAL_DOWN)
        return down / len(self.states)

    def fingerprint(self) -> dict:
        """Bit-exact, JSON-native digest of the run for golden-trace tests.

        Every per-cycle array is hashed over its raw float64 bytes, so two
        runs compare equal **iff** they are bit-identical — the contract
        the golden regression suite pins across serial vs parallel
        execution, fresh vs resumed campaigns, and platforms.  Scalar
        floats are recorded as ``float.hex()`` so no precision is lost to
        decimal formatting.
        """
        import hashlib

        def digest(arr: np.ndarray) -> str:
            arr = np.ascontiguousarray(arr, dtype=np.float64)
            return hashlib.sha256(arr.tobytes()).hexdigest()[:16]

        states = "".join(s.value for s in self.states)
        return {
            "cycles": len(self),
            "dt_hex": float(self.dt).hex(),
            "states_sha256": hashlib.sha256(states.encode()).hexdigest()[:16],
            "tip_sha256": digest(self.tip_array),
            "pos_d_sha256": digest(
                np.vstack(self.pos_d) if self.pos_d else np.empty((0, 3))
            ),
            "jpos_sha256": digest(self.jpos_array),
            "jvel_sha256": digest(self.jvel_array),
            "mpos_sha256": digest(self.mpos_array),
            "dac_sha256": digest(self.dac_array),
            "safety_trip_cycles": list(map(int, self.safety_trip_cycles)),
            "detector_alert_cycles": list(map(int, self.detector_alert_cycles)),
            "estop_reasons": list(self.estop_reasons),
            "attack_first_cycle": self.attack_first_cycle,
            "attack_activations": int(self.attack_activations),
            "max_jump_mm_hex": float(self.max_jump() * 1e3).hex(),
        }

    # -- persistence ---------------------------------------------------------------

    def save(self, path) -> None:
        """Persist the trace as a compressed ``.npz`` archive.

        Stores the numeric time series plus the discrete events; intended
        for archiving campaign evidence and for offline visualization.
        """
        from pathlib import Path

        path = Path(path)
        state_codes = np.array([s.value for s in self.states])
        estop_times = np.array([t for t, _r in self.estop_events])
        estop_reasons = np.array([r for _t, r in self.estop_events], dtype=object)
        np.savez_compressed(
            path,
            dt=self.dt,
            times=self.time_array,
            states=state_codes,
            tip_pos=self.tip_array,
            pos_d=np.vstack(self.pos_d) if self.pos_d else np.empty((0, 3)),
            jpos=self.jpos_array,
            jvel=self.jvel_array,
            mpos=self.mpos_array,
            dac=self.dac_array,
            safety_trip_cycles=np.array(self.safety_trip_cycles, dtype=int),
            detector_alert_cycles=np.array(self.detector_alert_cycles, dtype=int),
            attack_first_cycle=(
                -1 if self.attack_first_cycle is None else self.attack_first_cycle
            ),
            attack_activations=self.attack_activations,
            seed=-1 if self.seed is None else self.seed,
            label=self.label,
            estop_times=estop_times,
            estop_reasons=estop_reasons,
        )

    @classmethod
    def load(cls, path) -> "RunTrace":
        """Inverse of :meth:`save`."""
        data = np.load(path, allow_pickle=True)
        trace = cls(dt=float(data["dt"]))
        trace.times = list(data["times"])
        trace.states = [RobotState(str(v)) for v in data["states"]]
        trace.tip_pos = list(data["tip_pos"])
        trace.pos_d = list(data["pos_d"])
        trace.jpos = list(data["jpos"])
        trace.jvel = list(data["jvel"])
        trace.mpos = list(data["mpos"])
        trace.dac = list(data["dac"])
        trace.safety_trip_cycles = [int(v) for v in data["safety_trip_cycles"]]
        trace.detector_alert_cycles = [
            int(v) for v in data["detector_alert_cycles"]
        ]
        first = int(data["attack_first_cycle"])
        trace.attack_first_cycle = None if first < 0 else first
        trace.attack_activations = int(data["attack_activations"])
        seed = int(data["seed"])
        trace.seed = None if seed < 0 else seed
        trace.label = str(data["label"])
        trace.estop_events = [
            (float(t), str(r))
            for t, r in zip(data["estop_times"], data["estop_reasons"])
        ]
        return trace

    def summary(self) -> dict:
        """Compact per-run summary used by the campaigns."""
        return {
            "cycles": len(self),
            "max_jump_mm": self.max_jump() * 1e3,
            "adverse_impact": self.adverse_impact(),
            "estop": self.estop_occurred(),
            "estop_reasons": self.estop_reasons,
            "raven_trips": len(self.safety_trip_cycles),
            "detector_alerts": len(self.detector_alert_cycles),
            "attack_fired": self.attack_activations > 0,
            "pedal_down_fraction": self.pedal_down_fraction(),
        }

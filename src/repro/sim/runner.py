"""High-level experiment entry points.

These functions wrap :class:`~repro.sim.rig.SurgicalRig` for the workflows
the evaluation needs:

- fault-free teleoperation runs (threshold training, FPR measurement);
- scenario-A / scenario-B attack runs at chosen error values and
  activation periods, with selectable protection (none / RAVEN only /
  RAVEN + dynamic-model detector in monitor or mitigation mode);
- model-validation runs where the dynamic model executes in parallel with
  the plant under identical control inputs (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro import constants
from repro.attacks.injection import (
    AttackRecord,
    DacOffsetInjection,
    UserInputInjection,
    build_scenario_a_library,
    build_scenario_b_library,
)
from repro.attacks.malware import PedalDownTrigger
from repro.control.state_machine import RobotState
from repro.core.detector import AnomalyDetector, FusionRule
from repro.core.dynamic_model import RavenDynamicModel
from repro.core.estimator import NextStateEstimator
from repro.core.mitigation import MitigationStrategy
from repro.core.pipeline import DetectorGuard
from repro.core.thresholds import SafetyThresholds, ThresholdLearner
from repro.hw.usb_board import UsbBoard
from repro.hw.usb_packet import CommandPacket
from repro.obs.metrics import DEFAULT_TIME_BUCKETS_S, Histogram
from repro.obs.timing import Stopwatch
from repro.sim.rig import RigConfig, SurgicalRig
from repro.sim.trace import RunTrace

#: Parameter error of the detector's dynamic model relative to the true
#: plant — the paper's model coefficients come from manual tuning, so a
#: few percent of mismatch is realistic.
DEFAULT_MODEL_PARAMETER_ERROR = 1.03

#: Attack timing defaults: wait this long after Pedal Down before firing.
DEFAULT_ATTACK_DELAY_CYCLES = 400


def make_detector_guard(
    thresholds: Optional[SafetyThresholds],
    strategy: MitigationStrategy = MitigationStrategy.MONITOR,
    parameter_error: float = DEFAULT_MODEL_PARAMETER_ERROR,
    integrator: str = "euler",
    fusion: FusionRule = FusionRule.ALL,
) -> DetectorGuard:
    """Assemble model + estimator + detector into a USB-board guard."""
    model = RavenDynamicModel(
        integrator=integrator, parameter_error=parameter_error
    )
    estimator = NextStateEstimator(model)
    detector = AnomalyDetector(thresholds=thresholds, fusion=fusion)
    return DetectorGuard(estimator, detector, strategy=strategy)


def run_fault_free(
    seed: int = 0,
    trajectory_name: str = "circle",
    duration_s: float = 2.5,
    guard: Optional[DetectorGuard] = None,
    raven_safety_enabled: bool = True,
    **config_kwargs,
) -> RunTrace:
    """One attack-free teleoperated run."""
    config = RigConfig(
        seed=seed,
        duration_s=duration_s,
        trajectory_name=trajectory_name,
        raven_safety_enabled=raven_safety_enabled,
        **config_kwargs,
    )
    rig = SurgicalRig(config, guard=guard)
    return rig.run()


# ---------------------------------------------------------------------------
# Threshold training
# ---------------------------------------------------------------------------


class CalibrationGuard:
    """A guard that feeds a :class:`ThresholdLearner` instead of detecting."""

    def __init__(self, estimator: NextStateEstimator, learner: ThresholdLearner):
        self.estimator = estimator
        self.learner = learner
        self._board: Optional[UsbBoard] = None

    def attach(self, board: UsbBoard) -> None:
        self._board = board
        # Observe-only hook: always admits the packet, so installing it
        # outside repro.core.pipeline does not bypass any mitigation.
        board.guard = self  # repro: allow[RPR001]

    def __call__(self, packet: CommandPacket, raw: bytes) -> bool:
        mpos = self._board.encoders.to_radians(self._board.encoder_counts()[:3])
        self.estimator.sync(mpos)
        if packet.state is RobotState.PEDAL_DOWN:
            self.learner.observe(self.estimator.estimate(packet.dac_values[:3]))
        return True


class _SampleBuffer:
    """Collects raw per-cycle estimates for one calibration run."""

    def __init__(self) -> None:
        self.motor_velocity: list = []
        self.motor_acceleration: list = []
        self.joint_velocity: list = []

    def observe(self, estimate) -> None:
        self.motor_velocity.append(estimate.motor_velocity)
        self.motor_acceleration.append(estimate.motor_acceleration)
        self.joint_velocity.append(estimate.joint_velocity)

    def stacked(self) -> dict:
        """``(cycles, 3)`` instant-rate traces, one array per group."""
        return {
            group: np.asarray(rows, dtype=float).reshape(-1, 3)
            for group, rows in (
                ("motor_velocity", self.motor_velocity),
                ("motor_acceleration", self.motor_acceleration),
                ("joint_velocity", self.joint_velocity),
            )
        }


def collect_calibration_samples(
    seed: int,
    trajectory_name: str = "circle",
    duration_s: float = 2.0,
    parameter_error: float = DEFAULT_MODEL_PARAMETER_ERROR,
    integrator: str = "euler",
) -> dict:
    """One fault-free calibration run's stacked instant-rate traces.

    The unit of work for threshold training: a deterministic function of
    its arguments, so runs can execute in any process and merge in seed
    order with results identical to a serial loop.  Returns a dict of
    ``(cycles, 3)`` arrays keyed by variable group, ready for
    :meth:`~repro.core.thresholds.ThresholdLearner.observe_run`.
    """
    model = RavenDynamicModel(
        integrator=integrator, parameter_error=parameter_error
    )
    buffer = _SampleBuffer()
    guard = CalibrationGuard(NextStateEstimator(model), buffer)
    config = RigConfig(
        seed=seed, duration_s=duration_s, trajectory_name=trajectory_name
    )
    rig = SurgicalRig(config)
    guard.attach(rig.usb_board)
    rig.run()
    return buffer.stacked()


def _calibration_worker(task: dict) -> dict:
    """Process-pool entry point for one calibration run."""
    return collect_calibration_samples(**task)


def train_thresholds(
    num_runs: int = 60,
    duration_s: float = 2.0,
    percentile: Optional[float] = None,
    margin: float = 1.0,
    parameter_error: float = DEFAULT_MODEL_PARAMETER_ERROR,
    integrator: str = "euler",
    base_seed: int = 10_000,
    jobs: int = 1,
    progress=None,
    injector=None,
) -> SafetyThresholds:
    """Learn detection thresholds from fault-free runs.

    The paper uses 600 runs over two trajectory families; the default here
    is scaled down for quick use — pass
    ``num_runs=repro.constants.THRESHOLD_TRAINING_RUNS`` for paper scale.
    Runs alternate between the two paper trajectories (circle, suturing)
    with per-run randomized parameters for movement variability.

    ``jobs > 1`` fans the independent runs out over that many worker
    processes; samples merge in seed order, so the fitted thresholds are
    bit-identical to a serial run.  ``injector`` threads a
    :class:`repro.testing.faults.ChaosInjector` into the fan-out so the
    chaos suite can exercise the calibration path too.
    """
    kwargs = {} if percentile is None else {"percentile": percentile}
    learner = ThresholdLearner(margin=margin, **kwargs)
    families = ("circle", "suturing")
    tasks = [
        dict(
            seed=base_seed + i,
            trajectory_name=families[i % len(families)],
            duration_s=duration_s,
            parameter_error=parameter_error,
            integrator=integrator,
        )
        for i in range(num_runs)
    ]
    if jobs == 1:
        batches = (collect_calibration_samples(**task) for task in tasks)
    else:
        # Deferred import: the engine lives in the experiments layer and
        # must not be a hard dependency of the simulator.
        from repro.experiments.parallel import iter_tasks

        batches = iter_tasks(
            _calibration_worker,
            tasks,
            jobs=jobs,
            progress=progress,
            label="threshold training",
            injector=injector,
        )
    for batch in batches:
        learner.observe_run(**batch)
    return learner.fit()


# ---------------------------------------------------------------------------
# Attack runs
# ---------------------------------------------------------------------------


@dataclass
class AttackRunResult:
    """Trace plus attack bookkeeping for one run."""

    trace: RunTrace
    record: AttackRecord
    guard: Optional[DetectorGuard] = None

    @property
    def model_detected(self) -> bool:
        """Whether the dynamic-model detector alerted during the run."""
        return self.guard is not None and self.guard.stats.alerted


def _finalize(trace: RunTrace, trigger: PedalDownTrigger, record: AttackRecord):
    record.activations = trigger.activations
    record.first_active_cycle = trigger.first_active_cycle
    trace.attack_first_cycle = trigger.first_active_cycle
    trace.attack_activations = trigger.activations


def scenario_b_lane(
    seed: int,
    error_dac: int,
    period_ms: int,
    duration_s: float = 2.5,
    guard: Optional[DetectorGuard] = None,
    raven_safety_enabled: bool = True,
    attack_delay_cycles: int = DEFAULT_ATTACK_DELAY_CYCLES,
    channel: int = 0,
    trajectory_name: str = "circle",
    **config_kwargs,
):
    """Assemble one scenario-B run as a :class:`repro.sim.batch.LaneSpec`.

    Returns ``(spec, trigger, record)``; after the run, pass the trace
    with the trigger and record through :func:`_finalize`.  Used by both
    the scalar :func:`run_scenario_b` and the batched campaign runner,
    so the two construct byte-identical rigs.
    """
    from repro.sim.batch import LaneSpec

    trigger = PedalDownTrigger.for_pedal_down(
        delay_cycles=attack_delay_cycles, duration_cycles=period_ms
    )
    payload = DacOffsetInjection(offset_counts=error_dac, channel=channel)
    library = build_scenario_b_library(trigger, payload)
    config = RigConfig(
        seed=seed,
        duration_s=duration_s,
        trajectory_name=trajectory_name,
        raven_safety_enabled=raven_safety_enabled,
        **config_kwargs,
    )
    spec = LaneSpec(config=config, guard=guard, preload_libraries=[library])
    record = AttackRecord(
        scenario="B", error_value=error_dac, period_cycles=period_ms
    )
    return spec, trigger, record


def scenario_a_lane(
    seed: int,
    error_mm: float,
    period_ms: int,
    duration_s: float = 2.5,
    guard: Optional[DetectorGuard] = None,
    raven_safety_enabled: bool = True,
    attack_delay_cycles: int = DEFAULT_ATTACK_DELAY_CYCLES,
    trajectory_name: str = "circle",
    **config_kwargs,
):
    """Assemble one scenario-A run as a :class:`repro.sim.batch.LaneSpec`.

    Returns ``(spec, trigger, record)``, like :func:`scenario_b_lane`.
    """
    from repro.sim.batch import LaneSpec

    trigger = PedalDownTrigger.for_pedal_down(
        delay_cycles=attack_delay_cycles, duration_cycles=period_ms
    )
    direction_rng = np.random.default_rng(seed + 777)
    payload = UserInputInjection(error_m=error_mm * 1e-3, rng=direction_rng)
    library = build_scenario_a_library(trigger, payload)
    config = RigConfig(
        seed=seed,
        duration_s=duration_s,
        trajectory_name=trajectory_name,
        raven_safety_enabled=raven_safety_enabled,
        **config_kwargs,
    )
    spec = LaneSpec(config=config, guard=guard, preload_libraries=[library])
    record = AttackRecord(
        scenario="A", error_value=error_mm, period_cycles=period_ms
    )
    return spec, trigger, record


def run_scenario_b(
    seed: int,
    error_dac: int,
    period_ms: int,
    duration_s: float = 2.5,
    guard: Optional[DetectorGuard] = None,
    raven_safety_enabled: bool = True,
    attack_delay_cycles: int = DEFAULT_ATTACK_DELAY_CYCLES,
    channel: int = 0,
    trajectory_name: str = "circle",
    **config_kwargs,
) -> AttackRunResult:
    """One scenario-B run: DAC offset ``error_dac`` for ``period_ms`` ms."""
    spec, trigger, record = scenario_b_lane(
        seed,
        error_dac,
        period_ms,
        duration_s=duration_s,
        guard=guard,
        raven_safety_enabled=raven_safety_enabled,
        attack_delay_cycles=attack_delay_cycles,
        channel=channel,
        trajectory_name=trajectory_name,
        **config_kwargs,
    )
    trace = spec.build().run()
    _finalize(trace, trigger, record)
    return AttackRunResult(trace=trace, record=record, guard=guard)


def run_scenario_a(
    seed: int,
    error_mm: float,
    period_ms: int,
    duration_s: float = 2.5,
    guard: Optional[DetectorGuard] = None,
    raven_safety_enabled: bool = True,
    attack_delay_cycles: int = DEFAULT_ATTACK_DELAY_CYCLES,
    trajectory_name: str = "circle",
    **config_kwargs,
) -> AttackRunResult:
    """One scenario-A run: ``error_mm`` mm of commanded-position error per
    console packet, sustained for ``period_ms`` ms."""
    spec, trigger, record = scenario_a_lane(
        seed,
        error_mm,
        period_ms,
        duration_s=duration_s,
        guard=guard,
        raven_safety_enabled=raven_safety_enabled,
        attack_delay_cycles=attack_delay_cycles,
        trajectory_name=trajectory_name,
        **config_kwargs,
    )
    trace = spec.build().run()
    _finalize(trace, trigger, record)
    return AttackRunResult(trace=trace, record=record, guard=guard)


# ---------------------------------------------------------------------------
# Model validation (Figure 8)
# ---------------------------------------------------------------------------


class ParallelModelTap:
    """Runs the dynamic model open-loop next to the plant (Figure 8).

    From the moment the robot engages, the model receives exactly the DAC
    commands the plant receives and integrates forward on its own; the tap
    records both trajectories for error statistics.
    """

    def __init__(self, model: RavenDynamicModel):
        self.model = model
        self._board: Optional[UsbBoard] = None
        self._jpos: Optional[np.ndarray] = None
        self._jvel = np.zeros(3)
        self.model_jpos: list = []
        self.model_mpos: list = []
        self.plant_jpos: list = []
        self.plant_mpos: list = []
        #: Bounded summary of per-step latency (count/sum/min/max/mean)
        #: instead of an unbounded per-cycle list.
        self.step_timing = Histogram(
            "model_step_seconds",
            "open-loop model step latency",
            buckets=DEFAULT_TIME_BUCKETS_S,
        )

    def attach(self, board: UsbBoard) -> None:
        self._board = board
        # Observe-only hook: always admits the packet, so installing it
        # outside repro.core.pipeline does not bypass any mitigation.
        board.guard = self  # repro: allow[RPR001]

    def __call__(self, packet: CommandPacket, raw: bytes) -> bool:
        plant = self._board.motor_controller.plant
        if packet.state is not RobotState.PEDAL_DOWN:
            self._jpos = None
            return True
        if self._jpos is None:
            # Engage: initialize the model from the true plant state once.
            self._jpos = plant.jpos
            self._jvel = plant.jvel
        with Stopwatch() as probe:
            self._jpos, self._jvel = self.model.step(
                self._jpos, self._jvel, packet.dac_values[:3]
            )
        self.step_timing.observe(probe.elapsed_s)
        self.model_jpos.append(self._jpos.copy())
        self.model_mpos.append(self.model.transmission.motor_positions(self._jpos))
        return True

    def record_plant(self, jpos: np.ndarray, mpos: np.ndarray) -> None:
        """Record the plant state corresponding to the last model step."""
        if self._jpos is not None:
            self.plant_jpos.append(jpos.copy())
            self.plant_mpos.append(mpos.copy())


@dataclass
class ModelValidationResult:
    """Per-run model-vs-plant comparison (one row of Figure 8's table)."""

    integrator: str
    mean_step_seconds: float
    jpos_mae: np.ndarray
    mpos_mae: np.ndarray
    samples: int


def run_model_validation(
    integrator: str = "euler",
    seed: int = 0,
    duration_s: float = 3.0,
    trajectory_name: str = "circle",
    parameter_error: float = DEFAULT_MODEL_PARAMETER_ERROR,
) -> ModelValidationResult:
    """Run plant and model in parallel under identical inputs (Figure 8)."""
    model = RavenDynamicModel(
        integrator=integrator, parameter_error=parameter_error
    )
    tap = ParallelModelTap(model)
    config = RigConfig(
        seed=seed, duration_s=duration_s, trajectory_name=trajectory_name
    )
    rig = SurgicalRig(config)
    tap.attach(rig.usb_board)

    # Wrap the motor-controller tick to snapshot the plant after each step.
    original_tick = rig.motor_controller.tick

    def tick_and_record(dt: float = constants.CONTROL_PERIOD_S):
        snapshot = original_tick(dt)
        tap.record_plant(snapshot.jpos, snapshot.mpos)
        return snapshot

    rig.motor_controller.tick = tick_and_record  # type: ignore[method-assign]
    rig.run()

    n = min(len(tap.model_jpos), len(tap.plant_jpos))
    if n == 0:
        raise RuntimeError("model validation run never engaged the robot")
    jerr = np.abs(np.vstack(tap.model_jpos[:n]) - np.vstack(tap.plant_jpos[:n]))
    merr = np.abs(np.vstack(tap.model_mpos[:n]) - np.vstack(tap.plant_mpos[:n]))
    return ModelValidationResult(
        integrator=integrator,
        mean_step_seconds=tap.step_timing.mean,
        jpos_mae=jerr.mean(axis=0),
        mpos_mae=merr.mean(axis=0),
        samples=n,
    )

"""Full-system wiring: the simulation framework of Figure 7(a).

A :class:`SurgicalRig` assembles one complete teleoperation stack:

    master console emulator -> UDP channel -> [recvfrom syscall]
        -> RAVEN control software (state machine, IK, PID, safety checks)
        -> [write syscall]  <- malicious wrappers hook here (LD_PRELOAD)
        -> USB board        <- dynamic-model detector guards here
        -> motor controllers -> physical plant (motors + manipulator)
        -> encoders -> [read syscall] -> control software
    PLC: watchdog monitor + fail-safe brakes + E-STOP latch

Every stochastic element (tremor, encoder noise, channel loss) draws from
generators seeded from one run seed, so runs are exactly reproducible and
protected/unprotected replicas of the same run see identical inputs.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro import constants
from repro.control.controller import RavenController
from repro.control.safety import SafetyChecker
from repro.control.state_machine import RobotState
from repro.control.trajectory import Trajectory, TrajectoryLibrary
from repro.core.pipeline import DetectorGuard, GuardSupervisor
from repro.dynamics.plant import RavenPlant
from repro.envcfg import env_str
from repro.errors import SimulationError
from repro.hw.encoder import EncoderBank
from repro.hw.motor_controller import MotorController
from repro.hw.plc import Plc
from repro.hw.usb_board import UsbBoard
from repro.kinematics.spherical_arm import SphericalArm
from repro.kinematics.workspace import Workspace
from repro.obs.runtime import get_runtime
from repro.sim.trace import RunTrace
from repro.sysmodel.linker import DynamicLinker, SharedLibrary, SystemEnvironment
from repro.teleop.console import MasterConsoleEmulator
from repro.teleop.network import UdpChannel, UdpSocket
from repro.teleop.pedal import PedalSchedule


@dataclass
class RigConfig:
    """Configuration of one simulated run."""

    seed: int = 0
    duration_s: float = 2.5
    trajectory_name: str = "circle"
    start_button_s: float = 0.05
    pedal_press_s: float = 0.40
    pedal_release_s: Optional[float] = None
    raven_safety_enabled: bool = True
    encoder_noise_counts: float = 0.3
    channel_latency_s: float = 0.0
    channel_jitter_s: float = 0.0
    channel_loss: float = 0.0
    plant_integrator: str = "rk4"
    plant_substeps: int = 2
    tremor_amplitude_m: float = 3e-5
    extra_trajectory_params: dict = field(default_factory=dict)
    #: Optional physical-layer fault plan: a
    #: :class:`repro.testing.physfaults.PhysFaultPlan`, its ``to_dict()``
    #: form (picklable, for worker processes), or a path to a saved plan.
    #: ``None`` (the default) falls back to the ``REPRO_PHYS_FAULT_PLAN``
    #: environment variable; with neither set the fault module is never
    #: imported and the rig is bit-identical to earlier builds.
    phys_faults: Optional[object] = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise SimulationError("duration_s must be positive")
        if self.pedal_press_s <= self.start_button_s:
            raise SimulationError("pedal press must come after the start button")


#: DAC limit used to "disable" the RAVEN checks in ground-truth runs.
_DISABLED_DAC_LIMIT = 10 * constants.DAC_FULL_SCALE


class SurgicalRig:
    """One arm + console + control software + hardware, ready to run."""

    def __init__(
        self,
        config: RigConfig,
        trajectory: Optional[Trajectory] = None,
        preload_libraries: Sequence[SharedLibrary] = (),
        guard: Optional[Union[DetectorGuard, GuardSupervisor]] = None,
        environment: Optional[SystemEnvironment] = None,
        channel: Optional[UdpChannel] = None,
    ) -> None:
        self.config = config
        seeds = np.random.SeedSequence(config.seed).spawn(3)
        self._traj_rng = np.random.default_rng(seeds[0])
        self._encoder_rng = np.random.default_rng(seeds[1])
        self._channel_rng = np.random.default_rng(seeds[2])

        # -- physical side ------------------------------------------------------
        self.arm = SphericalArm()
        self.workspace = Workspace()
        self.plant = RavenPlant(
            integrator=config.plant_integrator,
            substeps=config.plant_substeps,
            initial_jpos=self.workspace.neutral(),
        )
        self.motor_controller = MotorController(self.plant)
        self.plc = Plc(self.plant, self.motor_controller)
        self.encoders = EncoderBank(
            noise_counts=config.encoder_noise_counts,
            rng=self._encoder_rng if config.encoder_noise_counts > 0 else None,
        )
        self.usb_board = UsbBoard(self.motor_controller, self.plc, self.encoders)
        self.guard = guard
        if guard is not None:
            guard.attach(self.usb_board)

        # -- OS side --------------------------------------------------------------
        self.environment = environment or SystemEnvironment()
        for library in preload_libraries:
            self.environment.set_user_preload("surgeon", library)
        self.linker = DynamicLinker(self.environment)
        self.process = self.linker.spawn("r2_control", user="surgeon")
        self.usb_fd = self.process.open_device(self.usb_board)

        # -- teleoperation side ------------------------------------------------------
        # An externally supplied channel (e.g. a TamperingChannel with an
        # on-path adversary) replaces the default lossy UDP model.
        self.channel = channel or UdpChannel(
            latency_s=config.channel_latency_s,
            jitter_s=config.channel_jitter_s,
            loss_probability=config.channel_loss,
            rng=self._channel_rng
            if (config.channel_jitter_s > 0 or config.channel_loss > 0)
            else None,
        )
        self.socket = UdpSocket(self.channel, constants.ITP_DEFAULT_PORT)
        self.itp_fd = self.process.open_device(self.socket)

        if trajectory is None:
            library = TrajectoryLibrary(self.arm, self.workspace)
            trajectory = library.make(
                config.trajectory_name,
                rng=self._traj_rng,
                tremor_amplitude=config.tremor_amplitude_m,
                **config.extra_trajectory_params,
            )
        self.trajectory = trajectory

        if config.pedal_release_s is None:
            pedal = PedalSchedule.always_down(from_time=config.pedal_press_s)
        else:
            pedal = PedalSchedule.pressed_during(
                config.pedal_press_s, config.pedal_release_s
            )
        self.console = MasterConsoleEmulator(
            trajectory,
            self.channel,
            pedal=pedal,
            motion_start=config.pedal_press_s + 0.05,
        )

        # -- control software ------------------------------------------------------------
        safety = SafetyChecker(
            dac_limit=(
                constants.DAC_SAFETY_LIMIT
                if config.raven_safety_enabled
                else _DISABLED_DAC_LIMIT
            ),
            workspace=self.workspace if config.raven_safety_enabled else Workspace(
                joint1_limits=(-100.0, 100.0),
                joint2_limits=(-100.0, 100.0),
                joint3_limits=(1e-6, 100.0),
            ),
        )
        self.controller = RavenController(
            process=self.process,
            usb_fd=self.usb_fd,
            itp_fd=self.itp_fd,
            arm=self.arm,
            workspace=self.workspace,
            safety=safety,
            encoders=self.encoders,
        )

        # -- physical-layer fault injection (opt-in) ---------------------------------
        # Resolved last so every component the injector hooks exists.  The
        # env-var name is spelled out here (rather than imported) so the
        # fault module stays unimported unless a plan is actually present.
        self.phys_injector = None
        plan = config.phys_faults
        if plan is None:
            plan_path = env_str("REPRO_PHYS_FAULT_PLAN")
            if plan_path:
                plan = plan_path
        if plan is not None:
            from repro.testing.physfaults import PhysFaultInjector

            self.phys_injector = PhysFaultInjector(plan)
            self.phys_injector.install(self)

        # -- telemetry (REPRO_OBS, opt-in) -------------------------------------------
        # The flight recorder is None when telemetry is disabled, so the
        # step loop pays exactly one is-None branch per cycle.
        self.obs = get_runtime()
        self.flight = self.obs.new_flight_recorder(
            context={
                "seed": config.seed,
                "trajectory": config.trajectory_name,
                "duration_s": config.duration_s,
                "guard": type(guard).__name__ if guard is not None else None,
            }
        )
        #: Paths of black-box dumps written during :meth:`run`.
        self.flight_dumps: List[Path] = []
        self._flight_dumped = {"alarm": False, "estop": False}

    # -- execution ---------------------------------------------------------------------

    def run(self, trace: Optional[RunTrace] = None) -> RunTrace:
        """Execute the configured run and return its trace."""
        config = self.config
        trace = trace or RunTrace()
        trace.seed = config.seed
        trace.label = config.trajectory_name

        started = False

        def on_transition(old: RobotState, new: RobotState) -> None:
            if new is RobotState.E_STOP and started:
                reason = self.controller.state_machine.last_estop_reason or ""
                trace.estop_events.append((self._now, reason))
                self.obs.log_event(
                    "estop", t=self._now, seed=config.seed, reason=reason
                )

        self.controller.state_machine.add_listener(on_transition)

        steps = int(round(config.duration_s / constants.CONTROL_PERIOD_S))
        self._now = 0.0
        run_span = (
            self.obs.tracer.span(
                "rig.run",
                cat="sim",
                seed=config.seed,
                trajectory=config.trajectory_name,
                steps=steps,
            )
            if self.obs.enabled
            else nullcontext()
        )
        with run_span:
            for k in range(steps):
                self._now = k * constants.CONTROL_PERIOD_S
                now = self._now
                if not started and now >= config.start_button_s:
                    self.controller.press_start(now)
                    started = True

                self.socket.set_time(now)
                if self.phys_injector is not None:
                    self.phys_injector.set_time(now)
                self.console.tick(now)
                out = self.controller.tick(now)
                if not out.safety.safe:
                    trace.safety_trip_cycles.append(k)
                if self.guard is not None:
                    # Per-cycle guard housekeeping (staleness watchdog on the
                    # supervisor; a no-op for the bare DetectorGuard).
                    self.guard.tick_cycle(k)

                self.plc.tick()
                if (
                    self.plc.estop_latched
                    and self.controller.state_machine.state is not RobotState.E_STOP
                ):
                    self.controller.state_machine.emergency_stop(
                        now, reason=f"PLC: {self.plc.estop_reason}"
                    )

                snapshot = self.motor_controller.tick()
                trace.record(
                    time=now,
                    state=out.state,
                    tip_pos=self.arm.forward(snapshot.jpos),
                    pos_d=out.pos_d,
                    jpos=snapshot.jpos,
                    jvel=snapshot.jvel,
                    mpos=snapshot.mpos,
                    dac=out.dac,
                )
                if self.flight is not None:
                    self._flight_cycle(k, now, out, snapshot)

        if self.guard is not None:
            trace.detector_alert_cycles = [
                e.cycle for e in self.guard.stats.alert_events
            ]
            if self.guard.stats.alerts > len(trace.detector_alert_cycles):
                # Alerts beyond the recording cap still count once each.
                trace.detector_alert_cycles.extend(
                    [-1]
                    * (self.guard.stats.alerts - len(trace.detector_alert_cycles))
                )
        return trace

    # -- flight recorder (REPRO_OBS) --------------------------------------------

    def _flight_cycle(self, k: int, now: float, out, snapshot) -> None:
        """Feed one control cycle into the black-box ring; dump on events."""
        flight = self.flight
        assert flight is not None
        guard = self.guard
        result = guard.last_evaluation if guard is not None else None
        estimate = guard.last_estimate if guard is not None else None
        flight.record_cycle(
            cycle=k,
            t=now,
            state=out.state.name,
            dac_commanded=out.dac,
            dac_seen=guard.last_dac if guard is not None else None,
            jpos=snapshot.jpos,
            jvel=snapshot.jvel,
            mpos=snapshot.mpos,
            est_motor_velocity=(
                estimate.motor_velocity if estimate is not None else None
            ),
            est_motor_acceleration=(
                estimate.motor_acceleration if estimate is not None else None
            ),
            est_joint_velocity=(
                estimate.joint_velocity if estimate is not None else None
            ),
            est_jpos_next=estimate.jpos_next if estimate is not None else None,
            margins=result.margins if result is not None else None,
            alarms=result.alarms if result is not None else None,
            alert=result.alert if result is not None else None,
            raw_alert=result.raw_alert if result is not None else None,
            blocked=guard.last_blocked if guard is not None else False,
            health=guard.stats.health.value if guard is not None else None,
        )
        if (
            result is not None
            and result.alert
            and not self._flight_dumped["alarm"]
        ):
            self._flight_dumped["alarm"] = True
            reason = "block" if guard is not None and guard.last_blocked else "alarm"
            self._dump_flight(reason=reason, cycle=k)
        if self.plc.estop_latched and not self._flight_dumped["estop"]:
            self._flight_dumped["estop"] = True
            self._dump_flight(reason="estop", cycle=k)

    def _dump_flight(self, reason: str, cycle: int) -> None:
        """Write the last N cycles of the ring to a forensic JSONL dump."""
        assert self.flight is not None
        path = self.obs.flight_dump_path(
            label=self.config.trajectory_name,
            seed=self.config.seed,
            cycle=cycle,
            reason=reason,
        )
        if path is None:  # per-process dump cap reached
            return
        self.flight.dump(path, reason=reason)
        self.flight_dumps.append(path)
        self.obs.log_event(
            "flight_dump",
            path=str(path),
            reason=reason,
            cycle=cycle,
            seed=self.config.seed,
        )

"""Process-pool execution engine for the campaign layer.

The paper's evaluation is thousands of *independent* simulator runs
(1 925 scenario-A + 1 361 scenario-B campaign runs plus 600
threshold-training runs), each a deterministic function of its
configuration and seed.  This module provides the shared machinery that
fans those runs out across worker processes and persists their results
safely:

- :func:`resolve_jobs` — worker-count policy (``REPRO_JOBS`` environment
  variable, default ``os.cpu_count() - 1``, ``1`` = serial fallback);
- :func:`iter_tasks` / :func:`run_tasks` — deterministic-order map over a
  :class:`~concurrent.futures.ProcessPoolExecutor` that degrades to a
  plain in-process loop when one job is requested, so parallel results
  are bit-identical to serial ones by construction.  Each task gets a
  bounded retry budget with exponential backoff (``REPRO_TASK_RETRIES``,
  ``REPRO_TASK_BACKOFF_S``) and an optional per-task deadline
  (``REPRO_TASK_TIMEOUT_S``); a dead worker pool degrades the remaining
  tasks to serial in-process execution instead of aborting the campaign,
  and a task that exhausts its budget raises a typed
  :class:`~repro.errors.TaskExecutionError`;
- :func:`atomic_write_text` / :func:`atomic_write_json` — temp file +
  ``os.replace`` writes, so an interrupt can never leave a half-written
  cache file behind;
- versioned cache payloads (:func:`versioned_payload`,
  :func:`load_versioned_json`) keyed by a fingerprint of everything the
  cached data depends on *and* a digest of the payload body itself, so
  stale caches invalidate and silent bit corruption is detected instead
  of poisoning later artifacts.  :func:`quarantine_file` moves an invalid
  cache file aside so the caller can recompute its cell.

Fault injection hooks into exactly one seam: when the
``REPRO_CHAOS_PLAN`` environment variable (or an explicit ``injector=``
argument) is present, workers are wrapped by
:class:`repro.testing.faults.ChaosInjector`; otherwise the engine never
imports the chaos machinery and production paths pay a single
``os.environ`` lookup.

The module deliberately imports nothing from the simulator: worker
functions live next to the code they execute (``repro.attacks.campaign``,
``repro.sim.runner``) and only the generic engine lives here.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import (
    Any,
    Callable,
    Iterator,
    List,
    Optional,
    Sequence,
    TypeVar,
    Union,
)

from repro.envcfg import env_is_set, env_parsed
from repro.errors import CacheCorruptionError, TaskExecutionError
from repro.obs.runtime import get_runtime
from repro.obs.timing import monotonic_s

logger = logging.getLogger(__name__)

#: Version of the on-disk cache layout.  Bump when the shape of cached
#: payloads (outcome fields, shard layout, threshold payloads) changes;
#: every cache written under a different version is invalidated on read.
#: v3 added the ``body_sha256`` integrity digest.
SCHEMA_VERSION = 3

#: Default per-task retry budget (attempts = retries + 1).
DEFAULT_TASK_RETRIES = 1

#: Default base backoff between attempts; doubles per retry, capped.
DEFAULT_TASK_BACKOFF_S = 0.05
BACKOFF_CAP_S = 2.0

_T = TypeVar("_T")
_R = TypeVar("_R")


# ---------------------------------------------------------------------------
# Worker-count / retry policy
# ---------------------------------------------------------------------------


def default_jobs() -> int:
    """The default worker count: all cores but one, at least one."""
    return max(1, (os.cpu_count() or 2) - 1)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Number of worker processes to use.

    Explicit ``jobs`` wins; otherwise the ``REPRO_JOBS`` environment
    variable (``REPRO_WORKERS`` is honoured as a legacy alias); otherwise
    :func:`default_jobs`.  ``1`` means serial in-process execution.
    """
    if jobs is not None:
        return max(1, int(jobs))
    for var in ("REPRO_JOBS", "REPRO_WORKERS"):
        value = env_parsed(var, int, kind="an integer")
        if value is not None:
            return max(1, value)
    return default_jobs()


def _env_number(var: str, parse: Callable[[str], _T]) -> Optional[_T]:
    return env_parsed(var, parse)


def resolve_retries(retries: Optional[int] = None) -> int:
    """Per-task retry budget: explicit, ``REPRO_TASK_RETRIES``, or 1."""
    if retries is None:
        retries = _env_number("REPRO_TASK_RETRIES", int)
    return DEFAULT_TASK_RETRIES if retries is None else max(0, int(retries))


def resolve_backoff_s(backoff_s: Optional[float] = None) -> float:
    """Base retry backoff: explicit, ``REPRO_TASK_BACKOFF_S``, or 50 ms."""
    if backoff_s is None:
        backoff_s = _env_number("REPRO_TASK_BACKOFF_S", float)
    return DEFAULT_TASK_BACKOFF_S if backoff_s is None else max(0.0, float(backoff_s))


def resolve_timeout_s(timeout_s: Optional[float] = None) -> Optional[float]:
    """Per-task deadline: explicit, ``REPRO_TASK_TIMEOUT_S``, or none."""
    if timeout_s is None:
        timeout_s = _env_number("REPRO_TASK_TIMEOUT_S", float)
    if timeout_s is None or timeout_s <= 0:
        return None
    return float(timeout_s)


def _injector_from_env():
    """The ambient chaos injector, or ``None`` on production paths.

    Deferred import: without ``REPRO_CHAOS_PLAN`` set the chaos subsystem
    is never imported and this is one dictionary lookup.
    """
    if not env_is_set("REPRO_CHAOS_PLAN"):
        return None
    from repro.testing.faults import ChaosInjector

    return ChaosInjector.from_env()


# ---------------------------------------------------------------------------
# Deterministic parallel map with bounded retries
# ---------------------------------------------------------------------------


def _backoff(backoff_s: float, attempt: int) -> None:
    if backoff_s > 0:
        time.sleep(min(BACKOFF_CAP_S, backoff_s * (2 ** (attempt - 1))))


class _TaskSpan:
    """Envelope returned by :class:`_SpanTask`: worker result + timing."""

    __slots__ = ("result", "start_s", "dur_s", "pid")

    def __init__(self, result: Any, start_s: float, dur_s: float, pid: int):
        self.result = result
        self.start_s = start_s
        self.dur_s = dur_s
        self.pid = pid


class _SpanTask:
    """Picklable wrapper that times one task on the worker's own clock.

    Installed outermost (around any chaos wrapper) only when telemetry is
    enabled; the parent unwraps the envelope before yielding, so results
    stay bit-identical to an uninstrumented run.  On Linux, worker
    processes share the parent's ``CLOCK_MONOTONIC`` epoch, so the start
    offsets line up with the parent tracer's origin and merged spans land
    in per-worker trace lanes keyed by pid.
    """

    __slots__ = ("inner",)

    def __init__(self, inner: Callable[[Any], Any]):
        self.inner = inner

    def __call__(self, arg: Any) -> _TaskSpan:
        start = monotonic_s()
        result = self.inner(arg)
        return _TaskSpan(result, start, monotonic_s() - start, os.getpid())


def iter_tasks(
    worker: Callable[[_T], _R],
    tasks: Sequence[_T],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    label: str = "tasks",
    retries: Optional[int] = None,
    backoff_s: Optional[float] = None,
    timeout_s: Optional[float] = None,
    injector=None,
) -> Iterator[_R]:
    """Yield ``worker(task)`` for every task, **in task order**.

    With ``jobs == 1`` (or a single task) this is a plain loop in the
    calling process; otherwise tasks execute on a process pool whose
    results are still consumed in submission order, so callers observe
    the same sequence either way and merged results are bit-identical.
    Results stream out as they become available, which lets callers
    checkpoint (e.g. write a cache shard) after every task.

    Failure policy (identical serial and parallel):

    - a task that raises is retried up to ``retries`` times with
      exponentially backed-off sleeps; exhausting the budget raises
      :class:`~repro.errors.TaskExecutionError` (results already yielded
      — and any shards the caller checkpointed — survive the interrupt);
    - with a ``timeout_s`` deadline, a hung task counts as one failed
      attempt and is resubmitted;
    - a dead worker pool (e.g. a SIGKILLed worker) flips the remaining
      tasks to serial in-process execution rather than aborting.

    ``injector`` (or the ``REPRO_CHAOS_PLAN`` environment variable)
    installs a :class:`~repro.testing.faults.ChaosInjector` around the
    worker for fault-injection testing.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    total = len(tasks)
    retries = resolve_retries(retries)
    backoff_s = resolve_backoff_s(backoff_s)
    timeout_s = resolve_timeout_s(timeout_s)
    if injector is None:
        injector = _injector_from_env()
    chaos = injector is not None and injector.wants_task_faults
    call = injector.wrap(worker) if chaos else worker
    # Telemetry (REPRO_OBS): time each task in the process that runs it
    # and merge the spans into the parent tracer as it consumes results.
    obs = get_runtime()
    if obs.enabled:
        call = _SpanTask(call)
        task_seconds = obs.registry.histogram(
            "repro_engine_task_seconds", "per-task wall time in the engine"
        )
        tasks_total = obs.registry.counter(
            "repro_engine_tasks_total", "tasks executed by the engine"
        )

    def emit(result: Any, index: int) -> _R:
        if not isinstance(result, _TaskSpan):
            return result
        obs.tracer.add_span(
            f"{label}[{index}]",
            start_s=result.start_s,
            dur_s=result.dur_s,
            cat="task",
            tid=result.pid,
        )
        task_seconds.observe(result.dur_s)
        tasks_total.inc()
        return result.result

    def submit_arg(index: int, attempt: int):
        return (index, attempt, tasks[index]) if chaos else tasks[index]

    def invoke(index: int, attempt: int) -> _R:
        return call(submit_arg(index, attempt))

    def serial_attempts(index: int, first_attempt: int = 0) -> _R:
        attempt = first_attempt
        while True:
            try:
                return invoke(index, attempt)
            except Exception as exc:  # noqa: BLE001 — typed re-raise below
                attempt += 1
                if attempt > retries:
                    raise TaskExecutionError(label, index, attempt, exc) from exc
                logger.warning(
                    "%s[%d] attempt %d failed (%s: %s); retrying",
                    label, index, attempt, type(exc).__name__, exc,
                )
                _backoff(backoff_s, attempt)

    if jobs == 1 or total <= 1:
        for i in range(total):
            yield emit(serial_attempts(i), i)
            if progress:
                progress(f"{label}: {i + 1}/{total} done (serial)")
        return

    pool = ProcessPoolExecutor(max_workers=min(jobs, total))
    broken = False
    try:
        futures = [
            pool.submit(call, submit_arg(i, 0)) for i in range(total)
        ]
        for i in range(total):
            future = futures[i]
            attempt = 0
            while True:
                if broken:
                    result = serial_attempts(i, first_attempt=attempt)
                    break
                try:
                    result = future.result(timeout=timeout_s)
                    break
                except FuturesTimeout as exc:
                    future.cancel()
                    err: BaseException = exc
                except BrokenProcessPool as exc:
                    broken = True
                    logger.warning(
                        "%s: worker pool died at task %d (%s); "
                        "degrading to serial execution", label, i, exc,
                    )
                    if progress:
                        progress(
                            f"{label}: worker pool died; continuing serially"
                        )
                    err = exc
                except Exception as exc:  # noqa: BLE001  # repro: allow[RPR008] typed re-raise below once retries exhaust
                    err = exc
                attempt += 1
                if attempt > retries:
                    raise TaskExecutionError(label, i, attempt, err) from err
                if not broken:
                    logger.warning(
                        "%s[%d] attempt %d failed (%s: %s); retrying",
                        label, i, attempt, type(err).__name__, err,
                    )
                    _backoff(backoff_s, attempt)
                    try:
                        future = pool.submit(call, submit_arg(i, attempt))
                    except Exception:  # pool shut down between checks  # repro: allow[RPR008] flips to serial fallback, not a swallow
                        broken = True
            yield emit(result, i)
            if progress:
                mode = "serial fallback" if broken else f"{jobs} jobs"
                progress(f"{label}: {i + 1}/{total} done ({mode})")
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def run_tasks(
    worker: Callable[[_T], _R],
    tasks: Sequence[_T],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    label: str = "tasks",
    **policy: Any,
) -> List[_R]:
    """Like :func:`iter_tasks` but collects the results into a list."""
    return list(
        iter_tasks(
            worker, tasks, jobs=jobs, progress=progress, label=label, **policy
        )
    )


def chunked(items: Sequence[_T], chunks: int) -> List[List[_T]]:
    """Split ``items`` into at most ``chunks`` contiguous, ordered groups."""
    items = list(items)
    if not items:
        return []
    chunks = max(1, min(chunks, len(items)))
    size, extra = divmod(len(items), chunks)
    out, start = [], 0
    for i in range(chunks):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out


# ---------------------------------------------------------------------------
# Atomic cache writes
# ---------------------------------------------------------------------------


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A reader never observes a partially-written file: either the old
    content is intact or the new content is complete.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path: Union[str, Path], payload: Any, indent: int = 1) -> None:
    """Serialize ``payload`` as JSON and write it atomically."""
    atomic_write_text(path, json.dumps(payload, indent=indent))


# ---------------------------------------------------------------------------
# Versioned, integrity-checked cache payloads
# ---------------------------------------------------------------------------

#: Envelope keys; everything else in a payload is its body.
_RESERVED_KEYS = ("schema", "config", "body_sha256")


def config_fingerprint(config: dict) -> str:
    """Stable short digest of everything a cached payload depends on."""
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _body_digest(body: dict) -> str:
    """Digest of a JSON-native payload body, key-order independent."""
    canonical = json.dumps(body, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def versioned_payload(config: dict, body: dict) -> dict:
    """Wrap ``body`` with schema version, config fingerprint, and a body
    integrity digest (so bit corruption of the data is detected on read,
    not just torn envelopes)."""
    # Round-trip normalizes to JSON-native types (tuples become lists)
    # so the digest computed here matches one recomputed after reload.
    body = json.loads(json.dumps(body))
    return {
        "schema": SCHEMA_VERSION,
        "config": config_fingerprint(config),
        "body_sha256": _body_digest(body),
        **body,
    }


def payload_is_current(payload: Any, config: dict) -> bool:
    """Whether a loaded payload matches this schema, ``config``, and its
    own body digest."""
    if not (
        isinstance(payload, dict)
        and payload.get("schema") == SCHEMA_VERSION
        and payload.get("config") == config_fingerprint(config)
    ):
        return False
    body = {k: v for k, v in payload.items() if k not in _RESERVED_KEYS}
    return payload.get("body_sha256") == _body_digest(body)


def load_versioned_json(path: Union[str, Path], config: dict) -> Optional[dict]:
    """Load ``path`` if it exists, parses, and matches ``config``.

    Unreadable, corrupt (truncated or bit-flipped), unversioned (legacy),
    or mismatched payloads all log a warning and return ``None`` — the
    caller recomputes instead of trusting them, and resume never crashes
    on a damaged cache file.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
        logger.warning(
            "cache file %s is unreadable or corrupt (%s: %s); "
            "it will be recomputed", path, type(exc).__name__, exc,
        )
        return None
    if not payload_is_current(payload, config):
        logger.warning(
            "cache file %s is stale or fails integrity/config validation; "
            "it will be recomputed", path,
        )
        return None
    return payload


def quarantine_file(path: Union[str, Path]) -> Optional[Path]:
    """Move an invalid cache file into a sibling ``quarantine/`` directory.

    Keeps the evidence for post-mortems while guaranteeing the engine
    never re-reads (or re-trusts) the damaged file.  Returns the new
    location, or ``None`` if the file had already vanished.  Raises
    :class:`~repro.errors.CacheCorruptionError` if the move itself fails.
    """
    path = Path(path)
    if not path.exists():
        return None
    target = path.parent / "quarantine" / path.name
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, target)
    except OSError as exc:
        raise CacheCorruptionError(
            f"could not quarantine invalid cache file {path}: {exc}"
        ) from exc
    logger.warning("quarantined invalid cache file %s -> %s", path, target)
    return target

"""Process-pool execution engine for the campaign layer.

The paper's evaluation is thousands of *independent* simulator runs
(1 925 scenario-A + 1 361 scenario-B campaign runs plus 600
threshold-training runs), each a deterministic function of its
configuration and seed.  This module provides the shared machinery that
fans those runs out across worker processes and persists their results
safely:

- :func:`resolve_jobs` — worker-count policy (``REPRO_JOBS`` environment
  variable, default ``os.cpu_count() - 1``, ``1`` = serial fallback);
- :func:`iter_tasks` / :func:`run_tasks` — deterministic-order map over a
  :class:`~concurrent.futures.ProcessPoolExecutor` that degrades to a
  plain in-process loop when one job is requested, so parallel results
  are bit-identical to serial ones by construction;
- :func:`atomic_write_text` / :func:`atomic_write_json` — temp file +
  ``os.replace`` writes, so an interrupt can never leave a half-written
  cache file behind;
- versioned cache payloads (:func:`versioned_payload`,
  :func:`load_versioned_json`) keyed by a fingerprint of everything the
  cached data depends on, so stale caches invalidate instead of silently
  poisoning later artifacts.

The module deliberately imports nothing from the simulator: worker
functions live next to the code they execute (``repro.attacks.campaign``,
``repro.sim.runner``) and only the generic engine lives here.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    TypeVar,
    Union,
)

#: Version of the on-disk cache layout.  Bump when the shape of cached
#: payloads (outcome fields, shard layout, threshold payloads) changes;
#: every cache written under a different version is invalidated on read.
SCHEMA_VERSION = 2

_T = TypeVar("_T")
_R = TypeVar("_R")


# ---------------------------------------------------------------------------
# Worker-count policy
# ---------------------------------------------------------------------------


def default_jobs() -> int:
    """The default worker count: all cores but one, at least one."""
    return max(1, (os.cpu_count() or 2) - 1)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Number of worker processes to use.

    Explicit ``jobs`` wins; otherwise the ``REPRO_JOBS`` environment
    variable (``REPRO_WORKERS`` is honoured as a legacy alias); otherwise
    :func:`default_jobs`.  ``1`` means serial in-process execution.
    """
    if jobs is not None:
        return max(1, int(jobs))
    for var in ("REPRO_JOBS", "REPRO_WORKERS"):
        raw = os.environ.get(var, "").strip()
        if raw:
            try:
                return max(1, int(raw))
            except ValueError:
                raise ValueError(
                    f"{var} must be an integer, got {raw!r}"
                ) from None
    return default_jobs()


# ---------------------------------------------------------------------------
# Deterministic parallel map
# ---------------------------------------------------------------------------


def iter_tasks(
    worker: Callable[[_T], _R],
    tasks: Sequence[_T],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    label: str = "tasks",
) -> Iterator[_R]:
    """Yield ``worker(task)`` for every task, **in task order**.

    With ``jobs == 1`` (or a single task) this is a plain loop in the
    calling process; otherwise tasks execute on a process pool whose
    results are still consumed in submission order, so callers observe
    the same sequence either way and merged results are bit-identical.
    Results stream out as they become available, which lets callers
    checkpoint (e.g. write a cache shard) after every task.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    total = len(tasks)
    if jobs == 1 or total <= 1:
        for i, task in enumerate(tasks):
            yield worker(task)
            if progress:
                progress(f"{label}: {i + 1}/{total} done (serial)")
        return
    with ProcessPoolExecutor(max_workers=min(jobs, total)) as pool:
        for i, result in enumerate(pool.map(worker, tasks)):
            yield result
            if progress:
                progress(f"{label}: {i + 1}/{total} done ({jobs} jobs)")


def run_tasks(
    worker: Callable[[_T], _R],
    tasks: Sequence[_T],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    label: str = "tasks",
) -> List[_R]:
    """Like :func:`iter_tasks` but collects the results into a list."""
    return list(iter_tasks(worker, tasks, jobs=jobs, progress=progress, label=label))


def chunked(items: Sequence[_T], chunks: int) -> List[List[_T]]:
    """Split ``items`` into at most ``chunks`` contiguous, ordered groups."""
    items = list(items)
    if not items:
        return []
    chunks = max(1, min(chunks, len(items)))
    size, extra = divmod(len(items), chunks)
    out, start = [], 0
    for i in range(chunks):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out


# ---------------------------------------------------------------------------
# Atomic cache writes
# ---------------------------------------------------------------------------


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A reader never observes a partially-written file: either the old
    content is intact or the new content is complete.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path: Union[str, Path], payload: Any, indent: int = 1) -> None:
    """Serialize ``payload`` as JSON and write it atomically."""
    atomic_write_text(path, json.dumps(payload, indent=indent))


# ---------------------------------------------------------------------------
# Versioned cache payloads
# ---------------------------------------------------------------------------


def config_fingerprint(config: dict) -> str:
    """Stable short digest of everything a cached payload depends on."""
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def versioned_payload(config: dict, body: dict) -> dict:
    """Wrap ``body`` with the schema version and config fingerprint."""
    return {
        "schema": SCHEMA_VERSION,
        "config": config_fingerprint(config),
        **body,
    }


def payload_is_current(payload: Any, config: dict) -> bool:
    """Whether a loaded payload matches this schema and ``config``."""
    return (
        isinstance(payload, dict)
        and payload.get("schema") == SCHEMA_VERSION
        and payload.get("config") == config_fingerprint(config)
    )


def load_versioned_json(path: Union[str, Path], config: dict) -> Optional[dict]:
    """Load ``path`` if it exists, parses, and matches ``config``.

    Unreadable, corrupt, unversioned (legacy), or mismatched payloads all
    return ``None`` — the caller recomputes instead of trusting them.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    return payload if payload_is_current(payload, config) else None

"""Small helpers for printing ASCII result tables."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a fixed-width ASCII table."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([str(c) for c in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for ri, row in enumerate(cells):
        line = "  ".join(c.ljust(widths[i]) for i, c in enumerate(row))
        lines.append(line.rstrip())
        if ri == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_float(value: float, digits: int = 3) -> str:
    """Fixed-point float for table cells."""
    return f"{value:.{digits}f}"

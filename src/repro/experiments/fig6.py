"""Figure 6: Byte 0 across multiple runs and the attacker's conclusion.

The paper shows the values of Byte 0 over nine different runs: the state
sequence (E-STOP -> Init -> Pedal Up <-> Pedal Down) is recoverable from
every run.  This experiment captures N runs with varying trajectories and
pedal schedules, infers the per-run state segments, and lets
:class:`~repro.attacks.analysis.OfflineAnalysis` vote across runs to
produce the deployment trigger (the raw Byte 0 values meaning Pedal Down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.attacks.analysis import (
    AnalysisConclusion,
    OfflineAnalysis,
    byte_value_series,
    infer_state_byte,
    infer_state_sequence,
)
from repro.experiments.fig5 import capture_run
from repro.experiments.report import format_table


@dataclass
class Fig6Result:
    """Per-run segments plus the cross-run conclusion."""

    per_run_segments: List[list]
    conclusion: AnalysisConclusion


def run_fig6(
    runs: int = 9, duration_s: float = 2.0, base_seed: int = 40
) -> Fig6Result:
    """Capture ``runs`` sessions and run the full offline analysis."""
    trajectories = ("circle", "figure8", "suturing")
    analysis = OfflineAnalysis()
    per_run_segments = []
    for i in range(runs):
        # Vary the session: different motions, some with a pedal release.
        release = None if i % 3 else duration_s * 0.8
        packets = capture_run(
            seed=base_seed + i,
            duration_s=duration_s,
            trajectory_name=trajectories[i % len(trajectories)],
            pedal_release_s=release,
        )
        analysis.add_run(packets)
        series = byte_value_series(packets)
        inference = infer_state_byte(series)
        _mapping, segments = infer_state_sequence(
            series, inference.byte_index, inference.watchdog_bit
        )
        per_run_segments.append(segments)
    return Fig6Result(
        per_run_segments=per_run_segments, conclusion=analysis.conclude()
    )


def format_results(result: Fig6Result) -> str:
    """Figure 6-style textual report."""
    rows = []
    for i, segments in enumerate(result.per_run_segments):
        sequence = " -> ".join(name for _s, _e, name in segments)
        rows.append([f"run {i}", sequence])
    conclusion = result.conclusion
    lines = [
        format_table(["run", "inferred state sequence"], rows),
        "",
        f"conclusion over {conclusion.runs_analyzed} runs:",
        f"  state byte       : Byte {conclusion.state_byte}",
        f"  watchdog bit     : bit {conclusion.watchdog_bit}",
        "  Pedal Down values: "
        + ", ".join(f"0x{v:02X}" for v in sorted(conclusion.pedal_down_raw_values)),
    ]
    return "\n".join(lines)

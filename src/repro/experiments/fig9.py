"""Figure 9: detection probability vs injected error value and period.

For each campaign cell the per-cell probabilities are estimated from the
repetitions:

- P(adverse impact) — the injected command corrupted the physical state
  (>1 mm tool-tip deviation from the fault-free reference);
- P(detect | dynamic model) — the model-based detector alerted;
- P(detect | RAVEN) — the robot's own mechanisms tripped.

Shapes under test (paper, Section IV.C): all three probabilities grow
with the injected error value and the activation period; the dynamic
model's detection probability dominates the impact probability
(preemptive detection), while RAVEN's stays below it (post-hoc detection);
small values over short periods (2-16 ms) can cause impact without RAVEN
noticing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.attacks.campaign import CampaignCell, CampaignResult
from repro.experiments.campaigns import get_both_campaigns
from repro.experiments.report import format_table


def run_fig9(
    campaigns: Optional[Dict[str, CampaignResult]] = None,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[CampaignCell, Dict[str, float]]]:
    """Per-scenario, per-cell probability tables.

    ``jobs`` sets the execution-engine worker count used when the
    campaigns are not cached yet (default: ``REPRO_JOBS``).
    """
    campaigns = campaigns or get_both_campaigns(jobs=jobs)
    return {s: campaigns[s].cell_probabilities() for s in ("A", "B")}


def _marginal(
    cells: Dict[CampaignCell, Dict[str, float]], axis: str
) -> List[tuple]:
    """Marginal probabilities along one axis ("error_value"/"period_ms")."""
    groups: Dict[float, List[Dict[str, float]]] = {}
    for cell, stats in cells.items():
        groups.setdefault(getattr(cell, axis), []).append(stats)
    rows = []
    for key in sorted(groups):
        stats = groups[key]
        rows.append(
            (
                key,
                float(np.mean([s["p_impact"] for s in stats])),
                float(np.mean([s["p_model"] for s in stats])),
                float(np.mean([s["p_raven"] for s in stats])),
            )
        )
    return rows


def format_results(
    tables: Dict[str, Dict[CampaignCell, Dict[str, float]]],
) -> str:
    """Figure 9-style report: marginals over value and period per scenario."""
    sections = []
    for scenario, cells in tables.items():
        unit = "mm/packet" if scenario == "A" else "DAC counts"
        for axis, label in (
            ("error_value", f"injected error value ({unit})"),
            ("period_ms", "activation period (ms)"),
        ):
            rows = [
                [f"{key:g}", f"{pi:.2f}", f"{pm:.2f}", f"{pr:.2f}"]
                for key, pi, pm, pr in _marginal(cells, axis)
            ]
            sections.append(
                f"scenario {scenario} — marginal over {label}:\n"
                + format_table(
                    [label, "P(impact)", "P(detect|model)", "P(detect|RAVEN)"],
                    rows,
                )
            )
    return "\n\n".join(sections)


def shape_checks(
    tables: Dict[str, Dict[CampaignCell, Dict[str, float]]],
) -> Dict[str, bool]:
    """Quantitative checks of the paper's claimed shapes."""
    checks = {}
    for scenario, cells in tables.items():
        value_rows = _marginal(cells, "error_value")
        period_rows = _marginal(cells, "period_ms")
        impacts_by_value = [r[1] for r in value_rows]
        impacts_by_period = [r[1] for r in period_rows]
        model_minus_raven = [
            stats["p_model"] - stats["p_raven"] for stats in cells.values()
        ]
        checks[f"{scenario}: impact grows with error value"] = (
            impacts_by_value[-1] >= impacts_by_value[0]
        )
        checks[f"{scenario}: impact grows with period"] = (
            impacts_by_period[-1] >= impacts_by_period[0]
        )
        checks[f"{scenario}: model detection >= RAVEN detection on average"] = (
            float(np.mean(model_minus_raven)) >= 0.0
        )
    return checks

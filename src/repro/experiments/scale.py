"""Experiment sizing: smoke / default / paper scale.

The paper's campaigns total thousands of runs (1 925 for scenario A,
1 361 for scenario B, 600 threshold-training runs).  Re-running all of
that takes hours of wall-clock on the pure-Python simulator, so the
benchmark harness defaults to a reduced — but shape-preserving — workload
and scales up when ``REPRO_SCALE=paper`` is set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.envcfg import env_str


@dataclass(frozen=True)
class Scale:
    """All experiment sizes for one scale preset."""

    name: str
    #: Threshold training.
    training_runs: int
    training_duration_s: float
    #: Campaign grids.
    errors_a_mm: Tuple[float, ...]
    errors_b_dac: Tuple[int, ...]
    periods_ms: Tuple[int, ...]
    repetitions: int
    fault_free_runs: int
    run_duration_s: float
    #: Figure 8 model validation.
    validation_runs: int
    validation_duration_s: float
    #: Table II syscall count.
    syscall_samples: int
    #: Figures 5/6 eavesdropping runs.
    capture_runs: int
    capture_duration_s: float
    #: Robustness sweep (physical-layer fault injection).  Defaulted so
    #: older call sites constructing Scale explicitly keep working.
    robustness_seeds: int = 3
    robustness_fault_free_runs: int = 4
    robustness_duration_s: float = 1.6
    robustness_intensities: Tuple[float, ...] = (0.0, 0.35, 0.7, 1.0)


SMOKE = Scale(
    name="smoke",
    training_runs=4,
    training_duration_s=1.2,
    errors_a_mm=(0.05, 0.5),
    errors_b_dac=(5000, 24000),
    periods_ms=(8, 64),
    repetitions=2,
    fault_free_runs=4,
    run_duration_s=1.4,
    validation_runs=2,
    validation_duration_s=2.0,
    syscall_samples=2_000,
    capture_runs=3,
    capture_duration_s=1.5,
    robustness_seeds=2,
    robustness_fault_free_runs=2,
    robustness_duration_s=1.4,
    robustness_intensities=(0.0, 1.0),
)

DEFAULT = Scale(
    name="default",
    training_runs=24,
    training_duration_s=1.6,
    errors_a_mm=(0.02, 0.05, 0.1, 0.2, 0.5, 1.0),
    errors_b_dac=(2000, 5000, 13000, 18000, 24000, 30000),
    periods_ms=(2, 8, 16, 64, 128),
    repetitions=3,
    fault_free_runs=60,
    run_duration_s=1.6,
    validation_runs=6,
    validation_duration_s=3.0,
    syscall_samples=50_000,
    capture_runs=9,
    capture_duration_s=2.0,
    robustness_seeds=3,
    robustness_fault_free_runs=4,
    robustness_duration_s=1.6,
    robustness_intensities=(0.0, 0.35, 0.7, 1.0),
)

PAPER = Scale(
    name="paper",
    training_runs=600,
    training_duration_s=2.0,
    errors_a_mm=(0.02, 0.05, 0.1, 0.2, 0.5, 1.0),
    errors_b_dac=(2000, 5000, 13000, 18000, 24000, 30000),
    periods_ms=(2, 4, 8, 16, 32, 64, 128, 256),
    repetitions=20,
    fault_free_runs=385,
    run_duration_s=2.0,
    validation_runs=10,
    validation_duration_s=3.0,
    syscall_samples=50_000,
    capture_runs=9,
    capture_duration_s=2.5,
    robustness_seeds=8,
    robustness_fault_free_runs=12,
    robustness_duration_s=2.0,
    robustness_intensities=(0.0, 0.25, 0.5, 0.75, 1.0),
)

_PRESETS = {"smoke": SMOKE, "default": DEFAULT, "paper": PAPER}


def current_scale() -> Scale:
    """The scale selected by ``REPRO_SCALE`` (default: ``default``).

    Raises
    ------
    KeyError
        If ``REPRO_SCALE`` names an unknown preset.
    """
    name = (env_str("REPRO_SCALE") or "default").lower()
    try:
        return _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown REPRO_SCALE {name!r}; choose from {sorted(_PRESETS)}"
        ) from None

"""Experiment drivers regenerating every table and figure of the paper.

Each module reproduces one artifact:

- :mod:`repro.experiments.table1` — attack-variant impact matrix (Table I);
- :mod:`repro.experiments.table2` — syscall-wrapper overhead (Table II);
- :mod:`repro.experiments.fig5` — USB byte patterns, one run (Figure 5);
- :mod:`repro.experiments.fig6` — state inference across runs (Figure 6);
- :mod:`repro.experiments.fig8` — dynamic-model validation (Figure 8);
- :mod:`repro.experiments.table4` — detection performance (Table IV);
- :mod:`repro.experiments.fig9` — detection probability surfaces (Figure 9).

Experiment sizes follow the ``REPRO_SCALE`` environment variable
(``smoke`` / ``default`` / ``paper``); expensive intermediates (thresholds,
campaign outcomes) are cached under ``.cache/`` so repeated benchmark runs
are fast.
"""

from repro.experiments.batch import (
    BatchedCampaignRunner,
    CommandStream,
    ReplayLaneConfig,
    ReplayResult,
    replay_detector_batched,
    replay_detector_scalar,
)
from repro.experiments.scale import Scale, current_scale

__all__ = [
    "BatchedCampaignRunner",
    "CommandStream",
    "ReplayLaneConfig",
    "ReplayResult",
    "Scale",
    "current_scale",
    "replay_detector_batched",
    "replay_detector_scalar",
]

"""Batched campaign execution and vectorized detector replay.

Two consumers of the ``(N_rigs, ...)`` batch layer:

- :class:`BatchedCampaignRunner` — a drop-in sibling of
  :class:`repro.attacks.campaign.CampaignRunner` that executes every
  campaign replica (fault-free references, ground-truth attack runs,
  monitored attack runs, negative-label runs) as lanes of
  :class:`repro.sim.batch.BatchedSurgicalRig` batches.  Outcomes are
  **bit-identical** to the serial runner — the batch layer's per-lane
  equivalence contract — in the same order, so every downstream
  aggregation (Table IV, Figure 9) is unchanged.

- :func:`replay_detector_batched` — the detector pipeline alone
  (estimator sync → one-step model prediction → threshold fusion),
  re-run over a recorded command/measurement stream for N detector
  configurations in one vectorized pass.  This is how threshold sweeps
  and model-error sensitivity studies iterate: record one stream, replay
  hundreds of detector variants against it without re-simulating the
  robot.  :func:`replay_detector_scalar` is the reference loop the
  equivalence tests and the throughput benchmark compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import constants
from repro.attacks.campaign import (
    PAPER_PERIODS_MS,
    CampaignCell,
    CampaignResult,
    CampaignRunner,
    IMPACT_DEVIATION_M,
    RunOutcome,
)
from repro.control.state_machine import RobotState
from repro.core import (
    AnomalyDetector,
    BatchedAnomalyDetector,
    BatchedNextStateEstimator,
    FusionRule,
    MitigationStrategy,
    NextStateEstimator,
    RavenDynamicModel,
    SafetyThresholds,
)
from repro.sim.batch import BatchedSurgicalRig, LaneSpec
from repro.sim.rig import RigConfig
from repro.sim.runner import (
    _finalize,
    make_detector_guard,
    scenario_a_lane,
    scenario_b_lane,
)
from repro.sim.trace import RunTrace

__all__ = [
    "BatchedCampaignRunner",
    "CommandStream",
    "ReplayLaneConfig",
    "ReplayResult",
    "replay_detector_batched",
    "replay_detector_scalar",
]


# ---------------------------------------------------------------------------
# Batched campaigns
# ---------------------------------------------------------------------------

#: One pending batched run: the lane spec plus the attack bookkeeping to
#: finalize the trace with (None for attack-free lanes).
_Entry = Tuple[LaneSpec, Optional[object], Optional[object]]


class BatchedCampaignRunner(CampaignRunner):
    """Campaign execution over the batched rig, ``batch_size`` lanes at a time.

    Same grid, same seeds, same replica structure and same outcome order
    as the serial :class:`CampaignRunner`; independent runs simply share
    one vectorized plant/model step.  ``run_cell_once`` and
    ``run_fault_free_once`` remain available (inherited) and agree with
    the batched results bit for bit.
    """

    def __init__(
        self,
        thresholds: SafetyThresholds,
        batch_size: int = 32,
        **kwargs,
    ) -> None:
        super().__init__(thresholds, **kwargs)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size

    # -- execution ----------------------------------------------------------

    def _run_entries(self, entries: Sequence[_Entry]) -> List[RunTrace]:
        """Run lane specs through batched rigs, ``batch_size`` per batch."""
        traces: List[RunTrace] = []
        for start in range(0, len(entries), self.batch_size):
            chunk = entries[start : start + self.batch_size]
            batch_traces = BatchedSurgicalRig([spec for spec, _, _ in chunk]).run()
            for trace, (_, trigger, record) in zip(batch_traces, chunk):
                if trigger is not None:
                    _finalize(trace, trigger, record)
                traces.append(trace)
        return traces

    def _attack_entry(
        self,
        cell: CampaignCell,
        seed: int,
        guard,
        raven_safety_enabled: bool,
    ) -> _Entry:
        common = dict(
            seed=seed,
            period_ms=cell.period_ms,
            duration_s=self.duration_s,
            guard=guard,
            raven_safety_enabled=raven_safety_enabled,
            attack_delay_cycles=self.attack_delay_cycles,
            trajectory_name=self.trajectory_name,
        )
        if cell.scenario == "B":
            return scenario_b_lane(error_dac=int(cell.error_value), **common)
        return scenario_a_lane(error_mm=float(cell.error_value), **common)

    def _reference_entry(self, seed: int) -> _Entry:
        config = RigConfig(
            seed=seed,
            duration_s=self.duration_s,
            trajectory_name=self.trajectory_name,
        )
        return (LaneSpec(config), None, None)

    def run_campaign(
        self,
        scenario: str,
        error_values: Sequence[float],
        periods_ms: Sequence[int] = PAPER_PERIODS_MS,
        repetitions: int = 20,
        fault_free_runs: int = 0,
    ) -> CampaignResult:
        """The serial campaign's exact outcomes, batched ``batch_size`` wide."""
        cells = self.plan_cells(scenario, error_values, periods_ms)
        if fault_free_runs <= 0:
            fault_free_runs = self.default_fault_free_runs(cells, repetitions)
        seeds = self.repetition_seeds(repetitions)

        # Warm-up: every missing fault-free reference, one batched pass.
        missing = [s for s in seeds if s not in self._references]
        for seed, trace in zip(
            missing, self._run_entries([self._reference_entry(s) for s in missing])
        ):
            self._references[seed] = trace.tip_array
        if missing:
            self._progress(
                f"[{scenario}] {len(missing)} reference runs done (batched)"
            )

        # Both attack replicas of every (cell, seed), plus the negative
        # runs, interleaved into shared batches.
        entries: List[_Entry] = []
        guards = []
        for cell in cells:
            for seed in seeds:
                entries.append(
                    self._attack_entry(
                        cell, seed, guard=None, raven_safety_enabled=False
                    )
                )
                guard = make_detector_guard(
                    self.thresholds, strategy=MitigationStrategy.MONITOR
                )
                entries.append(
                    self._attack_entry(
                        cell, seed, guard=guard, raven_safety_enabled=True
                    )
                )
                guards.append(guard)
        ff_seeds = self.fault_free_seeds(fault_free_runs)
        ff_guards = []
        for seed in ff_seeds:
            guard = make_detector_guard(
                self.thresholds, strategy=MitigationStrategy.MONITOR
            )
            config = RigConfig(
                seed=seed,
                duration_s=self.duration_s,
                trajectory_name=self.trajectory_name,
            )
            entries.append((LaneSpec(config, guard=guard), None, None))
            ff_guards.append(guard)

        traces = self._run_entries(entries)

        # Assemble outcomes in the serial runner's order.
        result = CampaignResult(scenario=scenario)
        index = 0
        rep = 0
        for ci, cell in enumerate(cells):
            for seed in seeds:
                raw_trace = traces[index]
                raw_record = entries[index][2]
                monitored_trace = traces[index + 1]
                guard = guards[rep]
                index += 2
                rep += 1
                deviation = raw_trace.max_deviation_from_tip(
                    self._references[seed]
                )
                result.outcomes.append(
                    RunOutcome(
                        cell=cell,
                        seed=seed,
                        label=deviation > IMPACT_DEVIATION_M,
                        raven_detected=self.baseline.detected(monitored_trace),
                        model_detected=guard.stats.alerted,
                        deviation_mm=deviation * 1e3,
                        attack_fired=raw_record.fired,
                    )
                )
            self._progress(
                f"[{scenario}] cell {ci + 1}/{len(cells)} "
                f"(v={cell.error_value}, d={cell.period_ms}ms) done"
            )
        for seed, guard in zip(ff_seeds, ff_guards):
            trace = traces[index]
            index += 1
            result.outcomes.append(
                RunOutcome(
                    cell=None,
                    seed=seed,
                    label=False,
                    raven_detected=self.baseline.detected(trace),
                    model_detected=guard.stats.alerted,
                    deviation_mm=0.0,
                    attack_fired=False,
                )
            )
        self._progress(
            f"[{scenario}] campaign complete: {len(result.outcomes)} runs"
        )
        return result


# ---------------------------------------------------------------------------
# Vectorized detector replay
# ---------------------------------------------------------------------------


@dataclass
class CommandStream:
    """The detector-facing slice of one recorded run.

    Per control cycle: the commanded DAC values, the measured motor
    positions, and whether the robot was in Pedal Down (the only state
    the detector evaluates in).  Extracted from any :class:`RunTrace`;
    one stream can be replayed against arbitrarily many detector
    configurations without re-simulating the robot.
    """

    dac: np.ndarray  # (T, 3) float64
    mpos: np.ndarray  # (T, 3) float64
    pedal_down: np.ndarray  # (T,) bool

    def __len__(self) -> int:
        return len(self.pedal_down)

    @classmethod
    def from_trace(cls, trace: RunTrace) -> "CommandStream":
        dac, mpos, pedal_down = trace.detector_stream()
        return cls(dac=dac, mpos=mpos, pedal_down=pedal_down)


@dataclass(frozen=True)
class ReplayLaneConfig:
    """One detector variant to replay a stream against."""

    thresholds: SafetyThresholds
    parameter_error: float = 1.03
    integrator: str = "euler"
    fusion: FusionRule = FusionRule.ALL
    decision_window: Optional[Tuple[int, int]] = None

    def build_scalar(self) -> Tuple[NextStateEstimator, AnomalyDetector]:
        model = RavenDynamicModel(
            integrator=self.integrator, parameter_error=self.parameter_error
        )
        detector = AnomalyDetector(
            thresholds=self.thresholds,
            fusion=self.fusion,
            decision_window=self.decision_window,
        )
        return NextStateEstimator(model), detector


@dataclass
class ReplayResult:
    """Per-lane detector verdicts over one replayed stream."""

    evaluations: np.ndarray  # (N,) int
    alerts: np.ndarray  # (N,) int
    first_alert_cycle: np.ndarray  # (N,) int, -1 when never alerted
    alert_mask: np.ndarray = field(repr=False, default=None)  # (N, T) bool

    @property
    def detected(self) -> np.ndarray:
        """Per-lane boolean: did the detector alert at all?"""
        return self.alerts > 0


def replay_detector_scalar(
    stream: CommandStream, lanes: Sequence[ReplayLaneConfig]
) -> ReplayResult:
    """Reference implementation: one scalar detector pipeline per lane."""
    pipelines = [lane.build_scalar() for lane in lanes]
    n, t = len(pipelines), len(stream)
    alert_mask = np.zeros((n, t), dtype=bool)
    for i, (estimator, detector) in enumerate(pipelines):
        for k in range(t):
            estimator.sync(stream.mpos[k])
            if stream.pedal_down[k]:
                estimate = estimator.estimate(stream.dac[k])
                alert_mask[i, k] = detector.evaluate(estimate).alert
    return _replay_result(alert_mask, [d for _, d in pipelines])


def replay_detector_batched(
    stream: CommandStream, lanes: Sequence[ReplayLaneConfig]
) -> ReplayResult:
    """All lanes at once: batched sync/predict/evaluate per cycle.

    Bit-identical to :func:`replay_detector_scalar` lane by lane (the
    batch layer's contract); per-cycle cost is amortized over N lanes.
    """
    pipelines = [lane.build_scalar() for lane in lanes]
    estimator = BatchedNextStateEstimator.from_estimators(
        [e for e, _ in pipelines]
    )
    detector = BatchedAnomalyDetector.from_detectors([d for _, d in pipelines])
    n, t = len(pipelines), len(stream)
    all_lanes = np.ones(n, dtype=bool)
    alert_mask = np.zeros((n, t), dtype=bool)
    for k in range(t):
        estimator.sync(np.broadcast_to(stream.mpos[k], (n, 3)), all_lanes)
        if stream.pedal_down[k]:
            estimate = estimator.estimate(
                np.broadcast_to(stream.dac[k], (n, 3)), all_lanes
            )
            alert_mask[:, k] = detector.evaluate(estimate, all_lanes).alert
    return ReplayResult(
        evaluations=detector.evaluations.copy(),
        alerts=detector.alerts.copy(),
        first_alert_cycle=_first_alerts(alert_mask),
        alert_mask=alert_mask,
    )


def _first_alerts(alert_mask: np.ndarray) -> np.ndarray:
    firsts = np.full(alert_mask.shape[0], -1, dtype=np.int64)
    rows, cols = np.nonzero(alert_mask)
    # np.nonzero is row-major, so the first hit per row wins.
    for row, col in zip(rows[::-1], cols[::-1]):
        firsts[row] = col
    return firsts


def _replay_result(
    alert_mask: np.ndarray, detectors: Sequence[AnomalyDetector]
) -> ReplayResult:
    return ReplayResult(
        evaluations=np.array([d.evaluations for d in detectors], dtype=np.int64),
        alerts=np.array([d.alerts for d in detectors], dtype=np.int64),
        first_alert_cycle=_first_alerts(alert_mask),
        alert_mask=alert_mask,
    )

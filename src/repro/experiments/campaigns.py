"""Shared campaign execution + caching for Table IV and Figure 9.

Both artifacts read the same campaign data (the paper derives them from
the same 1 925 + 1 361 experiment runs), so campaigns execute once per
scale preset and cache their outcomes under ``.cache/``.

The cache is a **shard directory** per (scenario, scale):

.. code-block:: text

    .cache/campaign_A_default/
        meta.json        schema version + config fingerprint + grid
        cell_000.json    all repetitions of grid cell 0
        cell_001.json    ...
        fault_free.json  the attack-free (negative-label) runs

Every shard is written atomically (temp file + ``os.replace``) the moment
its cell completes, so a Ctrl-C mid-campaign leaves a prefix of valid
shards behind and the next call resumes from there instead of restarting
from zero.  ``meta.json`` carries the engine schema version and a
fingerprint of everything the outcomes depend on (grids, durations,
repetitions, thresholds, outcome fields); any mismatch invalidates the
whole directory rather than silently poisoning Table IV / Figure 9.
"""

from __future__ import annotations

import dataclasses
import logging
import shutil
from pathlib import Path
from typing import Dict, List, Optional

from repro.attacks.campaign import (
    CampaignCell,
    CampaignResult,
    ParallelCampaignRunner,
    RunOutcome,
)
from repro.experiments.calibration import CACHE_DIR, get_thresholds
from repro.experiments.parallel import (
    atomic_write_json,
    load_versioned_json,
    quarantine_file,
    versioned_payload,
)
from repro.experiments.scale import Scale, current_scale

logger = logging.getLogger(__name__)


def _outcome_to_dict(outcome: RunOutcome) -> dict:
    cell = outcome.cell
    return {
        "cell": None
        if cell is None
        else {
            "scenario": cell.scenario,
            "error_value": cell.error_value,
            "period_ms": cell.period_ms,
        },
        "seed": outcome.seed,
        "label": outcome.label,
        "raven_detected": outcome.raven_detected,
        "model_detected": outcome.model_detected,
        "deviation_mm": outcome.deviation_mm,
        "attack_fired": outcome.attack_fired,
    }


def _outcome_from_dict(data: dict) -> RunOutcome:
    cell = data["cell"]
    return RunOutcome(
        cell=None
        if cell is None
        else CampaignCell(
            scenario=cell["scenario"],
            error_value=cell["error_value"],
            period_ms=cell["period_ms"],
        ),
        seed=data["seed"],
        label=data["label"],
        raven_detected=data["raven_detected"],
        model_detected=data["model_detected"],
        deviation_mm=data["deviation_mm"],
        attack_fired=data["attack_fired"],
    )


def campaign_cache_path(
    scenario: str, scale: Scale, cache_dir: Optional[Path] = None
) -> Path:
    """Shard-directory location for one scenario's campaign at ``scale``."""
    directory = Path(cache_dir) if cache_dir is not None else CACHE_DIR
    return directory / f"campaign_{scenario}_{scale.name}"


def _cell_shard_path(shard_dir: Path, index: int) -> Path:
    return shard_dir / f"cell_{index:04d}.json"


def _fault_free_shard_path(shard_dir: Path) -> Path:
    return shard_dir / "fault_free.json"


def campaign_config(scenario: str, scale: Scale, thresholds) -> dict:
    """Everything the cached outcomes depend on, for fingerprinting.

    A change to the sweep grids, run durations, repetition counts, runner
    parameters, calibrated thresholds, or the :class:`RunOutcome` fields
    themselves changes the fingerprint and invalidates the cache.
    """
    runner = _make_runner(scale, thresholds)
    return {
        "scenario": scenario,
        "errors": list(scale.errors_a_mm if scenario == "A" else scale.errors_b_dac),
        "periods_ms": list(scale.periods_ms),
        "repetitions": scale.repetitions,
        "fault_free_runs": scale.fault_free_runs,
        "run_duration_s": scale.run_duration_s,
        "trajectory_name": runner.trajectory_name,
        "attack_delay_cycles": runner.attack_delay_cycles,
        "base_seed": runner.base_seed,
        "thresholds": thresholds.to_dict(),
        "outcome_fields": [f.name for f in dataclasses.fields(RunOutcome)],
    }


def _make_runner(
    scale: Scale, thresholds, progress=None, jobs=None, injector=None
) -> ParallelCampaignRunner:
    return ParallelCampaignRunner(
        thresholds,
        duration_s=scale.run_duration_s,
        progress=progress,
        jobs=jobs,
        injector=injector,
    )


def _load_shard_outcomes(path: Path, config: dict) -> Optional[List[RunOutcome]]:
    """Outcomes from one shard, or ``None`` (with the bad file quarantined).

    A shard that fails JSON parsing, schema/config validation, or its
    body-integrity digest is moved into the directory's ``quarantine/``
    subfolder — preserved as evidence, never re-read — and the caller
    recomputes the cell.  Resume therefore survives truncated, bit-flipped,
    and deleted shards with a correct, complete campaign result.
    """
    payload = load_versioned_json(path, config)
    if payload is None or "outcomes" not in payload:
        if path.exists():
            logger.warning(
                "campaign shard %s failed validation; quarantining and "
                "recomputing its cell", path,
            )
            quarantine_file(path)
        return None
    return [_outcome_from_dict(d) for d in payload["outcomes"]]


def _write_shard(
    path: Path, config: dict, outcomes: List[RunOutcome], injector=None
) -> None:
    atomic_write_json(
        path,
        versioned_payload(
            config, {"outcomes": [_outcome_to_dict(o) for o in outcomes]}
        ),
    )
    if injector is not None:
        injector.on_file_written(path)


def get_campaign(
    scenario: str,
    scale: Optional[Scale] = None,
    cache_dir: Optional[Path] = None,
    force_rerun: bool = False,
    progress=None,
    jobs: Optional[int] = None,
    injector=None,
) -> CampaignResult:
    """Load, resume, or execute the campaign for ``scenario`` at ``scale``.

    Only the cells without a valid cache shard execute (fanned out over
    ``jobs`` worker processes, default ``REPRO_JOBS``); each finished
    cell is checkpointed immediately, so interrupting and re-invoking
    continues where the previous run stopped.  Shards that fail JSON or
    version/integrity validation are quarantined and recomputed rather
    than trusted or crashed on.  The merged outcome list is identical to
    one serial :class:`CampaignRunner` sweep regardless of worker count
    or how many resume round-trips it took.

    ``injector`` threads a :class:`repro.testing.faults.ChaosInjector`
    into both the worker fan-out and the shard writes (chaos tests only).
    """
    if scenario not in ("A", "B"):
        raise ValueError("scenario must be 'A' or 'B'")
    scale = scale or current_scale()
    shard_dir = campaign_cache_path(scenario, scale, cache_dir)
    if force_rerun and shard_dir.exists():
        shutil.rmtree(shard_dir)

    thresholds = get_thresholds(scale, cache_dir, jobs=jobs)
    config = campaign_config(scenario, scale, thresholds)

    # A meta mismatch (schema bump, changed grid/durations/thresholds)
    # invalidates every shard in the directory.
    meta_path = shard_dir / "meta.json"
    if shard_dir.exists() and load_versioned_json(meta_path, config) is None:
        shutil.rmtree(shard_dir)
    if not meta_path.exists():
        atomic_write_json(
            meta_path,
            versioned_payload(
                config, {"grid": config["errors"], "periods": config["periods_ms"]}
            ),
        )
        if injector is not None:
            injector.on_file_written(meta_path)

    runner = _make_runner(scale, thresholds, progress, jobs, injector)
    cells = runner.plan_cells(
        scenario,
        error_values=config["errors"],
        periods_ms=config["periods_ms"],
    )
    seeds = runner.repetition_seeds(scale.repetitions)

    per_cell: Dict[int, List[RunOutcome]] = {}
    missing: List[int] = []
    for index in range(len(cells)):
        cached = _load_shard_outcomes(_cell_shard_path(shard_dir, index), config)
        if cached is None:
            missing.append(index)
        else:
            per_cell[index] = cached

    if missing:
        index_of = {cells[i]: i for i in missing}
        references = runner.compute_references(seeds)
        for cell, outcomes in runner.iter_cells(
            [cells[i] for i in missing], seeds, references
        ):
            index = index_of[cell]
            per_cell[index] = outcomes
            _write_shard(
                _cell_shard_path(shard_dir, index), config, outcomes, injector
            )

    ff_path = _fault_free_shard_path(shard_dir)
    fault_free = _load_shard_outcomes(ff_path, config)
    if fault_free is None:
        ff_runs = scale.fault_free_runs
        if ff_runs <= 0:
            ff_runs = runner.default_fault_free_runs(cells, scale.repetitions)
        fault_free = runner.run_fault_free_batch(runner.fault_free_seeds(ff_runs))
        _write_shard(ff_path, config, fault_free, injector)

    result = CampaignResult(scenario=scenario)
    for index in range(len(cells)):
        result.outcomes.extend(per_cell[index])
    result.outcomes.extend(fault_free)
    return result


def get_both_campaigns(
    scale: Optional[Scale] = None,
    cache_dir: Optional[Path] = None,
    progress=None,
    jobs: Optional[int] = None,
) -> Dict[str, CampaignResult]:
    """Both scenarios' campaigns."""
    return {
        "A": get_campaign("A", scale, cache_dir, progress=progress, jobs=jobs),
        "B": get_campaign("B", scale, cache_dir, progress=progress, jobs=jobs),
    }

"""Shared campaign execution + caching for Table IV and Figure 9.

Both artifacts read the same campaign data (the paper derives them from
the same 1 925 + 1 361 experiment runs), so campaigns execute once per
scale preset and cache their outcomes as JSON under ``.cache/``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

from repro.attacks.campaign import (
    CampaignCell,
    CampaignResult,
    CampaignRunner,
    RunOutcome,
)
from repro.experiments.calibration import CACHE_DIR, get_thresholds
from repro.experiments.scale import Scale, current_scale


def _outcome_to_dict(outcome: RunOutcome) -> dict:
    cell = outcome.cell
    return {
        "cell": None
        if cell is None
        else {
            "scenario": cell.scenario,
            "error_value": cell.error_value,
            "period_ms": cell.period_ms,
        },
        "seed": outcome.seed,
        "label": outcome.label,
        "raven_detected": outcome.raven_detected,
        "model_detected": outcome.model_detected,
        "deviation_mm": outcome.deviation_mm,
        "attack_fired": outcome.attack_fired,
    }


def _outcome_from_dict(data: dict) -> RunOutcome:
    cell = data["cell"]
    return RunOutcome(
        cell=None
        if cell is None
        else CampaignCell(
            scenario=cell["scenario"],
            error_value=cell["error_value"],
            period_ms=cell["period_ms"],
        ),
        seed=data["seed"],
        label=data["label"],
        raven_detected=data["raven_detected"],
        model_detected=data["model_detected"],
        deviation_mm=data["deviation_mm"],
        attack_fired=data["attack_fired"],
    )


def campaign_cache_path(
    scenario: str, scale: Scale, cache_dir: Optional[Path] = None
) -> Path:
    """Cache location for one scenario's campaign at ``scale``."""
    directory = Path(cache_dir) if cache_dir is not None else CACHE_DIR
    return directory / f"campaign_{scenario}_{scale.name}.json"


def get_campaign(
    scenario: str,
    scale: Optional[Scale] = None,
    cache_dir: Optional[Path] = None,
    force_rerun: bool = False,
    progress=None,
) -> CampaignResult:
    """Load or execute the campaign for ``scenario`` at ``scale``."""
    if scenario not in ("A", "B"):
        raise ValueError("scenario must be 'A' or 'B'")
    scale = scale or current_scale()
    path = campaign_cache_path(scenario, scale, cache_dir)
    if path.exists() and not force_rerun:
        data = json.loads(path.read_text())
        result = CampaignResult(scenario=scenario)
        result.outcomes = [_outcome_from_dict(d) for d in data["outcomes"]]
        return result

    thresholds = get_thresholds(scale, cache_dir)
    runner = CampaignRunner(
        thresholds,
        duration_s=scale.run_duration_s,
        progress=progress,
    )
    errors = scale.errors_a_mm if scenario == "A" else scale.errors_b_dac
    import os

    workers = int(os.environ.get("REPRO_WORKERS", "1"))
    result = runner.run_campaign(
        scenario,
        error_values=errors,
        periods_ms=scale.periods_ms,
        repetitions=scale.repetitions,
        fault_free_runs=scale.fault_free_runs,
        workers=workers,
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {"outcomes": [_outcome_to_dict(o) for o in result.outcomes]}, indent=1
        )
    )
    return result


def get_both_campaigns(
    scale: Optional[Scale] = None, cache_dir: Optional[Path] = None, progress=None
) -> Dict[str, CampaignResult]:
    """Both scenarios' campaigns."""
    return {
        "A": get_campaign("A", scale, cache_dir, progress=progress),
        "B": get_campaign("B", scale, cache_dir, progress=progress),
    }

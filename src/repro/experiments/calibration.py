"""Threshold calibration with on-disk caching.

Threshold learning is the most frequently reused expensive step (every
detection experiment needs calibrated thresholds), so the fitted
:class:`~repro.core.thresholds.SafetyThresholds` are cached as JSON keyed
by the scale preset.

The cache payload is versioned: it carries the engine schema version and
a fingerprint of the training configuration (run count, duration,
percentile band, model parameters, seeds), so a payload written by an
older layout or under different training settings retrains instead of
being silently reused.  Writes are atomic (temp file + ``os.replace``).
Training fans its independent fault-free runs out across ``REPRO_JOBS``
worker processes; samples merge in seed order, so the fitted thresholds
are bit-identical to a serial run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro import constants
from repro.core.thresholds import SafetyThresholds
from repro.experiments.parallel import (
    atomic_write_json,
    load_versioned_json,
    resolve_jobs,
    versioned_payload,
)
from repro.experiments.scale import Scale, current_scale
from repro.sim.runner import DEFAULT_MODEL_PARAMETER_ERROR, train_thresholds

#: Default cache directory (repository-local, safe to delete).
CACHE_DIR = Path(__file__).resolve().parents[3] / ".cache"


def thresholds_cache_path(scale: Scale, cache_dir: Optional[Path] = None) -> Path:
    """Where the thresholds for ``scale`` are cached."""
    directory = Path(cache_dir) if cache_dir is not None else CACHE_DIR
    return directory / f"thresholds_{scale.name}.json"


def calibration_config(scale: Scale) -> dict:
    """Everything the cached thresholds depend on, for fingerprinting."""
    return {
        "training_runs": scale.training_runs,
        "training_duration_s": scale.training_duration_s,
        "percentile_band": [
            constants.THRESHOLD_PERCENTILE_LO,
            constants.THRESHOLD_PERCENTILE_HI,
        ],
        "parameter_error": DEFAULT_MODEL_PARAMETER_ERROR,
        "integrator": "euler",
        "base_seed": 10_000,
    }


def write_thresholds_cache(
    path: Path, thresholds: SafetyThresholds, scale: Scale
) -> None:
    """Atomically write the versioned thresholds payload for ``scale``."""
    atomic_write_json(
        path,
        versioned_payload(
            calibration_config(scale), {"thresholds": thresholds.to_dict()}
        ),
    )


def get_thresholds(
    scale: Optional[Scale] = None,
    cache_dir: Optional[Path] = None,
    force_retrain: bool = False,
    jobs: Optional[int] = None,
) -> SafetyThresholds:
    """Load cached thresholds for ``scale``, training them if absent.

    A missing, corrupt, legacy-format, or configuration-mismatched cache
    retrains; training runs execute on ``jobs`` worker processes
    (default ``REPRO_JOBS``).
    """
    scale = scale or current_scale()
    path = thresholds_cache_path(scale, cache_dir)
    payload = load_versioned_json(path, calibration_config(scale))
    if payload is not None and "thresholds" in payload and not force_retrain:
        return SafetyThresholds.from_dict(payload["thresholds"])
    thresholds = train_thresholds(
        num_runs=scale.training_runs,
        duration_s=scale.training_duration_s,
        jobs=resolve_jobs(jobs),
    )
    write_thresholds_cache(path, thresholds, scale)
    return thresholds

"""Threshold calibration with on-disk caching.

Threshold learning is the most frequently reused expensive step (every
detection experiment needs calibrated thresholds), so the fitted
:class:`~repro.core.thresholds.SafetyThresholds` are cached as JSON keyed
by the scale preset.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.core.thresholds import SafetyThresholds
from repro.experiments.scale import Scale, current_scale
from repro.sim.runner import train_thresholds

#: Default cache directory (repository-local, safe to delete).
CACHE_DIR = Path(__file__).resolve().parents[3] / ".cache"


def thresholds_cache_path(scale: Scale, cache_dir: Optional[Path] = None) -> Path:
    """Where the thresholds for ``scale`` are cached."""
    directory = Path(cache_dir) if cache_dir is not None else CACHE_DIR
    return directory / f"thresholds_{scale.name}.json"


def get_thresholds(
    scale: Optional[Scale] = None,
    cache_dir: Optional[Path] = None,
    force_retrain: bool = False,
) -> SafetyThresholds:
    """Load cached thresholds for ``scale``, training them if absent."""
    scale = scale or current_scale()
    path = thresholds_cache_path(scale, cache_dir)
    if path.exists() and not force_retrain:
        return SafetyThresholds.load(path)
    thresholds = train_thresholds(
        num_runs=scale.training_runs,
        duration_s=scale.training_duration_s,
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    thresholds.save(path)
    return thresholds
